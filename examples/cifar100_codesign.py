"""Section IV workflow: CIFAR-100 codesign with a rising perf/area
threshold, compared against ResNet/GoogLeNet on their best accelerators.

Run:  python examples/cifar100_codesign.py        (a few minutes)
      REPRO_SCALE=smoke python examples/cifar100_codesign.py   (fast)
"""

from repro.experiments import Scale, run_fig7, run_table2, run_table3


def main() -> None:
    scale = Scale.from_env(default="default")
    print(f"Running the threshold-schedule search at scale={scale.name} ...")
    fig7 = run_fig7(scale=scale, seed=1)

    print(fig7.to_markdown())
    print()
    print(run_table2(fig7).to_markdown())
    print()
    print("Discovered accelerator parameters (Table III):")
    print(run_table3(fig7).to_markdown())

    resnet = fig7.baselines["resnet"]
    if fig7.cod1 is not None:
        m = fig7.cod1.metrics
        print(
            f"\nCod-1 vs ResNet: accuracy {m.accuracy - resnet.accuracy:+.2f}%, "
            f"perf/area {100 * (m.perf_per_area / resnet.perf_per_area - 1):+.0f}% "
            f"(paper: +1.3%, +41%)"
        )
    print(f"Search cost: {fig7.gpu_hours:.0f} simulated GPU-hours "
          f"({fig7.unique_cells_trained} cells trained) — paper: ~1000 GPU-hours.")


if __name__ == "__main__":
    main()
