"""Section III workflow: compare combined / phase / separate search
against the enumerated Pareto frontier (Figs. 5 and 6 in miniature).

Run:  python examples/search_strategies.py
"""

from repro.core.study import run_study
from repro.experiments import Scale, get_preset, load_bundle, run_fig5, run_fig6


def main() -> None:
    bundle = load_bundle(max_vertices=5)
    scale = Scale.from_env(default="smoke")
    print(f"Running the {scale.name}-scale strategy study "
          f"({scale.search_steps} steps x {scale.num_repeats} repeats "
          f"x 3 strategies x 3 scenarios) ...")
    # The whole grid is one declarative spec — the same one
    # `repro study run search-study` executes from the command line.
    study = run_study(get_preset("search-study"), bundle=bundle, scale=scale)

    fig5 = run_fig5(study=study)
    print(fig5.to_markdown())

    fig6 = run_fig6(study=study)
    print("Final (smoothed) rewards per scenario:")
    for scenario, by_strategy in fig6.final_rewards().items():
        summary = ", ".join(f"{s}={v:.3f}" for s, v in by_strategy.items())
        print(f"  {scenario}: {summary}")
    print("\nConvergence step (95% of final reward), unconstrained:")
    for strategy in ("combined", "phase", "separate"):
        step = fig6.convergence_step("unconstrained", strategy)
        print(f"  {strategy}: step {step}")


if __name__ == "__main__":
    main()
