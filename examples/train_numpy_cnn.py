"""Train a searched cell for real with the numpy NN substrate.

This demonstrates that the codesign loop runs unchanged over a *real*
trainer: the cell is compiled to the same op-level IR the hardware
model schedules, instantiated as a numpy network, and trained with the
paper's recipe (SGD + momentum, cosine decay, weight decay) on a
synthetic CIFAR stand-in.

Run:  python examples/train_numpy_cnn.py
"""

from repro.nasbench import cod1_cell, compile_network
from repro.nn import TrainConfig, Trainer, build_network, synthetic_cifar
from repro.training import TOY_SKELETON

def main() -> None:
    spec = cod1_cell()
    skeleton = TOY_SKELETON
    ir = compile_network(spec, skeleton)
    print(f"Cod-1 cell on the toy skeleton: {len(ir.ops)} ops, "
          f"{ir.total_params:,} params, {ir.total_macs / 1e6:.1f} MMACs")

    train, test = synthetic_cifar(
        n_train=384,
        n_test=96,
        n_classes=skeleton.num_classes,
        size=skeleton.input_height,
        channels=skeleton.input_channels,
        seed=7,
    )
    network = build_network(spec, skeleton, seed=0)
    trainer = Trainer(
        network,
        TrainConfig(epochs=5, batch_size=32, learning_rate=0.05, augment=False),
        seed=1,
    )
    history = trainer.fit(train, test)
    for epoch, (loss, acc) in enumerate(zip(history.train_loss, history.test_accuracy)):
        print(f"epoch {epoch}: train loss {loss:.3f}, test acc {100 * acc:.1f}%")
    chance = 100.0 / skeleton.num_classes
    final = 100 * history.test_accuracy[-1]
    print(f"\nFinal test accuracy {final:.1f}% (chance {chance:.0f}%)")


if __name__ == "__main__":
    main()
