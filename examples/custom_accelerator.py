"""Hardware design-space exploration: sweep the accelerator space for a
fixed CNN, inspect area breakdowns, and find the best design under a
deployment constraint (2-constraints scenario of Section III-C).

Run:  python examples/custom_accelerator.py
"""

import numpy as np

from repro.accelerator import (
    AcceleratorSpace,
    AreaModel,
    LatencyModel,
    batch_schedule,
)
from repro.core import perf_per_area
from repro.nasbench import CIFAR10_SKELETON, compile_network, googlenet_cell


def main() -> None:
    spec = googlenet_cell()
    ir = compile_network(spec, CIFAR10_SKELETON)
    space = AcceleratorSpace()
    area_model = AreaModel()

    print(f"Sweeping all {space.size} accelerator configurations "
          f"for the GoogLeNet cell ...")
    latency_s = batch_schedule(ir, space, LatencyModel())
    areas = np.array([area_model.area_mm2(space.config_at(i)) for i in range(space.size)])
    ppa = perf_per_area(latency_s, areas)

    best = int(np.argmax(ppa))
    config = space.config_at(best)
    print(f"\nBest perf/area design: {config.short_name()}")
    print(f"  {latency_s[best] * 1e3:.1f} ms, {areas[best]:.1f} mm2, "
          f"{ppa[best]:.1f} img/s/cm2")
    print("  Area breakdown (mm2):")
    for component, mm2 in area_model.breakdown(config).items():
        print(f"    {component:18s} {mm2:6.1f}")

    # Deployment constraint: area < 100 mm2, latency as low as possible.
    feasible = areas < 100.0
    best_small = int(np.argmin(np.where(feasible, latency_s, np.inf)))
    config_small = space.config_at(best_small)
    print(f"\nBest design under area < 100 mm2: {config_small.short_name()}")
    print(f"  {latency_s[best_small] * 1e3:.1f} ms, {areas[best_small]:.1f} mm2")

    # How much does the dual-engine split help this cell?
    cols = space.columns()
    single = cols["ratio_conv_engines"] == 1.0
    print(f"\nMedian latency, single general engine: "
          f"{np.median(latency_s[single]) * 1e3:.1f} ms")
    print(f"Median latency, dual 3x3/1x1 engines:  "
          f"{np.median(latency_s[~single]) * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
