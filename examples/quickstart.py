"""Quickstart: evaluate one CNN-accelerator pair, then run a short
codesign search.

Run:  python examples/quickstart.py
"""

from repro.accelerator import AcceleratorConfig, AreaModel, schedule_network
from repro.core import CodesignEvaluator, JointSearchSpace, unconstrained
from repro.nasbench import (
    CIFAR10_SKELETON,
    CellDatabase,
    CellEncoding,
    compile_network,
    resnet_cell,
)
from repro.search import CombinedSearch


def main() -> None:
    # --- 1. One pair: the ResNet cell on a mid-size accelerator -------
    spec = resnet_cell()
    config = AcceleratorConfig(filter_par=16, pixel_par=32)
    ir = compile_network(spec, CIFAR10_SKELETON)
    latency = schedule_network(ir, config)
    area = AreaModel().area_mm2(config)
    print(f"ResNet cell: {ir.total_macs / 1e9:.2f} GMACs, "
          f"{ir.total_params / 1e6:.2f} M params")
    print(f"On {config.short_name()}: {latency.latency_ms:.1f} ms, {area:.1f} mm2")

    # --- 2. A short codesign search over the exhaustive micro space ---
    database = CellDatabase.nasbench_micro()
    scenario = unconstrained()
    evaluator = CodesignEvaluator.from_database(database, scenario)
    space = JointSearchSpace(cell_encoding=CellEncoding(max_vertices=5))
    search = CombinedSearch(space, seed=0)
    result = search.run(evaluator, num_steps=300)

    best = result.best
    print(f"\nSearched 300 points ({result.archive.num_valid} valid).")
    print(f"Best reward {best.reward:.4f}: "
          f"acc {best.metrics.accuracy:.2f}%, "
          f"lat {best.metrics.latency_ms:.1f} ms, "
          f"area {best.metrics.area_mm2:.1f} mm2")
    print(f"Cell: {best.spec}")
    print(f"Accelerator: {best.config.short_name()}")


if __name__ == "__main__":
    main()
