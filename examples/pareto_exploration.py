"""Fig. 4 workflow: enumerate the joint space, extract the Pareto
frontier, and inspect the three-way accuracy/latency/area tradeoff.

Run:  python examples/pareto_exploration.py
(First run computes the full latency matrix, ~1-2 minutes; afterwards
it reloads from the on-disk cache.)
"""

import numpy as np

from repro.core import product_space_pareto
from repro.experiments import load_bundle
from repro.utils.tables import format_ascii


def main() -> None:
    bundle = load_bundle(max_vertices=5)
    print(f"Joint space: {len(bundle.database)} cells x {bundle.space.size} "
          f"accelerators = {bundle.num_pairs:,} pairs")

    front = product_space_pareto(bundle.accuracy, bundle.area_mm2, bundle.latency_ms)
    fraction = front.num_points / bundle.num_pairs
    print(f"Pareto frontier: {front.num_points} points ({fraction:.2e} of the space)")
    print(f"  spanning {front.num_distinct_cells()} distinct cells and "
          f"{front.num_distinct_configs()} distinct accelerators")

    # Accuracy-latency staircases per area band (Fig. 4's concentric curves).
    bands = [(50, 90), (90, 130), (130, 210)]
    for lo, hi in bands:
        mask = (front.area_mm2 >= lo) & (front.area_mm2 < hi)
        if not mask.any():
            continue
        order = np.argsort(front.latency_ms[mask])
        rows = [
            (
                round(float(front.latency_ms[mask][i]), 1),
                round(float(front.accuracy[mask][i]), 2),
                round(float(front.area_mm2[mask][i]), 1),
            )
            for i in order[:: max(1, mask.sum() // 8)][:8]
        ]
        print(f"\nArea band {lo}-{hi} mm2 ({int(mask.sum())} Pareto points):")
        print(format_ascii(["latency_ms", "accuracy_%", "area_mm2"], rows))

    # The paper's headline: a vanishing fraction of the space is optimal.
    assert fraction < 1e-3


if __name__ == "__main__":
    main()
