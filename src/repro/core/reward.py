"""Multi-objective reward (paper Eq. 3) with epsilon-constraints.

The paper mixes two standard multi-objective approaches: an
epsilon-constraint filter (points violating any threshold are rejected
and punished) followed by a weighted sum of linearly normalized
metrics:

.. math::

    R(m) = w \\cdot N(m), \\qquad m_i \\ge th_i \\; \\forall i

where ``N`` maps each metric from its space-level range to (0, 1).
Infeasible or structurally invalid points receive the punishment
``Rv`` — sign-opposed to the reward and scaled with the violation
distance so the controller is steered away from, not merely blinded
to, bad regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import METRIC_NAMES, Metrics

__all__ = ["MetricBounds", "Constraints", "RewardConfig", "RewardResult", "RewardFunction"]


@dataclass(frozen=True)
class MetricBounds:
    """Space-level metric ranges used by the linear normalizer ``N``.

    Defaults cover the joint space of this reproduction (area
    ~55-205 mm2, latency ~5-400 ms, accuracy ~85-95.5%); experiments
    may compute exact ranges with :meth:`from_arrays`.
    """

    area_mm2: tuple[float, float] = (50.0, 210.0)
    latency_ms: tuple[float, float] = (5.0, 400.0)
    accuracy: tuple[float, float] = (85.0, 95.5)

    @classmethod
    def from_arrays(
        cls,
        area_mm2: np.ndarray,
        latency_ms: np.ndarray,
        accuracy: np.ndarray,
    ) -> "MetricBounds":
        """Exact bounds measured over an enumerated space."""
        return cls(
            area_mm2=(float(np.min(area_mm2)), float(np.max(area_mm2))),
            latency_ms=(float(np.min(latency_ms)), float(np.max(latency_ms))),
            accuracy=(float(np.min(accuracy)), float(np.max(accuracy))),
        )

    def normalize(self, metrics: Metrics) -> np.ndarray:
        """Linear element-wise ``N``: each term in (0,1), bigger=better.

        Area and latency are *costs*, so their normalized value is
        ``(xmax - x) / (xmax - xmin)`` — equivalent to normalizing the
        negated metric of Eq. 4.
        """
        lo_a, hi_a = self.area_mm2
        lo_l, hi_l = self.latency_ms
        lo_c, hi_c = self.accuracy
        n_area = (hi_a - metrics.area_mm2) / (hi_a - lo_a)
        n_lat = (hi_l - metrics.latency_ms) / (hi_l - lo_l)
        n_acc = (metrics.accuracy - lo_c) / (hi_c - lo_c)
        return np.clip([n_area, n_lat, n_acc], 0.0, 1.0)


@dataclass(frozen=True)
class Constraints:
    """Epsilon-constraint thresholds in raw metric units.

    ``None`` disables a constraint.  ``max_area_mm2`` / ``max_latency_ms``
    are upper bounds on costs; ``min_accuracy`` / ``min_perf_per_area``
    are lower bounds on qualities (the latter is Section IV's combined
    constraint).
    """

    max_area_mm2: float | None = None
    max_latency_ms: float | None = None
    min_accuracy: float | None = None
    min_perf_per_area: float | None = None

    def violations(self, metrics: Metrics) -> dict[str, float]:
        """Relative violation magnitude per failed constraint."""
        out: dict[str, float] = {}
        if self.max_area_mm2 is not None and metrics.area_mm2 > self.max_area_mm2:
            out["area"] = metrics.area_mm2 / self.max_area_mm2 - 1.0
        if self.max_latency_ms is not None and metrics.latency_ms > self.max_latency_ms:
            out["latency"] = metrics.latency_ms / self.max_latency_ms - 1.0
        if self.min_accuracy is not None and metrics.accuracy < self.min_accuracy:
            out["accuracy"] = 1.0 - metrics.accuracy / self.min_accuracy
        if self.min_perf_per_area is not None and metrics.perf_per_area < self.min_perf_per_area:
            out["perf_per_area"] = 1.0 - metrics.perf_per_area / self.min_perf_per_area
        return out

    def satisfied(self, metrics: Metrics) -> bool:
        return not self.violations(metrics)


@dataclass(frozen=True)
class RewardConfig:
    """Weights + constraints + bounds defining one search scenario."""

    weights: tuple[float, float, float] = (1 / 3, 1 / 3, 1 / 3)
    constraints: Constraints = field(default_factory=Constraints)
    bounds: MetricBounds = field(default_factory=MetricBounds)
    punishment_scale: float = 1.0
    name: str = "custom"

    def __post_init__(self) -> None:
        if len(self.weights) != len(METRIC_NAMES):
            raise ValueError(f"weights must have {len(METRIC_NAMES)} entries")
        if any(w < 0 for w in self.weights):
            raise ValueError("weights must be non-negative")
        if self.punishment_scale <= 0:
            raise ValueError("punishment_scale must be positive")


@dataclass(frozen=True)
class RewardResult:
    """Reward assigned to one search point."""

    value: float
    feasible: bool
    valid: bool
    violations: dict[str, float] = field(default_factory=dict)


class RewardFunction:
    """Callable implementing Eq. 3 plus the punishment ``Rv``."""

    def __init__(self, config: RewardConfig) -> None:
        self.config = config

    def __call__(self, metrics: Metrics | None) -> RewardResult:
        """Reward for ``metrics`` (``None`` marks an invalid spec)."""
        if metrics is None:
            return RewardResult(
                value=-self.config.punishment_scale, feasible=False, valid=False
            )
        violations = self.config.constraints.violations(metrics)
        if violations:
            return RewardResult(
                value=self.punishment(violations),
                feasible=False,
                valid=True,
                violations=violations,
            )
        weights = np.asarray(self.config.weights, dtype=np.float64)
        normalized = self.config.bounds.normalize(metrics)
        return RewardResult(
            value=float(weights @ normalized), feasible=True, valid=True
        )

    def punishment(self, violations: dict[str, float]) -> float:
        """``Rv``: sign-opposed, scaled with mean violation distance."""
        distance = float(np.mean(list(violations.values())))
        return -self.config.punishment_scale * min(0.2 + 0.8 * distance, 1.0)

    def reward_array(
        self,
        area_mm2: np.ndarray,
        latency_ms: np.ndarray,
        accuracy: np.ndarray,
    ) -> np.ndarray:
        """Vectorized feasible-region reward (NaN where infeasible).

        Used by the Pareto experiments to rank enumerated points by the
        scenario reward; infeasible points are NaN so callers can mask
        them out (the punishment value is search-only feedback).
        """
        c = self.config.constraints
        feasible = np.ones(np.shape(area_mm2), dtype=bool)
        ppa = (1000.0 / latency_ms) / (area_mm2 / 100.0)
        if c.max_area_mm2 is not None:
            feasible &= area_mm2 <= c.max_area_mm2
        if c.max_latency_ms is not None:
            feasible &= latency_ms <= c.max_latency_ms
        if c.min_accuracy is not None:
            feasible &= accuracy >= c.min_accuracy
        if c.min_perf_per_area is not None:
            feasible &= ppa >= c.min_perf_per_area
        b = self.config.bounds
        n_area = np.clip((b.area_mm2[1] - area_mm2) / (b.area_mm2[1] - b.area_mm2[0]), 0, 1)
        n_lat = np.clip(
            (b.latency_ms[1] - latency_ms) / (b.latency_ms[1] - b.latency_ms[0]), 0, 1
        )
        n_acc = np.clip(
            (accuracy - b.accuracy[0]) / (b.accuracy[1] - b.accuracy[0]), 0, 1
        )
        w = self.config.weights
        reward = w[0] * n_area + w[1] * n_lat + w[2] * n_acc
        return np.where(feasible, reward, np.nan)
