"""Quality metrics of a CNN-accelerator pair (paper Section II-A).

The paper assesses each pair by three metrics — DNN accuracy,
accelerator area, and end-to-end latency — and optimizes the vector
``m = (-area, -latency, accuracy)`` so that "bigger is better" holds in
every dimension (Eq. 4).  Section IV additionally folds latency and
area into performance-per-area (img/s/cm2), which is what Table II
reports; :func:`perf_per_area` reproduces Table II's arithmetic
(42.0 ms on 186 mm2 -> 12.8 img/s/cm2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Metrics", "METRIC_NAMES", "perf_per_area"]

#: Canonical metric order used by reward weights and thresholds.
METRIC_NAMES = ("area", "latency", "accuracy")


def perf_per_area(latency_s: float | np.ndarray, area_mm2: float | np.ndarray):
    """Images per second per cm2 of silicon (Section IV's metric)."""
    throughput = 1.0 / np.asarray(latency_s, dtype=np.float64)
    area_cm2 = np.asarray(area_mm2, dtype=np.float64) / 100.0
    result = throughput / area_cm2
    return float(result) if np.ndim(result) == 0 else result


@dataclass(frozen=True)
class Metrics:
    """Evaluated metrics of one model-accelerator pair."""

    accuracy: float     # percent, e.g. 93.2
    latency_s: float    # end-to-end seconds per image
    area_mm2: float     # accelerator silicon area

    def __post_init__(self) -> None:
        if self.latency_s <= 0:
            raise ValueError("latency must be positive")
        if self.area_mm2 <= 0:
            raise ValueError("area must be positive")

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def perf_per_area(self) -> float:
        """img/s/cm2, the Section IV efficiency metric."""
        return perf_per_area(self.latency_s, self.area_mm2)

    def objective_vector(self) -> np.ndarray:
        """``(-area, -latency_ms, accuracy)`` — maximize everywhere."""
        return np.array([-self.area_mm2, -self.latency_ms, self.accuracy])

    def to_dict(self) -> dict[str, float]:
        return {
            "accuracy": self.accuracy,
            "latency_ms": self.latency_ms,
            "area_mm2": self.area_mm2,
            "perf_per_area": self.perf_per_area,
        }
