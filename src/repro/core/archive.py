"""Search history: every visited point, reward curves, best-so-far.

The paper's analyses need three views of a finished search: the single
best point (Eq. 2's argmax over the visited trajectory), the top-K
feasible points (Fig. 5 and Fig. 7 plot top-1/top-10), and the reward
trace over steps averaged across repeats (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.core.evaluator import EvaluationResult
from repro.core.metrics import Metrics
from repro.nasbench.model_spec import ModelSpec

__all__ = ["ArchiveEntry", "SearchArchive"]


@dataclass(frozen=True)
class ArchiveEntry:
    """One search step."""

    step: int
    spec: ModelSpec
    config: AcceleratorConfig
    metrics: Metrics | None
    reward: float
    feasible: bool
    valid: bool
    phase: str = ""


@dataclass
class SearchArchive:
    """Append-only record of a search run."""

    entries: list[ArchiveEntry] = field(default_factory=list)

    def record(self, result: EvaluationResult, phase: str = "") -> ArchiveEntry:
        entry = ArchiveEntry(
            step=len(self.entries),
            spec=result.spec,
            config=result.config,
            metrics=result.metrics,
            reward=result.reward.value,
            feasible=result.feasible,
            valid=result.valid,
            phase=phase,
        )
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    @property
    def num_valid(self) -> int:
        return sum(1 for e in self.entries if e.valid)

    @property
    def num_feasible(self) -> int:
        return sum(1 for e in self.entries if e.feasible)

    def feasible_entries(self) -> list[ArchiveEntry]:
        return [e for e in self.entries if e.feasible]

    def best(self) -> ArchiveEntry | None:
        """Highest-reward feasible entry (Eq. 2's s*), if any."""
        feasible = self.feasible_entries()
        if not feasible:
            return None
        return max(feasible, key=lambda e: e.reward)

    def top_k(self, k: int, dedupe: bool = True) -> list[ArchiveEntry]:
        """Top-``k`` feasible entries by reward.

        With ``dedupe`` (default) repeated visits to the same
        (cell, accelerator) pair count once — the paper plots distinct
        discovered points.
        """
        feasible = sorted(self.feasible_entries(), key=lambda e: -e.reward)
        if not dedupe:
            return feasible[:k]
        seen: set[tuple] = set()
        out: list[ArchiveEntry] = []
        for entry in feasible:
            key = (entry.spec.spec_hash(), tuple(entry.config.to_dict().values()))
            if key in seen:
                continue
            seen.add(key)
            out.append(entry)
            if len(out) == k:
                break
        return out

    # ------------------------------------------------------------------
    def reward_trace(self) -> np.ndarray:
        """Per-step reward values (punishments included)."""
        return np.array([e.reward for e in self.entries], dtype=np.float64)

    def best_so_far_trace(self, feasible_only: bool = True) -> np.ndarray:
        """Running maximum of the reward over steps (Fig. 6 style).

        Steps before the first (feasible) reward hold NaN.
        """
        trace = np.full(len(self.entries), np.nan)
        best = np.nan
        for i, e in enumerate(self.entries):
            if (e.feasible or not feasible_only) and (
                np.isnan(best) or e.reward > best
            ):
                best = e.reward
            trace[i] = best
        return trace

    def distinct_pairs(self) -> int:
        """Number of distinct valid (cell, accelerator) pairs visited."""
        seen = {
            (e.spec.spec_hash(), tuple(e.config.to_dict().values()))
            for e in self.entries
            if e.valid
        }
        return len(seen)
