"""Reward scenarios: the paper's three, plus a declarative registry.

Three NASBench scenarios drive the Fig. 5/6 search-strategy study:

1. **Unconstrained** — no thresholds, weights (0.1, 0.8, 0.1) over
   (area, latency, accuracy): sweep the space for good points.
2. **1 Constraint** — latency < 100 ms, weights (0.1, 0, 0.9): a known
   real-time budget, best accuracy per device size.
3. **2 Constraints** — accuracy > 92% and area < 100 mm2, optimizing
   latency alone: a common deployment use-case.

Section IV replaces thresholds on raw metrics with one combined
perf/area >= threshold constraint while maximizing accuracy;
:func:`cifar100_threshold` builds those scenarios, and
:data:`CIFAR100_THRESHOLD_SCHEDULE` is the paper's (2, 8, 16, 30, 40)
img/s/cm2 ladder.

Beyond the paper, this module is a **scenario registry**: named
:class:`~repro.core.reward.RewardConfig` builders registered in a
table (:func:`register_scenario`), resolvable by name
(:func:`get_scenario` — including the parametric ``perf-area>=X``
family), declarable as plain JSON (:func:`scenario_from_dict` /
:func:`scenario_to_dict` round-trip losslessly), and loadable from
spec files (:func:`load_scenario_file`) so arbitrary
latency/area/accuracy constraint scenarios can drive any search
strategy, the Fig. 5/6 grids, and Pareto sweeps without code changes.

A scenario *builder* is a callable ``builder(bounds=None) ->
RewardConfig``: experiments pass their space's measured
:class:`~repro.core.reward.MetricBounds` so normalization matches the
enumerated space; a builder whose spec pins explicit bounds ignores
the argument.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro.core.reward import Constraints, MetricBounds, RewardConfig

__all__ = [
    "unconstrained",
    "one_constraint",
    "two_constraints",
    "cifar100_threshold",
    "make_scenario",
    "PAPER_SCENARIOS",
    "CIFAR100_THRESHOLD_SCHEDULE",
    "ScenarioError",
    "ScenarioBuilder",
    "register_scenario",
    "get_scenario",
    "get_scenario_builder",
    "list_scenarios",
    "resolve_scenarios",
    "scenario_from_dict",
    "scenario_to_dict",
    "load_scenario_file",
]

ScenarioBuilder = Callable[..., RewardConfig]


class ScenarioError(ValueError):
    """A scenario name or declarative spec could not be resolved."""


def unconstrained(bounds: MetricBounds | None = None) -> RewardConfig:
    """Scenario 1: no constraints, w(area, lat, acc) = (0.1, 0.8, 0.1)."""
    return RewardConfig(
        weights=(0.1, 0.8, 0.1),
        constraints=Constraints(),
        bounds=bounds or MetricBounds(),
        name="unconstrained",
    )


def one_constraint(bounds: MetricBounds | None = None) -> RewardConfig:
    """Scenario 2: latency < 100 ms, w(area, lat, acc) = (0.1, 0, 0.9)."""
    return RewardConfig(
        weights=(0.1, 0.0, 0.9),
        constraints=Constraints(max_latency_ms=100.0),
        bounds=bounds or MetricBounds(),
        name="1-constraint",
    )


def two_constraints(bounds: MetricBounds | None = None) -> RewardConfig:
    """Scenario 3: acc > 92%, area < 100 mm2; optimize latency only."""
    return RewardConfig(
        weights=(0.0, 1.0, 0.0),
        constraints=Constraints(max_area_mm2=100.0, min_accuracy=92.0),
        bounds=bounds or MetricBounds(),
        name="2-constraints",
    )


def cifar100_threshold(
    threshold: float, bounds: MetricBounds | None = None
) -> RewardConfig:
    """Section IV scenario: perf/area >= threshold, maximize accuracy."""
    return RewardConfig(
        weights=(0.0, 0.0, 1.0),
        constraints=Constraints(min_perf_per_area=threshold),
        bounds=bounds or MetricBounds(),
        name=f"perf-area>={threshold:g}",
    )


def make_scenario(
    name: str,
    weights: tuple[float, float, float],
    bounds: MetricBounds | None = None,
    punishment_scale: float = 1.0,
    **constraint_kwargs: float | None,
) -> RewardConfig:
    """Compose an arbitrary scenario from weights + constraint kwargs.

    ``constraint_kwargs`` are the :class:`~repro.core.reward.Constraints`
    fields (``max_area_mm2``, ``max_latency_ms``, ``min_accuracy``,
    ``min_perf_per_area``).
    """
    return RewardConfig(
        weights=tuple(weights),
        constraints=Constraints(**constraint_kwargs),
        bounds=bounds or MetricBounds(),
        punishment_scale=punishment_scale,
        name=name,
    )


#: Scenario name -> constructor, as evaluated in Fig. 5 and Fig. 6.
PAPER_SCENARIOS = {
    "unconstrained": unconstrained,
    "1-constraint": one_constraint,
    "2-constraints": two_constraints,
}

#: The gradually increasing perf/area thresholds of Section IV-A.
CIFAR100_THRESHOLD_SCHEDULE = (2.0, 8.0, 16.0, 30.0, 40.0)

#: The parametric Section IV family: ``perf-area>=<threshold>``.
_THRESHOLD_PREFIX = "perf-area>="

# --- the registry ---------------------------------------------------------

_REGISTRY: dict[str, ScenarioBuilder] = {}


def register_scenario(
    name: str, builder: ScenarioBuilder | None = None, overwrite: bool = False
):
    """Register ``builder`` under ``name`` (usable as a decorator).

    Builders take an optional ``bounds`` argument, like the paper
    scenario constructors above.
    """

    def _register(fn: ScenarioBuilder) -> ScenarioBuilder:
        if not overwrite and name in _REGISTRY:
            raise ScenarioError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = fn
        return fn

    return _register if builder is None else _register(builder)


def list_scenarios() -> list[str]:
    """Registered scenario names (the parametric family excluded)."""
    return sorted(_REGISTRY)


def get_scenario_builder(name: str) -> ScenarioBuilder:
    """Builder for ``name``; understands ``perf-area>=X`` parametrics."""
    if name in _REGISTRY:
        return _REGISTRY[name]
    if name.startswith(_THRESHOLD_PREFIX):
        try:
            threshold = float(name[len(_THRESHOLD_PREFIX):])
        except ValueError:
            raise ScenarioError(
                f"malformed parametric scenario {name!r}: expected "
                f"{_THRESHOLD_PREFIX}<number>"
            ) from None
        return lambda bounds=None: cifar100_threshold(threshold, bounds)
    raise ScenarioError(
        f"unknown scenario {name!r}; registered: {', '.join(list_scenarios())} "
        f"(or the parametric {_THRESHOLD_PREFIX}<number>)"
    )


def get_scenario(name: str, bounds: MetricBounds | None = None) -> RewardConfig:
    """Resolve a registered (or parametric) scenario name to a config."""
    return get_scenario_builder(name)(bounds)


def resolve_scenarios(
    names=None, scenario_file: str | Path | None = None
) -> dict[str, ScenarioBuilder]:
    """Scenario table for an experiment grid: name -> builder.

    ``names`` selects registered/parametric scenarios;
    ``scenario_file`` contributes every spec in a JSON file.  With
    neither, the paper's three scenarios are returned.
    """
    out: dict[str, ScenarioBuilder] = {}
    for name in names or ():
        out[name] = get_scenario_builder(name)
    if scenario_file is not None:
        for name, builder in load_scenario_file(scenario_file).items():
            if name in out:
                raise ScenarioError(
                    f"scenario {name!r} selected by name AND defined in "
                    f"{scenario_file} — rename the file spec (a silent "
                    "override would mislabel results)"
                )
            out[name] = builder
    return out or dict(PAPER_SCENARIOS)


for _name, _builder in PAPER_SCENARIOS.items():
    register_scenario(_name, _builder)
for _threshold in CIFAR100_THRESHOLD_SCHEDULE:
    register_scenario(
        f"{_THRESHOLD_PREFIX}{_threshold:g}",
        lambda bounds=None, _t=_threshold: cifar100_threshold(_t, bounds),
    )


# --- declarative (JSON) scenarios -----------------------------------------

_CONSTRAINT_FIELDS = (
    "max_area_mm2",
    "max_latency_ms",
    "min_accuracy",
    "min_perf_per_area",
)
_BOUND_FIELDS = ("area_mm2", "latency_ms", "accuracy")
_SPEC_FIELDS = {"name", "weights", "constraints", "bounds", "punishment_scale"}


def _require_number(value, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(f"{what} must be a number, got {value!r}")
    return float(value)


def scenario_from_dict(
    data: dict, bounds: MetricBounds | None = None
) -> RewardConfig:
    """Build a scenario from its declarative (JSON-ready) spec.

    Spec keys: ``name`` (required), ``weights`` (required, three
    non-negative numbers over area/latency/accuracy), ``constraints``
    (optional mapping of threshold fields), ``bounds`` (optional
    mapping of ``[lo, hi]`` metric ranges; defaults to the ``bounds``
    argument, i.e. the calling experiment's space), and
    ``punishment_scale`` (optional).  Malformed specs raise
    :class:`ScenarioError` with a message naming the offending field.
    """
    if not isinstance(data, dict):
        raise ScenarioError(f"scenario spec must be a mapping, got {type(data).__name__}")
    unknown = set(data) - _SPEC_FIELDS
    if unknown:
        raise ScenarioError(
            f"unknown scenario spec field(s) {sorted(unknown)}; "
            f"allowed: {sorted(_SPEC_FIELDS)}"
        )
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ScenarioError("scenario spec needs a non-empty string 'name'")
    weights = data.get("weights")
    if not isinstance(weights, (list, tuple)) or len(weights) != 3:
        raise ScenarioError(
            f"scenario {name!r}: 'weights' must be three numbers "
            "(area, latency, accuracy)"
        )
    weights = tuple(_require_number(w, f"scenario {name!r}: weight") for w in weights)
    if any(w < 0 for w in weights):
        raise ScenarioError(f"scenario {name!r}: weights must be non-negative")

    constraint_spec = data.get("constraints", {})
    if not isinstance(constraint_spec, dict):
        raise ScenarioError(f"scenario {name!r}: 'constraints' must be a mapping")
    unknown = set(constraint_spec) - set(_CONSTRAINT_FIELDS)
    if unknown:
        raise ScenarioError(
            f"scenario {name!r}: unknown constraint(s) {sorted(unknown)}; "
            f"allowed: {list(_CONSTRAINT_FIELDS)}"
        )
    constraints = {}
    for field in _CONSTRAINT_FIELDS:
        value = constraint_spec.get(field)
        if value is None:
            continue
        value = _require_number(value, f"scenario {name!r}: constraint {field}")
        if value <= 0:
            raise ScenarioError(
                f"scenario {name!r}: constraint {field} must be positive, got {value}"
            )
        constraints[field] = value

    bound_spec = data.get("bounds")
    if bound_spec is None:
        resolved_bounds = bounds or MetricBounds()
    else:
        if not isinstance(bound_spec, dict):
            raise ScenarioError(f"scenario {name!r}: 'bounds' must be a mapping")
        unknown = set(bound_spec) - set(_BOUND_FIELDS)
        if unknown:
            raise ScenarioError(
                f"scenario {name!r}: unknown bound(s) {sorted(unknown)}; "
                f"allowed: {list(_BOUND_FIELDS)}"
            )
        ranges = {}
        defaults = bounds or MetricBounds()
        for field in _BOUND_FIELDS:
            if field not in bound_spec:
                ranges[field] = getattr(defaults, field)
                continue
            pair = bound_spec[field]
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise ScenarioError(
                    f"scenario {name!r}: bound {field} must be [lo, hi]"
                )
            lo = _require_number(pair[0], f"scenario {name!r}: bound {field} lo")
            hi = _require_number(pair[1], f"scenario {name!r}: bound {field} hi")
            if not lo < hi:
                raise ScenarioError(
                    f"scenario {name!r}: bound {field} needs lo < hi, got [{lo}, {hi}]"
                )
            ranges[field] = (lo, hi)
        resolved_bounds = MetricBounds(**ranges)

    punishment = data.get("punishment_scale", 1.0)
    punishment = _require_number(punishment, f"scenario {name!r}: punishment_scale")
    if punishment <= 0:
        raise ScenarioError(
            f"scenario {name!r}: punishment_scale must be positive, got {punishment}"
        )
    return RewardConfig(
        weights=weights,
        constraints=Constraints(**constraints),
        bounds=resolved_bounds,
        punishment_scale=punishment,
        name=name,
    )


def scenario_to_dict(config: RewardConfig) -> dict:
    """Declarative spec of ``config``; inverse of :func:`scenario_from_dict`.

    ``scenario_from_dict(scenario_to_dict(c)) == c`` for any config
    (bounds are always serialized, so the round trip is bounds-exact).
    """
    constraints = {
        field: getattr(config.constraints, field)
        for field in _CONSTRAINT_FIELDS
        if getattr(config.constraints, field) is not None
    }
    return {
        "name": config.name,
        "weights": list(config.weights),
        "constraints": constraints,
        "bounds": {
            field: list(getattr(config.bounds, field)) for field in _BOUND_FIELDS
        },
        "punishment_scale": config.punishment_scale,
    }


def load_scenario_file(path: str | Path) -> dict[str, ScenarioBuilder]:
    """Load scenario builders from a JSON spec file.

    The file holds one spec object or a list of them (see
    :func:`scenario_from_dict`).  Returned builders accept the usual
    optional ``bounds``, which fills any ranges the spec left out.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise ScenarioError(f"scenario file not found: {path}") from None
    except json.JSONDecodeError as err:
        raise ScenarioError(f"scenario file {path} is not valid JSON: {err}") from None
    specs = payload if isinstance(payload, list) else [payload]
    builders: dict[str, ScenarioBuilder] = {}
    for spec in specs:
        config = scenario_from_dict(spec)  # validate eagerly, fail loudly
        if config.name in builders:
            raise ScenarioError(
                f"scenario file {path} defines {config.name!r} twice"
            )
        builders[config.name] = (
            lambda bounds=None, _spec=spec: scenario_from_dict(_spec, bounds)
        )
    return builders
