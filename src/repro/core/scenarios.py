"""The paper's reward scenarios (Sections III-C and IV-A).

Three NASBench scenarios drive the Fig. 5/6 search-strategy study:

1. **Unconstrained** — no thresholds, weights (0.1, 0.8, 0.1) over
   (area, latency, accuracy): sweep the space for good points.
2. **1 Constraint** — latency < 100 ms, weights (0.1, 0, 0.9): a known
   real-time budget, best accuracy per device size.
3. **2 Constraints** — accuracy > 92% and area < 100 mm2, optimizing
   latency alone: a common deployment use-case.

Section IV replaces thresholds on raw metrics with one combined
perf/area >= threshold constraint while maximizing accuracy;
:func:`cifar100_threshold` builds those scenarios, and
:data:`CIFAR100_THRESHOLD_SCHEDULE` is the paper's (2, 8, 16, 30, 40)
img/s/cm2 ladder.
"""

from __future__ import annotations

from repro.core.reward import Constraints, MetricBounds, RewardConfig

__all__ = [
    "unconstrained",
    "one_constraint",
    "two_constraints",
    "cifar100_threshold",
    "PAPER_SCENARIOS",
    "CIFAR100_THRESHOLD_SCHEDULE",
]


def unconstrained(bounds: MetricBounds | None = None) -> RewardConfig:
    """Scenario 1: no constraints, w(area, lat, acc) = (0.1, 0.8, 0.1)."""
    return RewardConfig(
        weights=(0.1, 0.8, 0.1),
        constraints=Constraints(),
        bounds=bounds or MetricBounds(),
        name="unconstrained",
    )


def one_constraint(bounds: MetricBounds | None = None) -> RewardConfig:
    """Scenario 2: latency < 100 ms, w(area, lat, acc) = (0.1, 0, 0.9)."""
    return RewardConfig(
        weights=(0.1, 0.0, 0.9),
        constraints=Constraints(max_latency_ms=100.0),
        bounds=bounds or MetricBounds(),
        name="1-constraint",
    )


def two_constraints(bounds: MetricBounds | None = None) -> RewardConfig:
    """Scenario 3: acc > 92%, area < 100 mm2; optimize latency only."""
    return RewardConfig(
        weights=(0.0, 1.0, 0.0),
        constraints=Constraints(max_area_mm2=100.0, min_accuracy=92.0),
        bounds=bounds or MetricBounds(),
        name="2-constraints",
    )


def cifar100_threshold(
    threshold: float, bounds: MetricBounds | None = None
) -> RewardConfig:
    """Section IV scenario: perf/area >= threshold, maximize accuracy."""
    return RewardConfig(
        weights=(0.0, 0.0, 1.0),
        constraints=Constraints(min_perf_per_area=threshold),
        bounds=bounds or MetricBounds(),
        name=f"perf-area>={threshold:g}",
    )


#: Scenario name -> constructor, as evaluated in Fig. 5 and Fig. 6.
PAPER_SCENARIOS = {
    "unconstrained": unconstrained,
    "1-constraint": one_constraint,
    "2-constraints": two_constraints,
}

#: The gradually increasing perf/area thresholds of Section IV-A.
CIFAR100_THRESHOLD_SCHEDULE = (2.0, 8.0, 16.0, 30.0, 40.0)
