"""The joint CNN x accelerator search space (paper Eq. 1).

``S = Onn1 x Onn2 x ... x Ohw1 x Ohw2 x ...`` — the controller emits
one categorical action per option; the first block of tokens encodes
the cell (edges + ops, see :class:`repro.nasbench.CellEncoding`), the
second block the accelerator parameters
(:class:`repro.accelerator.AcceleratorSpace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.space import AcceleratorSpace
from repro.nasbench.encoding import CellEncoding
from repro.nasbench.model_spec import ModelSpec

__all__ = ["JointSearchSpace"]


@dataclass
class JointSearchSpace:
    """Concatenation of the CNN and accelerator action spaces."""

    cell_encoding: CellEncoding = field(default_factory=CellEncoding)
    accelerator_space: AcceleratorSpace = field(default_factory=AcceleratorSpace)

    # ------------------------------------------------------------------
    @property
    def num_cnn_tokens(self) -> int:
        return self.cell_encoding.num_tokens

    @property
    def num_hw_tokens(self) -> int:
        return self.accelerator_space.num_tokens

    @property
    def num_tokens(self) -> int:
        return self.num_cnn_tokens + self.num_hw_tokens

    @property
    def vocab_sizes(self) -> list[int]:
        """Per-token choice counts: CNN tokens then HW tokens."""
        return self.cell_encoding.vocab_sizes + self.accelerator_space.vocab_sizes

    @property
    def cnn_vocab_sizes(self) -> list[int]:
        return self.cell_encoding.vocab_sizes

    @property
    def hw_vocab_sizes(self) -> list[int]:
        return self.accelerator_space.vocab_sizes

    def raw_size(self) -> int:
        """Product of all vocab sizes (pre-dedup upper bound on |S|)."""
        return self.cell_encoding.space_size * self.accelerator_space.size

    # ------------------------------------------------------------------
    def split(self, actions: Sequence[int]) -> tuple[list[int], list[int]]:
        """Split a joint action vector into (CNN actions, HW actions)."""
        actions = list(actions)
        if len(actions) != self.num_tokens:
            raise ValueError(
                f"expected {self.num_tokens} actions, got {len(actions)}"
            )
        return actions[: self.num_cnn_tokens], actions[self.num_cnn_tokens:]

    def decode(self, actions: Sequence[int]) -> tuple[ModelSpec, AcceleratorConfig]:
        """Decode a joint action vector into a (spec, config) pair."""
        cnn_actions, hw_actions = self.split(actions)
        return (
            self.cell_encoding.decode(cnn_actions),
            self.accelerator_space.decode(hw_actions),
        )

    def hw_index_of(self, actions: Sequence[int]) -> int:
        """Flat accelerator-space index of a joint action vector.

        The index-native decode route for tensorized evaluation: the
        hardware tokens compose straight into the flat config index
        (``AcceleratorSpace.index_of_actions``) without materializing
        an :class:`AcceleratorConfig`.  Always agrees with
        ``accelerator_space.index_of(decode(actions)[1])``.
        """
        _, hw_actions = self.split(actions)
        return self.accelerator_space.index_of_actions(hw_actions)

    def encode(self, spec: ModelSpec, config: AcceleratorConfig) -> list[int]:
        """Joint action vector reproducing ``(spec, config)``."""
        return self.cell_encoding.encode(spec) + self.accelerator_space.encode(config)

    def random_actions(self, rng: np.random.Generator) -> list[int]:
        return [int(rng.integers(0, v)) for v in self.vocab_sizes]
