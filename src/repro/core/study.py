"""Declarative study API: spec-driven experiment construction.

The paper's experiment grids (strategies x scenarios x repeats, Figs.
5-7, Tables 2-3) used to be assembled by hand-rolled closures — every
caller built ``strategy_factory`` / ``evaluator_factory`` lambdas and
threaded a dozen keyword arguments through
:func:`repro.search.runner.run_grid`.  A :class:`StudySpec` replaces
that plumbing with one JSON-round-trippable value object:

* ``strategies`` — registered strategy names plus flat params
  (:mod:`repro.search.registry`);
* ``scenarios`` — scenario registry names, the parametric
  ``perf-area>=N`` family, or inline declarative scenario dicts
  (:mod:`repro.core.scenarios`);
* ``evaluator`` — a registered accuracy source (``database`` /
  ``surrogate`` / ``cifar100-trainer``) plus its params
  (:mod:`repro.core.evaluator`);
* ``hardware`` — one registered hardware platform (``dac2020`` /
  ``dac2020-scaled`` / ``embedded-lite``, :mod:`repro.hw`) plus its
  params, or a *list* of them for a cross-platform sweep: the grid
  then runs once per platform, outcomes key as
  ``<platform>:<scenario>`` and each platform's evaluations live in
  their own cache/ledger namespace;
* ``execution`` — steps, repeats, seed, batch size, backend, workers,
  cache/ledger paths, checkpoint cadence.

:func:`build_study` materializes the spec into
:class:`repro.search.runner.RepeatJob` bags through the registries;
:func:`run_study` drives the grid and returns the same
:class:`repro.experiments.search_study.SearchStudyResult` the legacy
entry points produced.  Because the whole definition is one plain
dict, the run ledger pins ``spec.to_dict()`` automatically — resuming
a spec-driven run with *any* edited spec is refused instead of
silently mixing incompatible results — and every experiment is
runnable from a file: ``repro study run my_study.json``.

Specs compare by value and round-trip losslessly::

    StudySpec.from_dict(spec.to_dict()) == spec
    StudySpec.from_json(spec.to_json()) == spec

``from_dict`` validates eagerly against the registries: unknown
strategy or scenario names, unknown accuracy sources, bad parameter
names/types, and conflicting scenario references all raise
:class:`StudyError` with a message naming the offending field.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.core.reward import RewardConfig
from repro.core.scenarios import (
    ScenarioError,
    get_scenario_builder,
    scenario_from_dict,
)

__all__ = [
    "StudyError",
    "StrategySpec",
    "EvaluatorSpec",
    "HardwareSpec",
    "ExecutionSpec",
    "StudySpec",
    "Study",
    "build_study",
    "run_study",
    "parse_assignments",
    "new_study_id",
    "outcome_summary",
]


class StudyError(ValueError):
    """A study spec could not be validated, resolved, or materialized."""


# ---------------------------------------------------------------------------
# Canonicalization helpers
# ---------------------------------------------------------------------------

def _jsonify(value: Any, where: str) -> Any:
    """Canonical JSON form of ``value`` (tuples -> lists, keys -> str).

    Specs compare by value, so both construction paths — Python
    literals in presets and parsed JSON from files — must normalize to
    identical structures.  Non-JSON values raise :class:`StudyError`
    naming the field.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(v, where) for v in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise StudyError(f"{where}: mapping keys must be strings, got {key!r}")
            out[key] = _jsonify(item, where)
        return out
    raise StudyError(
        f"{where}: {value!r} is not JSON-representable "
        "(specs hold only plain numbers, strings, lists, and mappings)"
    )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise StudyError(message)


def _check_int(value, what: str, minimum: int | None = None, optional: bool = False):
    if value is None and optional:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise StudyError(f"{what} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise StudyError(f"{what} must be >= {minimum}, got {value}")
    return value


def _check_fields(data: dict, allowed: set, what: str) -> None:
    _require(isinstance(data, dict), f"{what} must be a mapping, got {type(data).__name__}")
    unknown = sorted(set(data) - allowed)
    _require(not unknown, f"{what}: unknown field(s) {unknown}; allowed: {sorted(allowed)}")


# ---------------------------------------------------------------------------
# Spec value objects
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StrategySpec:
    """One search strategy: registered name + flat constructor params.

    ``label`` keys the strategy inside the study's outcomes (and in
    job labels / ledger rows); it defaults to ``name``, and must be
    set when the same strategy appears twice with different params.
    """

    name: str
    params: dict = field(default_factory=dict)
    label: str | None = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and bool(self.name),
            "strategy spec needs a non-empty string 'name'",
        )
        object.__setattr__(
            self, "params", _jsonify(self.params, f"strategy {self.name!r} params")
        )
        if self.label is not None:
            _require(
                isinstance(self.label, str) and bool(self.label),
                f"strategy {self.name!r}: 'label' must be a non-empty string",
            )

    @property
    def effective_label(self) -> str:
        return self.label if self.label is not None else self.name

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "params": _jsonify(self.params, "params")}
        if self.label is not None:
            out["label"] = self.label
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "StrategySpec":
        _check_fields(data, {"name", "params", "label"}, "strategy spec")
        return cls(
            name=data.get("name"),
            params=data.get("params") or {},
            label=data.get("label"),
        )


@dataclass(frozen=True)
class EvaluatorSpec:
    """The accuracy source behind ``E(s)``: registered name + params."""

    source: str = "database"
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(
            isinstance(self.source, str) and bool(self.source),
            "evaluator spec needs a non-empty string 'source'",
        )
        object.__setattr__(
            self,
            "params",
            _jsonify(self.params, f"evaluator source {self.source!r} params"),
        )

    def to_dict(self) -> dict:
        return {"source": self.source, "params": _jsonify(self.params, "params")}

    @classmethod
    def from_dict(cls, data: dict) -> "EvaluatorSpec":
        _check_fields(data, {"source", "params"}, "evaluator spec")
        return cls(source=data.get("source", "database"), params=data.get("params") or {})


@dataclass(frozen=True)
class HardwareSpec:
    """The hardware backend of ``E(s)``: registered platform + params.

    ``label`` keys the platform inside a cross-platform sweep's
    outcomes (and in job labels / ledger rows); it defaults to
    ``name`` and must be set when the same platform appears twice with
    different params.

    ``tensorize`` is a per-platform override of the study-wide
    ``execution.tensorize`` toggle (``None`` = inherit): a sweep can
    tensorize an enumerable platform while a huge scaled platform in
    the same study stays on the memoized path.
    """

    name: str = "dac2020"
    params: dict = field(default_factory=dict)
    label: str | None = None
    tensorize: bool | None = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and bool(self.name),
            "hardware spec needs a non-empty string 'name'",
        )
        object.__setattr__(
            self, "params", _jsonify(self.params, f"hardware {self.name!r} params")
        )
        if self.label is not None:
            _require(
                isinstance(self.label, str) and bool(self.label),
                f"hardware {self.name!r}: 'label' must be a non-empty string",
            )
        _require(
            self.tensorize is None or isinstance(self.tensorize, bool),
            f"hardware {self.name!r}: 'tensorize' must be true, false, or "
            f"null (inherit execution.tensorize), got {self.tensorize!r}",
        )

    @property
    def effective_label(self) -> str:
        return self.label if self.label is not None else self.name

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "params": _jsonify(self.params, "params")}
        if self.label is not None:
            out["label"] = self.label
        if self.tensorize is not None:
            # Omitted when inheriting, so pre-tensorize spec dicts —
            # including ledger-pinned ones — stay byte-identical.
            out["tensorize"] = self.tensorize
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "HardwareSpec":
        _check_fields(data, {"name", "params", "label", "tensorize"}, "hardware spec")
        return cls(
            name=data.get("name", "dac2020"),
            params=data.get("params") or {},
            label=data.get("label"),
            tensorize=data.get("tensorize"),
        )


@dataclass(frozen=True)
class ExecutionSpec:
    """How the grid runs: budget, seeding, backend, persistence.

    ``num_steps`` / ``num_repeats`` left as ``None`` resolve from the
    ambient :class:`repro.experiments.common.Scale` at run time, so one
    preset serves smoke, default, and paper scales.  ``cache`` /
    ``ledger`` are file paths (the live objects can also be passed to
    :func:`run_study` directly, overriding the spec).  ``tensorize``
    arms the full-space tensorized evaluation fast path for every
    platform in the study (each :class:`HardwareSpec` may override it;
    platforms too large to enumerate silently fall back).

    ``backend`` names a registered execution backend
    (:func:`repro.parallel.pool.list_backends` — built-ins: serial,
    process, cluster) and ``backend_params`` is its flat constructor
    mapping (e.g. ``{"stale_after": 5.0}`` for cluster), validated
    against the backend class at spec time.
    """

    num_steps: int | None = None
    num_repeats: int | None = None
    master_seed: int = 0
    batch_size: int = 1
    backend: str = "serial"
    backend_params: dict = field(default_factory=dict)
    workers: int | None = None
    cache: str | None = None
    ledger: str | None = None
    checkpoint_every: int = 10
    tensorize: bool = False
    surrogate: bool = False
    exact_fraction: float = 0.25

    def __post_init__(self) -> None:
        _require(
            isinstance(self.tensorize, bool),
            f"execution.tensorize must be true or false, got {self.tensorize!r}",
        )
        _require(
            isinstance(self.surrogate, bool),
            f"execution.surrogate must be true or false, got {self.surrogate!r}",
        )
        _require(
            isinstance(self.exact_fraction, (int, float))
            and not isinstance(self.exact_fraction, bool)
            and 0.0 < float(self.exact_fraction) <= 1.0,
            "execution.exact_fraction must be a number in (0, 1], got "
            f"{self.exact_fraction!r}",
        )
        object.__setattr__(self, "exact_fraction", float(self.exact_fraction))
        _check_int(self.num_steps, "execution.num_steps", 1, optional=True)
        _check_int(self.num_repeats, "execution.num_repeats", 1, optional=True)
        _check_int(self.master_seed, "execution.master_seed")
        _check_int(self.batch_size, "execution.batch_size", 1)
        _check_int(self.checkpoint_every, "execution.checkpoint_every", 1)
        _check_int(self.workers, "execution.workers", 1, optional=True)
        _require(
            isinstance(self.backend, str) and bool(self.backend),
            f"execution.backend must be a backend name string, got {self.backend!r}",
        )
        object.__setattr__(
            self,
            "backend_params",
            _jsonify(self.backend_params, "execution.backend_params"),
        )
        # The registry is the single validator of backend names and
        # their params — error messages cannot drift from the CLI's or
        # run_grid's, because they all ask the same table.
        from repro.parallel.pool import BackendError, validate_backend_params

        try:
            validate_backend_params(self.backend, self.backend_params)
        except BackendError as err:
            raise StudyError(f"execution spec: {err}") from None
        for name in ("cache", "ledger"):
            value = getattr(self, name)
            _require(
                value is None or (isinstance(value, str) and bool(value)),
                f"execution.{name} must be null or a file path string, got {value!r}",
            )

    def to_dict(self) -> dict:
        out = {
            "num_steps": self.num_steps,
            "num_repeats": self.num_repeats,
            "master_seed": self.master_seed,
            "batch_size": self.batch_size,
            "backend": self.backend,
            "workers": self.workers,
            "cache": self.cache,
            "ledger": self.ledger,
            "checkpoint_every": self.checkpoint_every,
        }
        if self.backend_params:
            # Omitted when empty (like tensorize below), so spec dicts
            # from before backend params existed — including
            # ledger-pinned ones — stay byte-identical and resumable.
            out["backend_params"] = _jsonify(self.backend_params, "backend_params")
        if self.tensorize:
            # Omitted when off, so pre-tensorize spec dicts — including
            # ledger-pinned ones — stay byte-identical and resumable.
            out["tensorize"] = True
        if self.surrogate:
            # Same omission contract: two-tier fields only appear when
            # the mode is armed, so pre-surrogate spec dicts —
            # including ledger-pinned ones — stay byte-identical.
            out["surrogate"] = True
            out["exact_fraction"] = self.exact_fraction
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionSpec":
        _check_fields(
            data,
            {
                "num_steps",
                "num_repeats",
                "master_seed",
                "batch_size",
                "backend",
                "backend_params",
                "workers",
                "cache",
                "ledger",
                "checkpoint_every",
                "tensorize",
                "surrogate",
                "exact_fraction",
            },
            "execution spec",
        )
        defaults = cls()
        fields = (
            "num_steps", "num_repeats", "master_seed", "batch_size", "backend",
            "workers", "cache", "ledger", "checkpoint_every", "tensorize",
            "surrogate", "exact_fraction",
        )
        return cls(
            backend_params=data.get("backend_params") or {},
            **{f: data.get(f, getattr(defaults, f)) for f in fields},
        )


def _scenario_key(entry) -> str:
    """The outcome/label key of one scenarios entry."""
    if isinstance(entry, str):
        return entry
    return entry.get("name", "<unnamed>")


@dataclass(frozen=True)
class StudySpec:
    """A complete, serializable experiment-grid definition.

    ``workload`` names the model family being searched
    (:mod:`repro.workloads`); it defaults to the reference
    ``cnn-cell`` recipe and is omitted from serialized dicts at that
    default, so every pre-workload spec — including ledger-pinned
    ones — stays byte-identical and resumable.
    """

    name: str
    strategies: tuple = ()
    scenarios: tuple = ()
    evaluator: EvaluatorSpec = field(default_factory=EvaluatorSpec)
    hardware: tuple = ()
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    workload: str = "cnn-cell"

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and bool(self.name),
            "study spec needs a non-empty string 'name'",
        )
        _require(
            isinstance(self.workload, str) and bool(self.workload),
            f"study {self.name!r}: 'workload' must be a non-empty string",
        )
        strategies = tuple(
            s if isinstance(s, StrategySpec) else StrategySpec.from_dict(s)
            for s in self.strategies
        )
        _require(bool(strategies), f"study {self.name!r}: 'strategies' must not be empty")
        object.__setattr__(self, "strategies", strategies)
        labels = [s.effective_label for s in strategies]
        dupes = sorted({l for l in labels if labels.count(l) > 1})
        _require(
            not dupes,
            f"study {self.name!r}: duplicate strategy label(s) {dupes} — give "
            "repeated strategies distinct 'label' fields",
        )
        scenarios = []
        for entry in self.scenarios:
            if isinstance(entry, str):
                _require(
                    bool(entry),
                    f"study {self.name!r}: scenario names must be non-empty",
                )
                scenarios.append(entry)
            elif isinstance(entry, dict):
                scenarios.append(_jsonify(entry, f"study {self.name!r} scenario"))
            else:
                raise StudyError(
                    f"study {self.name!r}: each scenario is a registry name "
                    f"(string) or an inline spec (mapping), got {entry!r}"
                )
        _require(bool(scenarios), f"study {self.name!r}: 'scenarios' must not be empty")
        keys = [_scenario_key(e) for e in scenarios]
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        _require(
            not dupes,
            f"study {self.name!r}: scenario(s) {dupes} referenced more than "
            "once (by name and/or inline spec) — outcomes would collide",
        )
        object.__setattr__(self, "scenarios", tuple(scenarios))
        if not isinstance(self.evaluator, EvaluatorSpec):
            object.__setattr__(
                self, "evaluator", EvaluatorSpec.from_dict(self.evaluator)
            )
        hardware = self.hardware
        if hardware is None or (isinstance(hardware, tuple) and not hardware):
            hardware = (HardwareSpec(),)
        elif isinstance(hardware, (str, dict, HardwareSpec)):
            hardware = (hardware,)
        elif not isinstance(hardware, (list, tuple)):
            raise StudyError(
                f"study {self.name!r}: 'hardware' is a platform name, a "
                f"hardware spec mapping, or a list of them, got {hardware!r}"
            )
        normalized = []
        for entry in hardware:
            if isinstance(entry, HardwareSpec):
                normalized.append(entry)
            elif isinstance(entry, str):
                _require(
                    bool(entry),
                    f"study {self.name!r}: hardware names must be non-empty",
                )
                normalized.append(HardwareSpec(name=entry))
            elif isinstance(entry, dict):
                normalized.append(HardwareSpec.from_dict(entry))
            else:
                raise StudyError(
                    f"study {self.name!r}: each hardware entry is a platform "
                    f"name (string) or a spec (mapping), got {entry!r}"
                )
        labels = [h.effective_label for h in normalized]
        dupes = sorted({l for l in labels if labels.count(l) > 1})
        _require(
            not dupes,
            f"study {self.name!r}: duplicate hardware label(s) {dupes} — give "
            "repeated platforms distinct 'label' fields",
        )
        object.__setattr__(self, "hardware", tuple(normalized))
        if not isinstance(self.execution, ExecutionSpec):
            object.__setattr__(
                self, "execution", ExecutionSpec.from_dict(self.execution)
            )

    def _hardware_dict(self):
        return (
            self.hardware[0].to_dict()
            if len(self.hardware) == 1
            else [h.to_dict() for h in self.hardware]
        )

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "strategies": [s.to_dict() for s in self.strategies],
            "scenarios": [
                s if isinstance(s, str) else _jsonify(s, "scenario")
                for s in self.scenarios
            ],
            "evaluator": self.evaluator.to_dict(),
            "hardware": self._hardware_dict(),
            "execution": self.execution.to_dict(),
        }
        if self.hardware == (HardwareSpec(),):
            # The implicit reference platform serializes to nothing, so
            # pre-platform spec dicts — including the ones crash-safe
            # ledgers pinned before this field existed — stay
            # byte-identical and remain resumable.
            del out["hardware"]
        if self.workload != "cnn-cell":
            # Same omission contract as 'hardware': the reference
            # workload serializes to nothing, keeping pre-workload spec
            # dicts byte-identical.
            out["workload"] = self.workload
        return out

    @classmethod
    def from_dict(cls, data: dict, validate: bool = True) -> "StudySpec":
        _check_fields(
            data,
            {"name", "strategies", "scenarios", "evaluator", "hardware",
             "execution", "workload"},
            "study spec",
        )
        strategies = data.get("strategies")
        _require(
            isinstance(strategies, (list, tuple)),
            "study spec: 'strategies' must be a list",
        )
        scenarios = data.get("scenarios")
        _require(
            isinstance(scenarios, (list, tuple)),
            "study spec: 'scenarios' must be a list",
        )
        spec = cls(
            name=data.get("name"),
            strategies=tuple(strategies),
            scenarios=tuple(scenarios),
            evaluator=data.get("evaluator") or EvaluatorSpec(),
            hardware=data.get("hardware") or (),
            execution=data.get("execution") or ExecutionSpec(),
            workload=data.get("workload", "cnn-cell"),
        )
        if validate:
            spec.validate()
        return spec

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str, validate: bool = True) -> "StudySpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise StudyError(f"study spec is not valid JSON: {err}") from None
        return cls.from_dict(data, validate=validate)

    @classmethod
    def from_file(cls, path: str | Path, validate: bool = True) -> "StudySpec":
        path = Path(path)
        try:
            text = path.read_text()
        except FileNotFoundError:
            raise StudyError(f"study spec file not found: {path}") from None
        try:
            return cls.from_json(text, validate=validate)
        except StudyError as err:
            raise StudyError(f"{path}: {err}") from None

    # -- validation --------------------------------------------------------
    def validate(self) -> "StudySpec":
        """Resolve every reference against the registries, fail loudly.

        Checks strategy names and parameter names
        (:mod:`repro.search.registry`), scenario names / inline specs
        (:mod:`repro.core.scenarios`), the accuracy source + params
        (:mod:`repro.core.evaluator`), the workload and its
        source/platform compatibility (:mod:`repro.workloads`), and
        the hardware platform(s) + params (:mod:`repro.hw` — platforms
        are cheap to construct, so params are validated by building).
        Returns ``self`` so call sites can chain.
        """
        from repro.core.evaluator import AccuracySourceError, get_accuracy_source
        from repro.hw import HardwarePlatformError, build_platform
        from repro.search.registry import StrategyError, validate_strategy_params
        from repro.workloads import WorkloadError, get_workload

        for strategy in self.strategies:
            try:
                validate_strategy_params(strategy.name, strategy.params)
            except StrategyError as err:
                raise StudyError(f"study {self.name!r}: {err}") from None
        for entry in self.scenarios:
            try:
                if isinstance(entry, str):
                    get_scenario_builder(entry)
                else:
                    scenario_from_dict(entry)
            except ScenarioError as err:
                raise StudyError(f"study {self.name!r}: {err}") from None
        try:
            get_accuracy_source(self.evaluator.source)
        except AccuracySourceError as err:
            raise StudyError(f"study {self.name!r}: {err}") from None
        try:
            workload = get_workload(self.workload)
        except WorkloadError as err:
            raise StudyError(f"study {self.name!r}: {err}") from None
        # The reference workload keeps the open pre-workload contract
        # (any source, any platform — archived studies must keep
        # validating); named workloads pin their compatible recipes.
        if not workload.is_reference:
            if self.evaluator.source not in workload.accuracy_sources:
                raise StudyError(
                    f"study {self.name!r}: workload {workload.name!r} cannot "
                    f"score specs with accuracy source "
                    f"{self.evaluator.source!r}; compatible: "
                    f"{sorted(workload.accuracy_sources)}"
                )
            for hw in self.hardware:
                if not workload.supports_platform(hw.name):
                    raise StudyError(
                        f"study {self.name!r}: platform {hw.name!r} cannot "
                        f"schedule workload {workload.name!r} IRs; "
                        f"compatible: {sorted(workload.platforms)}"
                    )
        for hw in self.hardware:
            try:
                build_platform(hw.name, hw.params)
            except HardwarePlatformError as err:
                raise StudyError(f"study {self.name!r}: {err}") from None
        return self

    # -- overrides ---------------------------------------------------------
    def with_overrides(self, assignments: dict[str, Any]) -> "StudySpec":
        """A new spec with dotted-path fields replaced.

        ``assignments`` maps dotted paths into the :meth:`to_dict`
        structure to new values — e.g. ``{"execution.batch_size": 16,
        "strategies.0.params.population_size": 25}``.  List segments
        are integer indices.  Unknown paths raise :class:`StudyError`
        (overriding a field that does not exist would silently change
        nothing).
        """
        data = self.to_dict()
        # to_dict omits the implicit default platform and the
        # tensorize toggles when at their defaults (ledger byte-compat);
        # overrides still address them by path.
        data.setdefault("hardware", self._hardware_dict())
        data.setdefault("workload", self.workload)
        data["execution"].setdefault("tensorize", self.execution.tensorize)
        data["execution"].setdefault("backend_params", dict(self.execution.backend_params))
        data["execution"].setdefault("surrogate", self.execution.surrogate)
        data["execution"].setdefault("exact_fraction", self.execution.exact_fraction)
        hw_entries = (
            data["hardware"]
            if isinstance(data["hardware"], list)
            else [data["hardware"]]
        )
        for entry, hw in zip(hw_entries, self.hardware):
            entry.setdefault("tensorize", hw.tensorize)
        for path, value in assignments.items():
            _assign(data, path, value)
        return StudySpec.from_dict(data)


#: Mapping fields that are open key/value bags: overrides may *add*
#: keys under them (``--set evaluator.params.seed=9``).  Every other
#: mapping is schema-fixed, so an unknown leaf is a typo, not a new
#: field.
_OPEN_MAPPINGS = ("params", "constraints", "bounds", "backend_params")


def _assign(data: Any, path: str, value: Any) -> None:
    parts = path.split(".")
    target = data
    parent_key = None
    for i, part in enumerate(parts[:-1]):
        target = _descend(target, part, ".".join(parts[: i + 1]))
        parent_key = part
    leaf = parts[-1]
    if isinstance(target, list):
        index = _list_index(target, leaf, path)
        target[index] = value
    elif isinstance(target, dict):
        if leaf not in target and parent_key not in _OPEN_MAPPINGS:
            raise StudyError(
                f"override path {path!r}: no field {leaf!r} "
                f"(existing: {sorted(target)})"
            )
        target[leaf] = value
    else:
        raise StudyError(
            f"override path {path!r}: {'.'.join(parts[:-1])!r} is a "
            f"{type(target).__name__}, not a mapping or list"
        )


def _descend(target: Any, part: str, sofar: str) -> Any:
    if isinstance(target, list):
        return target[_list_index(target, part, sofar)]
    if isinstance(target, dict):
        if part not in target:
            raise StudyError(
                f"override path {sofar!r}: no field {part!r} "
                f"(existing: {sorted(target)})"
            )
        return target[part]
    raise StudyError(
        f"override path {sofar!r}: cannot descend into a {type(target).__name__}"
    )


def _list_index(target: list, part: str, path: str) -> int:
    try:
        index = int(part)
    except ValueError:
        raise StudyError(
            f"override path {path!r}: {part!r} must be a list index "
            f"(0..{len(target) - 1})"
        ) from None
    if not 0 <= index < len(target):
        raise StudyError(
            f"override path {path!r}: index {index} out of range "
            f"(list has {len(target)} item(s))"
        )
    return index


def parse_assignments(pairs: list[str]) -> dict[str, Any]:
    """Parse CLI ``--set path=value`` pairs into an override mapping.

    Values parse as JSON when possible (``16``, ``true``, ``null``,
    ``[1,2]``) and fall back to plain strings (``process``).
    """
    out: dict[str, Any] = {}
    for pair in pairs:
        path, sep, raw = pair.partition("=")
        if not sep or not path:
            raise StudyError(
                f"--set expects path=value, got {pair!r} "
                "(e.g. --set execution.batch_size=16)"
            )
        try:
            out[path] = json.loads(raw)
        except json.JSONDecodeError:
            out[path] = raw
    return out


# ---------------------------------------------------------------------------
# Materialization
# ---------------------------------------------------------------------------

@dataclass
class Study:
    """A spec materialized against the registries, ready to run."""

    spec: StudySpec
    jobs: list  # list[repro.search.runner.RepeatJob]
    job_meta: dict[str, tuple[str, str]]  # label -> (outcome key, strategy)
    scenario_configs: dict[str, RewardConfig]
    pareto_top100: dict[str, list[dict]]
    scale: object  # repro.experiments.common.Scale
    num_steps: int
    num_repeats: int
    namespace: str = ""  # eval-cache namespace (single-platform studies)
    platforms: dict = field(default_factory=dict)  # hw label -> platform
    namespaces: dict = field(default_factory=dict)  # hw label -> namespace


def _resolve_scenarios(spec: StudySpec, bounds) -> dict[str, RewardConfig]:
    """Scenario key -> built RewardConfig (bounds filled from the space)."""
    configs: dict[str, RewardConfig] = {}
    for entry in spec.scenarios:
        try:
            if isinstance(entry, str):
                configs[entry] = get_scenario_builder(entry)(bounds)
            else:
                config = scenario_from_dict(entry, bounds)
                configs[config.name] = config
        except ScenarioError as err:
            raise StudyError(f"study {spec.name!r}: {err}") from None
    return configs


def build_study(spec: StudySpec, bundle=None, scale=None, store=None) -> Study:
    """Materialize ``spec`` into runnable :class:`RepeatJob` bags.

    ``bundle`` supplies the enumerated joint space for table-backed
    sources (loaded on demand for the ``database`` source);  ``scale``
    fills ``num_steps`` / ``num_repeats`` left as ``None`` in the spec
    (default: :meth:`repro.experiments.common.Scale.from_env`).
    ``store`` (an :class:`repro.parallel.EvalCache`) is handed to the
    accuracy-source builder — a training source persists per-cell
    outcomes through it, so warm re-runs pay no repeat training.

    Cross-platform sweeps (more than one ``hardware`` entry) expand
    the grid once per platform.  Each platform searches over its own
    ``config_space()``, evaluates through its own models, and caches
    under its own namespace; outcome keys gain a ``<platform>:``
    prefix so per-platform results never collide.
    """
    from repro.core.evaluator import (
        accuracy_source_namespace,
        build_evaluator,
        get_accuracy_source,
        hardware_namespace,
        platform_matches_bundle,
    )
    from repro.core.search_space import JointSearchSpace
    from repro.experiments.common import Scale
    from repro.hw import SURROGATE_PREFIX, HardwarePlatformError, build_platform
    from repro.search.registry import build_strategy
    from repro.search.runner import RepeatJob
    from repro.search.two_tier import TwoTierFilter
    from repro.workloads import get_workload

    spec.validate()
    workload = get_workload(spec.workload)
    source = get_accuracy_source(spec.evaluator.source)
    if source.requires_bundle and bundle is None:
        from repro.experiments.common import load_bundle

        bundle = load_bundle()
    scale = scale or Scale.from_env()
    num_steps = spec.execution.num_steps or scale.search_steps
    num_repeats = spec.execution.num_repeats or scale.num_repeats

    bounds = bundle.bounds if bundle is not None else None
    scenario_configs = _resolve_scenarios(spec, bounds)
    source_namespace = accuracy_source_namespace(
        spec.evaluator.source, spec.evaluator.params, bundle=bundle
    )
    try:
        platforms = {
            hw.effective_label: build_platform(hw.name, hw.params)
            for hw in spec.hardware
        }
    except HardwarePlatformError as err:
        raise StudyError(f"study {spec.name!r}: {err}") from None
    # Two-tier mode: each platform gets a fitted surrogate twin that
    # ranks inflated proposal batches; only the top exact_fraction
    # slice reaches the exact evaluator (and hence the archive, the
    # eval cache, and the ledger).
    surrogate_twins: dict[str, Any] = {}
    if spec.execution.surrogate:
        for hw in spec.hardware:
            if hw.name.startswith(SURROGATE_PREFIX):
                raise StudyError(
                    f"study {spec.name!r}: execution.surrogate cannot wrap "
                    f"platform {hw.name!r} — it is already a surrogate "
                    "(searching a surrogate directly needs no two-tier mode)"
                )
            try:
                surrogate_twins[hw.effective_label] = build_platform(
                    f"{SURROGATE_PREFIX}{hw.name}", hw.params
                )
            except HardwarePlatformError as err:
                raise StudyError(f"study {spec.name!r}: {err}") from None
    multi_platform = len(platforms) > 1
    namespaces = {
        label: hardware_namespace(source_namespace, platform)
        for label, platform in platforms.items()
    }
    # Per-platform tensorize: the HardwareSpec override wins, else the
    # study-wide execution toggle.
    tensorize_flags = {
        hw.effective_label: (
            hw.tensorize
            if hw.tensorize is not None
            else spec.execution.tensorize
        )
        for hw in spec.hardware
    }

    front = None
    if bundle is not None:
        from repro.core.pareto import product_space_pareto, reward_ranked_points

        front = product_space_pareto(
            bundle.accuracy, bundle.area_mm2, bundle.latency_ms
        )

    pareto_top100: dict[str, list[dict]] = {}
    jobs: list[RepeatJob] = []
    job_meta: dict[str, tuple[str, str]] = {}
    for hw_label, platform in platforms.items():
        # The workload supplies the model half of the joint space (the
        # reference recipe reproduces the historic behaviour exactly:
        # the bundle's encoding when one is loaded, the full cell
        # space otherwise).
        search_space = JointSearchSpace(
            cell_encoding=workload.encoding(bundle),
            accelerator_space=platform.config_space(),
        )
        for scenario_key, scenario in scenario_configs.items():
            outcome_key = (
                f"{hw_label}:{scenario_key}" if multi_platform else scenario_key
            )
            if front is not None and platform_matches_bundle(
                platform, getattr(bundle, "platform", None)
            ):
                # The bundle's metric arrays are only a valid Pareto
                # reference for the platform that enumerated them.
                pareto_top100[outcome_key] = reward_ranked_points(
                    front, scenario, 100
                )
            # One evaluator per (platform, scenario): its metric caches
            # are shared by every strategy's repeats through per-job
            # with_reward clones, exactly like the historic closure path.
            evaluator = build_evaluator(
                spec.evaluator.source,
                scenario,
                spec.evaluator.params,
                bundle=bundle,
                store=store,
                platform=platform,
                tensorize=tensorize_flags[hw_label],
            )
            # The workload's lowering feeds every latency query (the
            # reference workload's is compile_cell_ops — the
            # evaluator's own default, so nothing moves for cnn-cell).
            evaluator.compile_fn = workload.compile
            for strategy in spec.strategies:
                label = f"{outcome_key}/{strategy.effective_label}"
                job_meta[label] = (outcome_key, strategy.effective_label)
                jobs.append(
                    RepeatJob(
                        label=label,
                        strategy_factory=(
                            lambda seed, _s=strategy, _sp=search_space: (
                                build_strategy(_s.name, seed, _sp, **_s.params)
                            )
                        ),
                        evaluator_factory=(
                            lambda _ev=evaluator, _sc=scenario: _ev.with_reward(_sc)
                        ),
                        cache_scenario=namespaces[hw_label],
                        two_tier_factory=(
                            (
                                lambda exact, _tw=surrogate_twins[hw_label],
                                _fr=spec.execution.exact_fraction: TwoTierFilter(
                                    exact.with_platform(_tw), _fr
                                )
                            )
                            if hw_label in surrogate_twins
                            else None
                        ),
                    )
                )
    return Study(
        spec=spec,
        jobs=jobs,
        job_meta=job_meta,
        scenario_configs=scenario_configs,
        pareto_top100=pareto_top100,
        scale=scale,
        num_steps=num_steps,
        num_repeats=num_repeats,
        namespace=next(iter(namespaces.values())) if not multi_platform else "",
        platforms=platforms,
        namespaces=namespaces,
    )


def run_study(
    spec: StudySpec,
    bundle=None,
    scale=None,
    eval_cache=None,
    ledger=None,
):
    """Run the whole spec-defined grid; returns a ``SearchStudyResult``.

    The ledger (``spec.execution.ledger`` path, or a live
    :class:`repro.parallel.RunLedger` passed in) automatically pins
    ``spec.to_dict()`` alongside the grid configuration — **plus** the
    fully *resolved* scenario definitions and the accuracy source's
    cache namespace, so a resume is refused not only when the spec
    text changes but also when a registry name quietly resolves to a
    different definition or the run targets a different space.
    ``eval_cache`` likewise falls back to the ``spec.execution.cache``
    path; it both memoizes pairwise evaluations (via the grid) and
    persists per-cell training outcomes for trainer-backed sources.
    """
    from repro.core.scenarios import scenario_to_dict
    from repro.experiments.search_study import SearchStudyResult
    from repro.parallel.cache import EvalCache
    from repro.parallel.pool import BackendError, build_backend
    from repro.search.runner import run_grid

    execution = spec.execution
    if eval_cache is None and execution.cache is not None:
        eval_cache = execution.cache
    if eval_cache is not None and not isinstance(eval_cache, EvalCache):
        eval_cache = EvalCache(eval_cache)
    if ledger is None and execution.ledger is not None:
        ledger = execution.ledger
    try:
        backend = build_backend(execution.backend, execution.backend_params)
    except BackendError as err:
        raise StudyError(f"study {spec.name!r}: {err}") from None
    study = build_study(spec, bundle=bundle, scale=scale, store=eval_cache)
    grid = run_grid(
        study.jobs,
        num_steps=study.num_steps,
        num_repeats=study.num_repeats,
        master_seed=execution.master_seed,
        backend=backend,
        workers=execution.workers,
        eval_cache=eval_cache,
        batch_size=execution.batch_size,
        ledger=ledger,
        checkpoint_every=execution.checkpoint_every,
        ledger_context={
            "study_spec": spec.to_dict(),
            # Single-platform studies pin the one namespace string
            # (byte-compatible with pre-platform ledgers under the
            # reference platform); sweeps pin the per-platform mapping.
            "space": study.namespace or study.namespaces,
            "scenarios": {
                key: scenario_to_dict(config)
                for key, config in study.scenario_configs.items()
            },
        },
    )
    outcomes: dict[str, dict] = {}
    for label, (outcome_key, strategy_label) in study.job_meta.items():
        outcomes.setdefault(outcome_key, {})[strategy_label] = grid[label]
    return SearchStudyResult(
        outcomes=outcomes,
        pareto_top100=study.pareto_top100,
        scale=study.scale,
        extras={"spec": spec},
    )


def replace_execution(spec: StudySpec, **changes) -> StudySpec:
    """A new spec with ``execution`` fields replaced (None = keep)."""
    kept = {k: v for k, v in changes.items() if v is not None}
    if not kept:
        return spec
    return replace(spec, execution=replace(spec.execution, **kept))


# ---------------------------------------------------------------------------
# Serving plumbing: study ids and JSON-ready outcome summaries
# ---------------------------------------------------------------------------

def new_study_id() -> str:
    """A short unique id for a submitted study (``st-`` + 12 hex chars).

    Ids key queue rows, per-study ledger files, and URLs
    (``/studies/<id>``), so they must be filesystem- and path-safe.
    """
    import uuid

    return "st-" + uuid.uuid4().hex[:12]


def outcome_summary(result) -> dict:
    """JSON-ready summary of a study result's outcomes.

    The one shape shared by every reporting surface — ``repro study
    run``'s markdown, the server's ``/studies/<id>`` result payload,
    and ``repro watch`` — so a served study and a local run of the
    same spec are comparable field for field.  ``best_rewards`` keeps
    the per-repeat best rewards at full float precision (JSON
    round-trips IEEE-754 doubles exactly), which is what the
    kill-and-restart durability test compares bit for bit.  NaN means
    (no feasible point in any repeat) become ``null`` — strict JSON
    has no NaN literal.
    """
    summary: dict[str, dict] = {}
    for outcome_key, by_strategy in result.outcomes.items():
        summary[outcome_key] = {}
        for strategy, outcome in by_strategy.items():
            mean = outcome.mean_best_reward()
            summary[outcome_key][strategy] = {
                "repeats": len(outcome.results),
                "best_rewards": [float(r) for r in outcome.top_rewards()],
                "mean_best_reward": None if mean != mean else float(mean),
                "hit_rate": float(outcome.hit_rate()),
            }
    return summary
