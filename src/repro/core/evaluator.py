"""The evaluation function ``E(s)`` (paper Fig. 1's Evaluator).

Given a proposed (cell, accelerator) pair the evaluator:

1. rejects invalid cells (the controller's raw tokens may decode to a
   disconnected or over-budget graph) — these earn the punishment;
2. reads the cell's accuracy from its accuracy source — a
   :class:`repro.nasbench.CellDatabase` (the NASBench-style flow of
   Section III), any callable such as a surrogate or real trainer
   (the CIFAR-100 flow of Section IV);
3. compiles the cell and asks its :class:`repro.hw.HardwarePlatform`
   for latency and area — both memoized, since searches revisit
   configurations frequently;
4. maps the metric vector through the scenario's reward function.

The hardware side is a swappable backend: the evaluator never
constructs area/latency models itself, it queries whatever platform it
was given (default: the registered ``dac2020`` reference platform,
bit-identical to the historical hardwired models — see
:mod:`repro.hw`).

Memoization is layered: an optional shared persistent
:class:`repro.parallel.EvalCache` (consulted first, so repeats, worker
processes, and re-runs warm-start each other) in front of private
in-memory LRU maps (bounded, so multi-million-point sweeps run in
constant memory).  Both layers store pure functions of their keys, so
caching never changes results — only evaluation cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.accelerator.area import AreaModel
from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.latency import LatencyModel
from repro.accelerator.lut import config_key
from repro.core.metrics import Metrics
from repro.hw import Dac2020Platform, HardwarePlatform
from repro.core.reward import RewardConfig, RewardFunction, RewardResult
from repro.nasbench.compile import compile_cell_ops
from repro.nasbench.database import CellDatabase
from repro.nasbench.model_spec import ModelSpec
from repro.nasbench.skeleton import CIFAR10_SKELETON, SkeletonConfig
from repro.nasbench.surrogate import Cifar10Surrogate
from repro.parallel.cache import CacheEntry, EvalCache
from repro.utils.lru import LRUCache

__all__ = [
    "EvaluationResult",
    "CodesignEvaluator",
    "AccuracySourceError",
    "register_accuracy_source",
    "get_accuracy_source",
    "list_accuracy_sources",
    "build_evaluator",
    "accuracy_source_namespace",
    "hardware_namespace",
    "platform_matches_bundle",
    "DEFAULT_CACHE_CAPACITY",
]

#: Default bound on the evaluator's in-memory latency/area memos.
DEFAULT_CACHE_CAPACITY = 100_000

#: Accuracy source signature: percent accuracy, or ``None`` for
#: "this cell is outside the evaluable space" (punished like invalid).
AccuracyFn = Callable[[ModelSpec], "float | None"]


@dataclass(frozen=True)
class EvaluationResult:
    """Everything the search loop needs about one evaluated point."""

    spec: ModelSpec
    config: AcceleratorConfig
    metrics: Metrics | None
    reward: RewardResult

    @property
    def feasible(self) -> bool:
        return self.reward.feasible

    @property
    def valid(self) -> bool:
        return self.reward.valid


class CodesignEvaluator:
    """Memoized ``E(s)`` over a fixed accuracy source and HW platform."""

    def __init__(
        self,
        accuracy_fn: AccuracyFn,
        reward_config: RewardConfig,
        skeleton: SkeletonConfig = CIFAR10_SKELETON,
        area_model: AreaModel | None = None,
        latency_model: LatencyModel | None = None,
        platform: HardwarePlatform | None = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        tensorize: bool = False,
    ) -> None:
        if platform is not None and (
            area_model is not None or latency_model is not None
        ):
            raise ValueError(
                "pass either 'platform' or the legacy "
                "area_model/latency_model overrides, not both"
            )
        if platform is None:
            # The legacy model overrides become an anonymous dac2020
            # variant; with neither given this is the reference
            # platform, bit-identical to the historic hardwired models.
            platform = Dac2020Platform(
                area_model=area_model, latency_model=latency_model
            )
        self.platform = platform
        self.accuracy_fn = accuracy_fn
        self.reward_fn = RewardFunction(reward_config)
        self.skeleton = skeleton
        # Spec -> IR lowering.  The default compiles NASBench cells
        # onto the CNN skeleton; workload recipes (repro.workloads)
        # install their own — e.g. the transformer workload's GEMM
        # lowering.  Same (spec, skeleton) signature either way.
        self.compile_fn = compile_cell_ops
        self._area_cache: LRUCache = LRUCache(cache_capacity)
        self._latency_cache: LRUCache = LRUCache(cache_capacity)
        self._accuracy_cache: dict[str, float | None] = {}
        # Batch-path memos: pruned-cell content -> spec_hash (the md5
        # canonicalization dominates per-point cost) and config_key ->
        # latency-table column.  Pure key derivations, shared freely.
        self._content_hash_memo: dict[tuple, str] = {}
        self._config_index_memo: dict[tuple, int] = {}
        self._latency_table = None
        self.eval_cache: EvalCache | None = None
        self.cache_scenario = reward_config.name
        self.num_evaluations = 0
        # Tensorized full-space fast path (see repro.hw.tensorized):
        # when enabled and the platform's space is enumerable,
        # evaluate_batch answers from dense per-index arrays plus a
        # bounded (spec_hash, index) -> result memo, bypassing the
        # config_key/LRU machinery entirely.  Lazily constructed so
        # evaluators that never batch pay nothing.
        self.tensorize = bool(tensorize)
        self._cache_capacity = cache_capacity
        self._tensor = None
        self._tensor_unavailable = False
        self._tensor_results: LRUCache = LRUCache(cache_capacity)
        self._tensor_hash_memo: LRUCache = LRUCache(cache_capacity)
        # Registered accuracy-source builders stash their side objects
        # here (e.g. the CIFAR-100 trainer behind ``accuracy_fn``), so
        # callers can reach cost ledgers without private plumbing.
        self.source_info: dict = {}

    def attach_eval_cache(
        self, cache: EvalCache | None, scenario: str | None = None
    ) -> "CodesignEvaluator":
        """Consult (and fill) a shared persistent cache during metrics.

        ``scenario`` namespaces the cache rows; it defaults to the
        reward config's name.  Callers whose accuracy source is not
        fully determined by the scenario (e.g. a surrogate with a
        custom seed) should pass a namespace that includes it.
        """
        self.eval_cache = cache
        if scenario is not None:
            self.cache_scenario = scenario
        return self

    # --- legacy accessors (the models now live on the platform) -----------
    @property
    def area_model(self):
        return getattr(self.platform, "area_model", None)

    @property
    def latency_lut(self):
        return getattr(self.platform, "latency_lut", None)

    def attach_latency_table(self, latency_ms, row_of_hash, space) -> None:
        """Serve latencies from a precomputed (cell x config) matrix.

        ``latency_ms`` is (num_cells, space.size); ``row_of_hash`` maps
        spec hashes to rows.  Pairs outside the table fall back to the
        on-the-fly platform query, so attaching a table never changes
        results — only speed (the batch and scalar paths agree exactly;
        see ``tests/accelerator/test_scheduler.py``).

        The table's configuration space must match the active
        platform's ``config_space()`` exactly: a table enumerated over
        a different space would silently serve wrong latencies (the
        column lookup is positional), so a mismatch refuses loudly.
        """
        table_params = {k: tuple(v) for k, v in space.parameters.items()}
        platform_params = {
            k: tuple(v)
            for k, v in self.platform.config_space().parameters.items()
        }
        if table_params != platform_params:
            differing = sorted(
                name
                for name in set(table_params) | set(platform_params)
                if table_params.get(name) != platform_params.get(name)
            )
            raise ValueError(
                f"latency table's config space does not match platform "
                f"{self.platform.name!r}: parameter(s) {differing} differ "
                "— build the table against this platform's config_space()"
            )
        if latency_ms.shape[1] != space.size:
            raise ValueError(
                f"latency table has {latency_ms.shape[1]} columns but the "
                f"config space enumerates {space.size} configurations"
            )
        self._latency_table = (latency_ms, dict(row_of_hash), space)

    def attach_tensorized(self, tensor) -> "CodesignEvaluator":
        """Serve batches from a prebuilt :class:`TensorizedSpace`.

        Normally :meth:`evaluate_batch` builds (or reuses the
        process-wide memo of) the tensor itself when ``tensorize`` is
        set; attaching explicitly exists for callers that need a
        specific instance — a custom cache directory in tests, or a
        tensor shared across evaluators.  The tensor must have been
        enumerated for this evaluator's platform: matching is by
        ``cache_namespace()``, the identity that pins every
        result-affecting parameter, because a tensor from a different
        platform would silently serve wrong metrics.
        """
        if tensor.platform.cache_namespace() != self.platform.cache_namespace():
            raise ValueError(
                f"tensorized space was enumerated for platform namespace "
                f"{tensor.platform.cache_namespace()!r} but this evaluator "
                f"runs {self.platform.cache_namespace()!r} — build the "
                "tensor from this evaluator's platform"
            )
        self._tensor = tensor
        self._tensor_unavailable = False
        self.tensorize = True
        return self

    def _tensorized(self):
        """The active tensor, or ``None`` when the space is too large."""
        if self._tensor is not None:
            return self._tensor
        if self._tensor_unavailable:
            return None
        from repro.hw.tensorized import enumerable, tensorized_space

        if not enumerable(self.platform):
            # Cache the verdict: falling back must not re-ask the
            # platform for its space size on every batch.
            self._tensor_unavailable = True
            return None
        self._tensor = tensorized_space(self.platform, self.skeleton)
        return self._tensor

    # --- constructors -----------------------------------------------------
    @classmethod
    def from_database(
        cls, database: CellDatabase, reward_config: RewardConfig, **kwargs
    ) -> "CodesignEvaluator":
        """NASBench-style evaluator: only database cells are evaluable.

        Cells outside the database receive ``None`` accuracy and are
        punished — this keeps search and Pareto enumeration over
        exactly the same space (the database is exhaustive for the
        micro space, so in that configuration nothing is ever missed).
        """

        def accuracy_fn(spec: ModelSpec) -> float | None:
            record = database.get(spec)
            return None if record is None else record.validation_accuracy

        return cls(accuracy_fn, reward_config, **kwargs)

    @classmethod
    def from_surrogate(
        cls,
        reward_config: RewardConfig,
        surrogate: Cifar10Surrogate | None = None,
        **kwargs,
    ) -> "CodesignEvaluator":
        """Open-space evaluator: any valid cell is evaluable."""
        surrogate = surrogate or Cifar10Surrogate()
        return cls(surrogate.validation_accuracy, reward_config, **kwargs)

    # --- pieces -------------------------------------------------------------
    def accuracy(self, spec: ModelSpec) -> float | None:
        if not spec.valid:
            return None
        key = spec.spec_hash()
        if key not in self._accuracy_cache:
            self._accuracy_cache[key] = self.accuracy_fn(spec)
        return self._accuracy_cache[key]

    def area_mm2(self, config: AcceleratorConfig) -> float:
        key = config_key(config)
        if key not in self._area_cache:
            self._area_cache[key] = self.platform.area_mm2(config)
        return self._area_cache[key]

    def latency_s(self, spec: ModelSpec, config: AcceleratorConfig) -> float:
        spec_hash = spec.spec_hash()
        if self._latency_table is not None:
            latency_ms, row_of_hash, space = self._latency_table
            row = row_of_hash.get(spec_hash)
            if row is not None:
                return float(latency_ms[row, space.index_of(config)]) / 1e3
        key = (spec_hash, config_key(config))
        if key not in self._latency_cache:
            ir = self.compile_fn(spec, self.skeleton)
            self._latency_cache[key] = self.platform.network_latency_s(ir, config)
        return self._latency_cache[key]

    def metrics(self, spec: ModelSpec, config: AcceleratorConfig) -> Metrics | None:
        """Metric vector of a pair, or ``None`` if not evaluable."""
        if not spec.valid:
            return None
        cache = self.eval_cache
        if cache is None:
            return self._compute_metrics(spec, config)
        cache_key = (self.cache_scenario, spec.spec_hash(), str(config_key(config)))
        hit = cache.get(*cache_key)
        if hit is not None:
            if hit.accuracy is None:
                return None
            return Metrics(
                accuracy=hit.accuracy,
                latency_s=hit.latency_s,
                area_mm2=hit.area_mm2,
            )
        metrics = self._compute_metrics(spec, config)
        if metrics is None:
            cache.put(CacheEntry(*cache_key, None, None, None))
        else:
            cache.put(
                CacheEntry(
                    *cache_key, metrics.accuracy, metrics.latency_s, metrics.area_mm2
                )
            )
        return metrics

    def _compute_metrics(
        self, spec: ModelSpec, config: AcceleratorConfig
    ) -> Metrics | None:
        accuracy = self.accuracy(spec)
        if accuracy is None:
            return None
        if not self.platform.config_valid(config):
            return None
        return Metrics(
            accuracy=accuracy,
            latency_s=self.latency_s(spec, config),
            area_mm2=self.area_mm2(config),
        )

    # --- E(s) ---------------------------------------------------------------
    def evaluate(self, spec: ModelSpec, config: AcceleratorConfig) -> EvaluationResult:
        """Full evaluation: metrics + scenario reward."""
        self.num_evaluations += 1
        metrics = self.metrics(spec, config)
        return EvaluationResult(
            spec=spec, config=config, metrics=metrics, reward=self.reward_fn(metrics)
        )

    def evaluate_batch(
        self, pairs: Sequence[tuple[ModelSpec, AcceleratorConfig]]
    ) -> list[EvaluationResult]:
        """Evaluate many pairs, computing each distinct pair once.

        Returns one result per input pair, in order; duplicate pairs
        share one computation but still count as evaluations.

        This is the engine behind the batched ask/tell search loop: the
        expensive key derivations (``spec_hash``'s isomorphism-invariant
        md5 canonicalization, the latency-table column index) are
        memoized across batches, and duplicate pairs inside a batch
        collapse to one metric + reward computation.  Every metric and
        the reward still come from exactly the same pure lookups and the
        same scalar reward path as :meth:`evaluate`, so batched results
        are bit-identical to pointwise results — only faster.

        With ``tensorize`` set and an enumerable platform space, the
        batch answers from the tensorized fast path instead (pure
        ndarray indexing + a persistent result memo — see
        :meth:`_evaluate_batch_tensorized`); ``evaluate`` always stays
        on the scalar path, which is the reference the differential
        suite compares against.
        """
        if self.tensorize:
            tensor = self._tensorized()
            if tensor is not None:
                return self._evaluate_batch_tensorized(pairs, tensor)
        memo: dict[tuple, EvaluationResult] = {}
        out: list[EvaluationResult] = []
        for spec, config in pairs:
            self.num_evaluations += 1
            if not spec.valid:
                out.append(
                    EvaluationResult(
                        spec=spec, config=config, metrics=None,
                        reward=self.reward_fn(None),
                    )
                )
                continue
            ckey = config_key(config)
            content = (spec.matrix.tobytes(), tuple(spec.ops))
            spec_hash = self._content_hash_memo.get(content)
            if spec_hash is None:
                spec_hash = spec.spec_hash()
                self._content_hash_memo[content] = spec_hash
            key = (spec_hash, ckey)
            result = memo.get(key)
            if result is None:
                metrics = self._metrics_hashed(spec, config, spec_hash, ckey)
                result = EvaluationResult(
                    spec=spec, config=config, metrics=metrics,
                    reward=self.reward_fn(metrics),
                )
                memo[key] = result
            out.append(result)
        return out

    def _evaluate_batch_tensorized(
        self, pairs, tensor
    ) -> list[EvaluationResult]:
        """:meth:`evaluate_batch` answered from dense full-space arrays.

        Per pair: resolve the config to its flat index (identity-memoized
        — interned configs never rebuild a key), then serve the whole
        (metrics, reward) from a bounded ``(spec_hash, index)`` memo; a
        miss reads area/validity straight out of the tensor and latency
        from the attached bundle table or the tensor's per-cell latency
        row.  Results are bit-identical to the scalar path because every
        array element *is* the platform's batch output, which the
        platform contract pins to the scalar call bit for bit, and the
        reward is the same scalar :class:`RewardFunction` applied once
        per distinct point (rewards are pure functions of metrics, so
        memoizing whole results changes cost, never values).

        Deliberately bypassed here: ``config_key`` derivation, the
        ``_content_hash_memo``/``_area_cache``/``_latency_cache`` memos
        (never populated — a full-space sweep leaves them empty), and
        the shared persistent eval cache (the tensor's own disk cache
        provides the warm start instead).
        """
        memo: dict[tuple, EvaluationResult] = {}
        out: list[EvaluationResult] = []
        invalid_reward = None
        for spec, config in pairs:
            self.num_evaluations += 1
            if not spec.valid:
                if invalid_reward is None:
                    invalid_reward = self.reward_fn(None)
                out.append(
                    EvaluationResult(
                        spec=spec, config=config, metrics=None,
                        reward=invalid_reward,
                    )
                )
                continue
            content = (spec.matrix.tobytes(), tuple(spec.ops))
            spec_hash = self._tensor_hash_memo.get(content)
            if spec_hash is None:
                spec_hash = spec.spec_hash()
                self._tensor_hash_memo[content] = spec_hash
            index = tensor.index_of(config)
            key = (spec_hash, index)
            result = memo.get(key)
            if result is None:
                cached = self._tensor_results.get(key)
                if cached is None:
                    metrics = self._tensor_metrics(spec, spec_hash, index, tensor)
                    cached = (metrics, self.reward_fn(metrics))
                    self._tensor_results[key] = cached
                # Rebuild the result around *this* batch's spec/config
                # objects: spec_hash is isomorphism-invariant, so the
                # memoized entry may have been filled by an isomorphic
                # but differently laid-out spec.
                result = EvaluationResult(
                    spec=spec, config=config,
                    metrics=cached[0], reward=cached[1],
                )
                memo[key] = result
            out.append(result)
        return out

    def _tensor_metrics(
        self, spec: ModelSpec, spec_hash: str, index: int, tensor
    ) -> Metrics | None:
        """Metrics for one (cell, flat config index) from the tensor.

        Mirrors :meth:`_metrics_hashed` exactly: accuracy first (same
        ``_accuracy_cache`` — accuracy depends only on the cell, so the
        two paths share it), then configuration validity, then
        latency/area.  Latency prefers the attached bundle table when it
        has a row for this cell — the scalar path serves the identical
        float32-round-tripped entry, and the table's space is validated
        against the platform's at attach time so flat indices align —
        and otherwise reads the tensor's float64 per-cell row.
        """
        if spec_hash in self._accuracy_cache:
            accuracy = self._accuracy_cache[spec_hash]
        else:
            accuracy = self.accuracy_fn(spec)
            self._accuracy_cache[spec_hash] = accuracy
        if accuracy is None or not tensor.valid[index]:
            return None
        latency = None
        if self._latency_table is not None:
            latency_ms, row_of_hash, _space = self._latency_table
            row = row_of_hash.get(spec_hash)
            if row is not None:
                latency = float(latency_ms[row, index]) / 1e3
        if latency is None:
            latency = float(
                tensor.latency_row(
                    spec_hash, lambda: self.compile_fn(spec, self.skeleton)
                )[index]
            )
        return Metrics(
            accuracy=accuracy,
            latency_s=latency,
            area_mm2=float(tensor.area_mm2[index]),
        )

    def _metrics_hashed(
        self,
        spec: ModelSpec,
        config: AcceleratorConfig,
        spec_hash: str,
        ckey: tuple,
    ) -> Metrics | None:
        """:meth:`metrics` with the expensive keys already derived."""
        cache = self.eval_cache
        cache_key = None
        if cache is not None:
            cache_key = (self.cache_scenario, spec_hash, str(ckey))
            hit = cache.get(*cache_key)
            if hit is not None:
                if hit.accuracy is None:
                    return None
                return Metrics(
                    accuracy=hit.accuracy,
                    latency_s=hit.latency_s,
                    area_mm2=hit.area_mm2,
                )
        if spec_hash in self._accuracy_cache:
            accuracy = self._accuracy_cache[spec_hash]
        else:
            accuracy = self.accuracy_fn(spec)
            self._accuracy_cache[spec_hash] = accuracy
        if accuracy is None or not self.platform.config_valid(config):
            if cache is not None:
                cache.put(CacheEntry(*cache_key, None, None, None))
            return None
        latency = self._latency_hashed(spec, config, spec_hash, ckey)
        area = self._area_cache.get(ckey)
        if area is None:
            area = self.platform.area_mm2(config)
            self._area_cache[ckey] = area
        metrics = Metrics(accuracy=accuracy, latency_s=latency, area_mm2=area)
        if cache is not None:
            cache.put(
                CacheEntry(*cache_key, metrics.accuracy, metrics.latency_s, metrics.area_mm2)
            )
        return metrics

    def _latency_hashed(
        self,
        spec: ModelSpec,
        config: AcceleratorConfig,
        spec_hash: str,
        ckey: tuple,
    ) -> float:
        """:meth:`latency_s` with the expensive keys already derived."""
        if self._latency_table is not None:
            latency_ms, row_of_hash, space = self._latency_table
            row = row_of_hash.get(spec_hash)
            if row is not None:
                col = self._config_index_memo.get(ckey)
                if col is None:
                    col = space.index_of(config)
                    self._config_index_memo[ckey] = col
                return float(latency_ms[row, col]) / 1e3
        key = (spec_hash, ckey)
        if key not in self._latency_cache:
            ir = self.compile_fn(spec, self.skeleton)
            self._latency_cache[key] = self.platform.network_latency_s(ir, config)
        return self._latency_cache[key]

    def with_reward(self, reward_config: RewardConfig) -> "CodesignEvaluator":
        """Same caches and platform under a different scenario.

        Used by the threshold-schedule search (Section IV), which
        raises the perf/area constraint mid-run without discarding the
        latency/area memoization.
        """
        clone = CodesignEvaluator.__new__(CodesignEvaluator)
        clone.accuracy_fn = self.accuracy_fn
        clone.reward_fn = RewardFunction(reward_config)
        clone.skeleton = self.skeleton
        clone.compile_fn = self.compile_fn
        clone.platform = self.platform
        clone._area_cache = self._area_cache
        clone._latency_cache = self._latency_cache
        clone._accuracy_cache = self._accuracy_cache
        clone._content_hash_memo = self._content_hash_memo
        clone._config_index_memo = self._config_index_memo
        clone._latency_table = self._latency_table
        clone.eval_cache = self.eval_cache
        # Tensorized state: the tensor and the content->hash memo are
        # reward-independent (shared), but the result memo folds the
        # reward in — a clone under a different scenario needs its own.
        clone.tensorize = self.tensorize
        clone._cache_capacity = self._cache_capacity
        clone._tensor = self._tensor
        clone._tensor_unavailable = self._tensor_unavailable
        clone._tensor_hash_memo = self._tensor_hash_memo
        clone._tensor_results = LRUCache(self._cache_capacity)
        # Clones keep the parent's cache namespace so threshold-schedule
        # rung changes reuse warm rows, mirroring the shared dicts above.
        clone.cache_scenario = self.cache_scenario
        clone.num_evaluations = 0
        clone.source_info = self.source_info
        return clone

    def with_platform(self, platform: HardwarePlatform) -> "CodesignEvaluator":
        """Same accuracy source and scenario on a different platform.

        Used by the two-tier search mode, which scores proposals on a
        :class:`repro.hw.SurrogatePlatform` twin of the exact platform:
        the accuracy function, its cache, and the content-hash memo are
        shared (cell accuracy is platform-independent — re-deriving it
        would re-train trainer-backed sources), but every
        hardware-derived cache starts empty, the precomputed latency
        table is dropped, and no persistent eval cache is attached —
        approximate metrics must never reach (or be served from) the
        exact platform's cached rows.
        """
        clone = CodesignEvaluator.__new__(CodesignEvaluator)
        clone.accuracy_fn = self.accuracy_fn
        clone.reward_fn = RewardFunction(self.reward_fn.config)
        clone.skeleton = self.skeleton
        clone.compile_fn = self.compile_fn
        clone.platform = platform
        clone._area_cache = LRUCache(self._cache_capacity)
        clone._latency_cache = LRUCache(self._cache_capacity)
        clone._accuracy_cache = self._accuracy_cache
        clone._content_hash_memo = self._content_hash_memo
        clone._config_index_memo = {}
        clone._latency_table = None
        clone.eval_cache = None
        clone.tensorize = False
        clone._cache_capacity = self._cache_capacity
        clone._tensor = None
        clone._tensor_unavailable = False
        clone._tensor_hash_memo = LRUCache(self._cache_capacity)
        clone._tensor_results = LRUCache(self._cache_capacity)
        clone.cache_scenario = self.cache_scenario
        clone.num_evaluations = 0
        clone.source_info = self.source_info
        return clone


# ---------------------------------------------------------------------------
# Accuracy-source registry
# ---------------------------------------------------------------------------
#
# A *source* is a named recipe for the evaluator's accuracy function
# (and skeleton): the piece of ``E(s)`` that is not determined by the
# reward scenario.  Registering sources by name makes evaluators
# constructible from plain JSON — the declarative
# :class:`repro.core.study.StudySpec` path names one (``"database"`` /
# ``"surrogate"`` / ``"cifar100-trainer"``) plus a flat params mapping
# and gets back a fully armed :class:`CodesignEvaluator`.
#
# Builder signature::
#
#     build(reward_config, params, *, bundle=None, store=None,
#           platform=None) -> CodesignEvaluator
#
# ``bundle`` is the enumerated-space bundle for table-backed sources
# (duck-typed; see ``repro.experiments.common.SpaceBundle``);
# ``store`` is an optional :class:`repro.parallel.EvalCache` a training
# source may persist per-cell outcomes into; ``platform`` is the
# :class:`repro.hw.HardwarePlatform` the evaluator should query
# (default: the reference ``dac2020``).  ``namespace`` maps the
# same params to the shared-eval-cache namespace, pinning every
# outcome-affecting parameter so differently configured sources never
# share cached rows; compose it with :func:`hardware_namespace` to pin
# the platform as well.

class AccuracySourceError(ValueError):
    """An accuracy-source name or its params could not be resolved."""


@dataclass(frozen=True)
class AccuracySource:
    """One registered accuracy-source recipe."""

    name: str
    build: Callable[..., "CodesignEvaluator"]
    namespace: Callable[..., str]
    requires_bundle: bool = False


_ACCURACY_SOURCES: dict[str, AccuracySource] = {}


def _params_token(params: dict | None) -> str:
    """A short stable digest of a params mapping ('' when empty).

    Appended to cache namespaces so that *any* parameter difference —
    not just the ones a hand-written namespace spells out — keeps two
    configurations from sharing cached rows.
    """
    import hashlib
    import json

    if not params:
        return ""
    def jsonable(value):
        if hasattr(value, "__dataclass_fields__"):
            from dataclasses import asdict

            return asdict(value)
        return value

    blob = json.dumps(
        {k: jsonable(v) for k, v in params.items()},
        sort_keys=True,
        default=str,
    )
    return "/p" + hashlib.md5(blob.encode()).hexdigest()[:10]


def _skeleton_token(params: dict | None) -> str:
    """Namespace suffix pinning the 'skeleton' param (latency-affecting)."""
    return _params_token(
        {"skeleton": params["skeleton"]} if params and params.get("skeleton") else None
    )


def register_accuracy_source(
    name: str,
    build: Callable[..., "CodesignEvaluator"],
    namespace: Callable[..., str] | None = None,
    requires_bundle: bool = False,
    overwrite: bool = False,
) -> AccuracySource:
    """Register an accuracy source under ``name``.

    Without an explicit ``namespace`` function the source's cache
    namespace is ``study/<name>`` plus a digest of the full params
    mapping, so differently parameterized instances never share rows.
    """
    if name in _ACCURACY_SOURCES and not overwrite:
        raise AccuracySourceError(
            f"accuracy source {name!r} is already registered"
        )
    source = AccuracySource(
        name=name,
        build=build,
        namespace=namespace
        or (lambda params, bundle=None: f"study/{name}{_params_token(params)}"),
        requires_bundle=requires_bundle,
    )
    _ACCURACY_SOURCES[name] = source
    return source


def list_accuracy_sources() -> list[str]:
    """Registered accuracy-source names, sorted."""
    return sorted(_ACCURACY_SOURCES)


def get_accuracy_source(name: str) -> AccuracySource:
    if name not in _ACCURACY_SOURCES:
        raise AccuracySourceError(
            f"unknown accuracy source {name!r}; registered: "
            f"{', '.join(list_accuracy_sources())}"
        )
    return _ACCURACY_SOURCES[name]


def _check_params(source: str, params: dict | None, allowed: tuple[str, ...]) -> dict:
    if params is not None and not isinstance(params, dict):
        raise AccuracySourceError(
            f"accuracy source {source!r}: params must be a mapping, "
            f"got {type(params).__name__}"
        )
    params = dict(params or {})
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise AccuracySourceError(
            f"accuracy source {source!r} got unknown parameter(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )
    return params


def _skeleton_from(params: dict, default: SkeletonConfig) -> SkeletonConfig:
    skeleton = params.pop("skeleton", None)
    if skeleton is None:
        return default
    if isinstance(skeleton, SkeletonConfig):
        return skeleton
    if not isinstance(skeleton, dict):
        raise AccuracySourceError(
            f"'skeleton' must be a mapping of SkeletonConfig fields, "
            f"got {type(skeleton).__name__}"
        )
    try:
        return SkeletonConfig(**skeleton)
    except (TypeError, ValueError) as err:
        raise AccuracySourceError(f"bad 'skeleton' params: {err}") from err


def build_evaluator(
    source: str,
    reward_config: RewardConfig,
    params: dict | None = None,
    bundle=None,
    store: EvalCache | None = None,
    platform: HardwarePlatform | None = None,
    tensorize: bool = False,
) -> "CodesignEvaluator":
    """Construct an evaluator from a registered accuracy source.

    ``platform`` selects the hardware backend (see :mod:`repro.hw`);
    ``None`` keeps the reference ``dac2020`` behaviour.  ``tensorize``
    arms the full-space fast path for batch evaluation (a no-op when
    the platform's space is too large to enumerate); it is applied
    after the source builds, so registered builders need not know
    about it.
    """
    entry = get_accuracy_source(source)
    if entry.requires_bundle and bundle is None:
        raise AccuracySourceError(
            f"accuracy source {source!r} needs an enumerated-space bundle "
            "(pass bundle=..., e.g. repro.experiments.common.load_bundle())"
        )
    evaluator = entry.build(
        reward_config, params, bundle=bundle, store=store, platform=platform
    )
    if tensorize:
        evaluator.tensorize = True
    return evaluator


def accuracy_source_namespace(
    source: str, params: dict | None = None, bundle=None
) -> str:
    """Shared-eval-cache namespace pinning the source's parameters."""
    return get_accuracy_source(source).namespace(params or {}, bundle=bundle)


def platform_matches_bundle(
    platform: HardwarePlatform, bundle_platform: HardwarePlatform | None
) -> bool:
    """Whether a bundle's precomputed arrays are valid for ``platform``.

    Bundles predating the platform API carry no platform and were
    enumerated by the reference models; newer bundles pin the platform
    that built them.  Matching is by ``cache_namespace()`` — the
    identity that pins every result-affecting parameter — so two
    equivalent instances (e.g. both built from the same registry
    params) match without having to be the same object.
    """
    if bundle_platform is None:
        return platform.is_reference
    return platform.cache_namespace() == bundle_platform.cache_namespace()


def hardware_namespace(namespace: str, platform: HardwarePlatform | None) -> str:
    """``namespace`` with the platform identity pinned.

    The reference ``dac2020`` platform adds nothing, so every cache and
    ledger row written before the platform API existed stays valid; any
    other platform appends its ``cache_namespace()`` so differently
    modelled hardware never shares rows.
    """
    if platform is None or platform.is_reference:
        return namespace
    return f"{namespace}@{platform.cache_namespace()}"


def _build_database(reward_config, params, bundle=None, store=None, platform=None):
    params = _check_params("database", params, ("skeleton",))
    skeleton = _skeleton_from(params, CIFAR10_SKELETON)
    evaluator = CodesignEvaluator.from_database(
        bundle.database, reward_config, skeleton=skeleton, platform=platform
    )
    # The bundle's precomputed latency matrix is only valid for the
    # platform that enumerated it; any other platform schedules on the
    # fly through its own models instead.
    if platform_matches_bundle(
        evaluator.platform, getattr(bundle, "platform", None)
    ):
        evaluator.attach_latency_table(
            bundle.latency_ms, bundle.row_of_hash(), bundle.space
        )
    evaluator.source_info = {"source": "database"}
    return evaluator


def _database_namespace(params, bundle=None):
    base = (
        "study/database"
        if bundle is None
        else f"study/micro{bundle.cell_encoding.max_vertices}"
    )
    return base + _skeleton_token(params)


_SURROGATE_FIELDS = ("seed", "noise_std", "ceiling", "floor")


def _build_surrogate(reward_config, params, bundle=None, store=None, platform=None):
    params = _check_params("surrogate", params, _SURROGATE_FIELDS + ("skeleton",))
    skeleton = _skeleton_from(params, CIFAR10_SKELETON)
    try:
        surrogate = Cifar10Surrogate(**params)
    except (TypeError, ValueError) as err:
        raise AccuracySourceError(
            f"accuracy source 'surrogate': bad params {params!r}: {err}"
        ) from err
    evaluator = CodesignEvaluator.from_surrogate(
        reward_config, surrogate=surrogate, skeleton=skeleton, platform=platform
    )
    evaluator.source_info = {"source": "surrogate", "surrogate": surrogate}
    return evaluator


def _surrogate_namespace(params, bundle=None):
    surrogate = Cifar10Surrogate(
        **{k: v for k, v in (params or {}).items() if k in _SURROGATE_FIELDS}
    )
    return (
        f"study/surrogate/seed{surrogate.seed}/noise{surrogate.noise_std:g}"
        f"/clip{surrogate.floor:g}-{surrogate.ceiling:g}"
        f"{_skeleton_token(params)}"
    )


_TRAINER_FIELDS = (
    "seed",
    "noise_std",
    "gpu_hours_per_gmac",
    "gpu_hours_base",
    "floor",
    "ceiling",
)


def _build_cifar100_trainer(
    reward_config, params, bundle=None, store=None, platform=None
):
    # Training-stack imports stay function-local: the training layer
    # sits above core in the dependency graph.
    from repro.nasbench.skeleton import CIFAR100_SKELETON
    from repro.training.cache import CachedTrainer
    from repro.training.surrogate_trainer import SurrogateCifar100Trainer

    params = _check_params("cifar100-trainer", params, _TRAINER_FIELDS + ("skeleton",))
    skeleton = _skeleton_from(params, CIFAR100_SKELETON)
    try:
        trainer = SurrogateCifar100Trainer(**params)
    except (TypeError, ValueError) as err:
        raise AccuracySourceError(
            f"accuracy source 'cifar100-trainer': bad params {params!r}: {err}"
        ) from err
    cached = CachedTrainer(trainer, store=store, namespace=trainer.cache_namespace())
    evaluator = CodesignEvaluator(
        accuracy_fn=cached.accuracy_fn, reward_config=reward_config,
        skeleton=skeleton, platform=platform,
    )
    evaluator.source_info = {
        "source": "cifar100-trainer",
        "trainer": trainer,
        "cached": cached,
    }
    return evaluator


def _cifar100_trainer_namespace(params, bundle=None):
    from repro.training.surrogate_trainer import SurrogateCifar100Trainer

    trainer = SurrogateCifar100Trainer(
        **{k: v for k, v in (params or {}).items() if k in _TRAINER_FIELDS}
    )
    return trainer.cache_namespace() + _skeleton_token(params)


register_accuracy_source(
    "database", _build_database, _database_namespace, requires_bundle=True
)
register_accuracy_source("surrogate", _build_surrogate, _surrogate_namespace)
register_accuracy_source(
    "cifar100-trainer", _build_cifar100_trainer, _cifar100_trainer_namespace
)
