"""Pareto-frontier tooling for the joint codesign space (Fig. 4).

The joint space is a product: accuracy depends only on the cell, area
only on the accelerator, latency on both.  :func:`product_space_pareto`
exploits that structure so the full cross-product never materializes as
points: each accelerator "slice" (fixed area) is first reduced to its
2D accuracy-latency staircase — a point dominated within its own slice
is certainly dominated globally, because its dominator has the same
area — and the union of slice staircases then passes through an exact
3D maxima filter.

Dominance is the weak Pareto order: ``p`` dominates ``q`` when ``p >= q``
component-wise with at least one strict inequality; duplicated metric
vectors therefore survive together, matching how the paper counts
Pareto-optimal *pairs*.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass

import numpy as np

__all__ = [
    "pareto_mask_3d",
    "pareto_mask_2d",
    "ProductParetoResult",
    "product_space_pareto",
    "reward_ranked_points",
    "scenario_sweep",
]


def pareto_mask_2d(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Mask of weakly non-dominated points maximizing ``(x, y)``."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    n = len(xs)
    if n == 0:
        return np.zeros(0, dtype=bool)
    # Sort by x desc, then y desc.  A point is dominated iff a strictly
    # earlier point in this order has y >= its y with (x, y) != (x', y').
    order = np.lexsort((-ys, -xs))
    mask = np.ones(n, dtype=bool)
    best_y = -np.inf
    best_pair: tuple[float, float] | None = None
    for idx in order:
        x, y = xs[idx], ys[idx]
        if best_pair is not None and y <= best_y and (x, y) != best_pair:
            # Dominated unless it exactly duplicates the dominator.
            bx, by = best_pair
            if (bx > x or by > y):
                mask[idx] = False
                continue
        if y > best_y or best_pair is None:
            best_y = y
            best_pair = (x, y)
    return mask


def pareto_mask_3d(points: np.ndarray) -> np.ndarray:
    """Mask of weakly non-dominated rows of ``points`` (maximize all).

    Staircase sweep: rows are processed in decreasing order of the
    first coordinate; a sorted structure over (y, z) of all strictly
    better-x rows answers "does any earlier row weakly dominate (y, z)"
    in logarithmic time.  Duplicated rows are all kept.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError("points must be (N, 3)")
    n = len(points)
    if n == 0:
        return np.zeros(0, dtype=bool)

    order = np.lexsort((-points[:, 2], -points[:, 1], -points[:, 0]))
    mask = np.ones(n, dtype=bool)

    # Staircase over (y, z): list of (y, z) kept sorted by y ascending,
    # z strictly decreasing (maximal z for every y level).
    stair_y: list[float] = []
    stair_z: list[float] = []

    def stair_dominates(y: float, z: float) -> bool:
        """True if some staircase entry has y' >= y and z' >= z."""
        i = bisect_left(stair_y, y)
        # Entries at index >= i have y' >= y; z is decreasing in y, so
        # the best candidate z' among them is at index i... but ties of
        # y complicate direction; staircase keeps z strictly decreasing
        # so max z' for y' >= y is at the first index with y' >= y.
        return i < len(stair_y) and stair_z[i] >= z

    def stair_insert(y: float, z: float) -> None:
        if stair_dominates(y, z):
            return
        i = bisect_left(stair_y, y)
        # Remove entries with y' <= y and z' <= z (now redundant).
        j = i
        while j > 0 and stair_z[j - 1] <= z:
            j -= 1
        del stair_y[j:i]
        del stair_z[j:i]
        stair_y.insert(j, y)
        stair_z.insert(j, z)

    i = 0
    while i < n:
        # Group rows sharing the same x so strict-dominance in x holds
        # only against previous groups.
        j = i
        x = points[order[i], 0]
        group = []
        while j < n and points[order[j], 0] == x:
            group.append(order[j])
            j += 1
        # Check against strictly-better-x staircase.
        survivors = []
        for idx in group:
            y, z = points[idx, 1], points[idx, 2]
            if stair_dominates(y, z):
                mask[idx] = False
            else:
                survivors.append(idx)
        # Within the group (equal x) apply 2D weak dominance on (y, z).
        if len(survivors) > 1:
            ys = points[survivors, 1]
            zs = points[survivors, 2]
            sub = pareto_mask_2d(ys, zs)
            for k, idx in enumerate(survivors):
                if not sub[k]:
                    mask[idx] = False
        # Fold the group's survivors into the staircase.
        for idx in survivors:
            if mask[idx]:
                stair_insert(points[idx, 1], points[idx, 2])
        i = j
    return mask


@dataclass
class ProductParetoResult:
    """Pareto frontier of a cell x accelerator product space."""

    cell_indices: np.ndarray      # (P,) row index into the cell axis
    config_indices: np.ndarray    # (P,) column index into the config axis
    accuracy: np.ndarray          # (P,)
    latency_ms: np.ndarray        # (P,)
    area_mm2: np.ndarray          # (P,)

    @property
    def num_points(self) -> int:
        return len(self.cell_indices)

    def num_distinct_cells(self) -> int:
        return len(np.unique(self.cell_indices))

    def num_distinct_configs(self) -> int:
        return len(np.unique(self.config_indices))

    def objective_matrix(self) -> np.ndarray:
        """(P, 3) rows of ``(-area, -latency, accuracy)``."""
        return np.column_stack([-self.area_mm2, -self.latency_ms, self.accuracy])


def product_space_pareto(
    accuracy: np.ndarray,
    area_mm2: np.ndarray,
    latency_ms: np.ndarray,
) -> ProductParetoResult:
    """Exact Pareto frontier of the (cell x accelerator) product space.

    Parameters
    ----------
    accuracy:
        ``(Nc,)`` accuracy per cell (percent).
    area_mm2:
        ``(Nh,)`` area per accelerator config.
    latency_ms:
        ``(Nc, Nh)`` latency of every pair.
    """
    accuracy = np.asarray(accuracy, dtype=np.float64)
    area_mm2 = np.asarray(area_mm2, dtype=np.float64)
    latency_ms = np.asarray(latency_ms, dtype=np.float64)
    n_cells, n_cfg = latency_ms.shape
    if accuracy.shape != (n_cells,) or area_mm2.shape != (n_cfg,):
        raise ValueError("inconsistent shapes between accuracy/area/latency")

    # Stage 1: per-config 2D staircase (maximize accuracy, minimize
    # latency).  Sorting each column by latency and keeping rows whose
    # accuracy matches the running maximum keeps every candidate
    # (weak-dominance survivors included).
    order = np.argsort(latency_ms, axis=0, kind="stable")
    acc_sorted = accuracy[order]
    running = np.maximum.accumulate(acc_sorted, axis=0)
    keep_sorted = acc_sorted >= running
    candidate_cells = []
    candidate_cfgs = []
    for h in range(n_cfg):
        rows = order[keep_sorted[:, h], h]
        candidate_cells.append(rows)
        candidate_cfgs.append(np.full(len(rows), h, dtype=np.int64))
    cells = np.concatenate(candidate_cells)
    cfgs = np.concatenate(candidate_cfgs)

    # Stage 2: exact 3D maxima over the union of slice staircases.
    objectives = np.column_stack(
        [-area_mm2[cfgs], -latency_ms[cells, cfgs], accuracy[cells]]
    )
    mask = pareto_mask_3d(objectives)
    cells = cells[mask]
    cfgs = cfgs[mask]
    return ProductParetoResult(
        cell_indices=cells,
        config_indices=cfgs,
        accuracy=accuracy[cells],
        latency_ms=latency_ms[cells, cfgs],
        area_mm2=area_mm2[cfgs],
    )


def reward_ranked_points(
    front: ProductParetoResult, scenario, k: int = 100
) -> list[dict]:
    """Top-``k`` frontier points ranked by a scenario's reward.

    ``scenario`` is a :class:`~repro.core.reward.RewardConfig`;
    infeasible frontier points (NaN reward, per the epsilon-constraint
    masking) are excluded — these are the reference points Fig. 5
    plots against every strategy's discoveries.
    """
    from repro.core.reward import RewardFunction

    reward_fn = RewardFunction(scenario)
    rewards = reward_fn.reward_array(front.area_mm2, front.latency_ms, front.accuracy)
    order = np.argsort(-np.nan_to_num(rewards, nan=-np.inf))
    rows = []
    for idx in order[:k]:
        if np.isnan(rewards[idx]):
            break
        rows.append(
            {
                "reward": float(rewards[idx]),
                "accuracy": float(front.accuracy[idx]),
                "latency_ms": float(front.latency_ms[idx]),
                "area_mm2": float(front.area_mm2[idx]),
            }
        )
    return rows


def scenario_sweep(
    accuracy: np.ndarray,
    area_mm2: np.ndarray,
    latency_ms: np.ndarray,
    scenarios: dict,
    k: int = 100,
) -> dict[str, list[dict]]:
    """Reward-ranked Pareto points for every scenario in one sweep.

    The (cell x accelerator) frontier is computed once and re-ranked
    under each scenario of ``scenarios`` (name -> RewardConfig), so
    adding registry scenarios to the sweep costs one
    :func:`reward_ranked_points` pass each, not a frontier rebuild.
    """
    front = product_space_pareto(accuracy, area_mm2, latency_ms)
    return {
        name: reward_ranked_points(front, scenario, k)
        for name, scenario in scenarios.items()
    }
