"""Codesign core: metrics, rewards, evaluator, joint space, Pareto tools."""

from repro.core.archive import ArchiveEntry, SearchArchive
from repro.core.evaluator import CodesignEvaluator, EvaluationResult
from repro.core.metrics import METRIC_NAMES, Metrics, perf_per_area
from repro.core.pareto import (
    ProductParetoResult,
    pareto_mask_2d,
    pareto_mask_3d,
    product_space_pareto,
    reward_ranked_points,
    scenario_sweep,
)
from repro.core.reward import (
    Constraints,
    MetricBounds,
    RewardConfig,
    RewardFunction,
    RewardResult,
)
from repro.core.scenarios import (
    CIFAR100_THRESHOLD_SCHEDULE,
    PAPER_SCENARIOS,
    ScenarioError,
    cifar100_threshold,
    get_scenario,
    list_scenarios,
    load_scenario_file,
    make_scenario,
    one_constraint,
    register_scenario,
    resolve_scenarios,
    scenario_from_dict,
    scenario_to_dict,
    two_constraints,
    unconstrained,
)
from repro.core.search_space import JointSearchSpace

__all__ = [
    "ArchiveEntry",
    "SearchArchive",
    "CodesignEvaluator",
    "EvaluationResult",
    "METRIC_NAMES",
    "Metrics",
    "perf_per_area",
    "ProductParetoResult",
    "pareto_mask_2d",
    "pareto_mask_3d",
    "product_space_pareto",
    "reward_ranked_points",
    "scenario_sweep",
    "Constraints",
    "MetricBounds",
    "RewardConfig",
    "RewardFunction",
    "RewardResult",
    "CIFAR100_THRESHOLD_SCHEDULE",
    "PAPER_SCENARIOS",
    "ScenarioError",
    "cifar100_threshold",
    "get_scenario",
    "list_scenarios",
    "load_scenario_file",
    "make_scenario",
    "one_constraint",
    "register_scenario",
    "resolve_scenarios",
    "scenario_from_dict",
    "scenario_to_dict",
    "two_constraints",
    "unconstrained",
    "JointSearchSpace",
]
