"""Codesign-NAS: joint CNN / FPGA-accelerator search (DAC 2020 repro).

Reproduction of Abdelfattah et al., "Best of Both Worlds: AutoML
Codesign of a CNN and its Hardware Accelerator" (DAC 2020).

Quick tour
----------
>>> from repro.nasbench import resnet_cell, CIFAR10_SKELETON, compile_network
>>> from repro.accelerator import AcceleratorConfig, AreaModel, LatencyModel, schedule_network
>>> ir = compile_network(resnet_cell(), CIFAR10_SKELETON)
>>> config = AcceleratorConfig()
>>> schedule_network(ir, config).latency_ms  # doctest: +SKIP
>>> AreaModel().area_mm2(config)             # doctest: +SKIP

Package map: :mod:`repro.nasbench` (CNN search space),
:mod:`repro.accelerator` (HW design space + models), :mod:`repro.hw`
(pluggable hardware-platform registry), :mod:`repro.core`
(metrics/reward/evaluator/Pareto), :mod:`repro.rl` (numpy REINFORCE),
:mod:`repro.search` (combined/phase/separate strategies + the repeat
engine), :mod:`repro.parallel` (process fan-out + persistent eval
cache), :mod:`repro.nn` (numpy NN substrate), :mod:`repro.training`
(training oracles), :mod:`repro.experiments` (per-table/figure
harness), :mod:`repro.utils` (rng/serialization/tables/timing).
See ``docs/architecture.md`` for the module-by-module tour.
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
