"""``repro serve``: a ledger-backed study server (stdlib only).

The serving layer turns the declarative :class:`repro.core.study.
StudySpec` API into a durable job queue over HTTP/JSON.  Four small
modules:

* :mod:`repro.server.queue` — :class:`StudyQueue`: queue state in a
  :class:`repro.parallel.RunLedger` (every transition one committed
  transaction), worker threads that lease studies and run them in
  runner subprocesses, per-study run ledgers and sharded eval caches
  under one state directory.
* :mod:`repro.server.runner` — the subprocess entry point that
  actually executes a leased study and reports back.
* :mod:`repro.server.app` / :mod:`repro.server.handlers` — the
  :class:`StudyServer` HTTP front end (``ThreadingHTTPServer``).
* :mod:`repro.server.client` — :class:`StudyClient`, the urllib
  client behind ``repro submit|status|watch|cancel``.

The durability contract: SIGKILL the server mid-study, boot a new one
on the same state directory, and the study resumes from its ledger —
finishing with outcomes bit-identical to an uninterrupted
``repro study run`` of the same spec
(``tests/server/test_server_e2e.py`` proves it).
"""

from repro.server.app import StudyServer
from repro.server.client import DEFAULT_SERVER, ServerError, StudyClient
from repro.server.queue import StudyQueue

__all__ = [
    "StudyServer",
    "StudyQueue",
    "StudyClient",
    "ServerError",
    "DEFAULT_SERVER",
]
