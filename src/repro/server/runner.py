"""Subprocess entry point that executes one leased study.

The server's worker threads never run searches themselves — they spawn
``python -m repro.server.runner`` (own session, own process group) and
only heartbeat the lease while it lives.  This process loads the
queued spec, runs it through :func:`repro.core.study.run_study`
against the study's *own* run ledger (so every repeat and checkpoint
is crash-safe), and reports the terminal state back to the queue:

* success    -> ``finish_study`` with the JSON outcome summary
* exception  -> ``fail_study`` with the traceback tail
* SIGKILL    -> nothing; the queue row stays ``running`` with a stale
  heartbeat and the next worker to reclaim it resumes from the ledger

``--import MODULE`` (repeatable) imports plugin modules before the
spec is materialized, so deployments can register extra accuracy
sources / hardware platforms / strategies without forking the CLI —
it is also how the durability tests slow a study down enough to be
killed mid-flight.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
import traceback
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.server.runner",
        description="execute one queued study (internal; spawned by repro serve)",
    )
    parser.add_argument("--queue", required=True, type=Path)
    parser.add_argument("--study-id", required=True)
    parser.add_argument("--ledger", required=True, type=Path)
    parser.add_argument("--cache", required=True, type=Path)
    parser.add_argument("--scale", default=None)
    parser.add_argument("--import", dest="imports", action="append", default=[])
    args = parser.parse_args(argv)

    for module in args.imports:
        importlib.import_module(module)

    from repro.core.study import StudySpec, outcome_summary, run_study
    from repro.experiments.common import Scale
    from repro.parallel.ledger import LedgerError, RunLedger

    queue = RunLedger(args.queue)
    row = queue.study(args.study_id)
    if row is None:
        print(f"unknown study {args.study_id!r}", file=sys.stderr)
        return 2
    scale = (
        Scale.named(args.scale) if args.scale else Scale.from_env(default="smoke")
    )
    try:
        spec = StudySpec.from_dict(row["spec"])
        result = run_study(
            spec, scale=scale, eval_cache=args.cache, ledger=args.ledger
        )
    except BaseException:
        error = traceback.format_exc()
        print(error, file=sys.stderr)
        try:
            queue.fail_study(args.study_id, error[-2000:], time.time())
        except LedgerError:
            pass  # cancelled or reclaimed while we were dying
        return 1
    payload = {
        "name": spec.name,
        "scale": scale.name,
        "outcomes": outcome_summary(result),
    }
    try:
        queue.finish_study(args.study_id, payload, time.time())
    except LedgerError as err:
        # Cancelled (or reclaimed as stale) after the work finished:
        # the queue's word stands, this result is discarded.
        print(f"result discarded: {err}", file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
