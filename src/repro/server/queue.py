"""The ledger-backed study queue and its worker pool.

:class:`StudyQueue` owns a *state directory* and nothing else::

    <state_dir>/queue.sqlite            the queue itself (a RunLedger)
    <state_dir>/studies/<id>.ledger     per-study run ledger (tasks,
                                        checkpoints, pinned spec)
    <state_dir>/studies/<id>.log        the study runner's output
    <state_dir>/cache/shard-<h>.sqlite  shared EvalCache, sharded by
                                        (evaluator, hardware) identity

Every queue transition — submit, lease, heartbeat, finish, cancel —
is one committed sqlite transaction (see
:meth:`repro.parallel.RunLedger.submit_study` and friends), so the
queue inherits the ledger's crash-safety story: a SIGKILLed server
loses only its in-memory worker pool.  On the next boot the workers
re-lease every ``running`` study whose heartbeat went stale and the
per-study ledger resumes the search from its last checkpoint —
bit-identical to an uninterrupted run (the kill/resume guarantee
``run_grid`` already proves for local runs).

Studies execute in **runner subprocesses** (``python -m
repro.server.runner``), each in its own session/process group.  That
buys two things threads cannot: cancellation is a real ``killpg`` (a
study stuck in native code still dies), and a crashing study can
never take the server down with it.  Worker threads only lease,
spawn, heartbeat, and reconcile.

Sqlite connections are neither thread- nor fork-safe, so no
:class:`~repro.parallel.RunLedger` instance ever crosses a thread
boundary here: every public method opens a fresh ledger per call and
each worker thread owns one for its lifetime.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.core.study import StudySpec, new_study_id
from repro.parallel.ledger import (
    TERMINAL_STUDY_STATES,
    LedgerError,
    RunLedger,
)

__all__ = ["StudyQueue"]


class StudyQueue:
    """Durable study queue + worker pool over one state directory.

    ``scale`` (a preset name) and ``imports`` (plugin modules) are
    forwarded to every runner subprocess; ``stale_after`` is how many
    seconds a ``running`` study's heartbeat may age before another
    worker treats it as abandoned and re-leases it.
    """

    def __init__(
        self,
        state_dir: str | Path,
        scale: str | None = None,
        workers: int = 1,
        poll_every: float = 0.25,
        heartbeat_every: float = 1.0,
        stale_after: float = 15.0,
        imports: tuple[str, ...] = (),
    ) -> None:
        self.state_dir = Path(state_dir)
        self.queue_path = self.state_dir / "queue.sqlite"
        self.studies_dir = self.state_dir / "studies"
        self.cache_dir = self.state_dir / "cache"
        self.scale = scale
        self.workers = max(1, int(workers))
        self.poll_every = float(poll_every)
        self.heartbeat_every = float(heartbeat_every)
        self.stale_after = float(stale_after)
        self.imports = tuple(imports)
        # Plugins must be live in *this* process too, not just the
        # runners: submit-time validation resolves accuracy sources and
        # hardware names against the registries plugins populate.
        for module in self.imports:
            importlib.import_module(module)
        self.studies_dir.mkdir(parents=True, exist_ok=True)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        #: study_id -> live runner Popen, for cancel/stop (lock-guarded).
        self._procs: dict[str, subprocess.Popen] = {}
        self._lock = threading.Lock()
        # Materialize the queue schema eagerly so a server that binds
        # its port has a working queue file before the first request.
        self.open_ledger().studies()

    # -- paths ---------------------------------------------------------
    def open_ledger(self) -> RunLedger:
        """A fresh queue-ledger handle (never share one across threads)."""
        return RunLedger(self.queue_path)

    def study_ledger_path(self, study_id: str) -> Path:
        return self.studies_dir / f"{study_id}.ledger"

    def study_log_path(self, study_id: str) -> Path:
        return self.studies_dir / f"{study_id}.log"

    def cache_shard_path(self, spec: StudySpec) -> Path:
        """The EvalCache shard for one spec's evaluation identity.

        Shards are keyed by the (evaluator, hardware) spec dicts — the
        fields that determine cache namespaces — so studies with the
        same evaluation semantics warm-start each other while foreign
        ones never contend on one sqlite file.
        """
        data = spec.to_dict()
        identity = json.dumps(
            {"evaluator": data.get("evaluator"), "hardware": data.get("hardware")},
            sort_keys=True,
            separators=(",", ":"),
        )
        digest = hashlib.md5(identity.encode()).hexdigest()[:10]
        return self.cache_dir / f"shard-{digest}.sqlite"

    # -- queue API (any thread) ----------------------------------------
    def submit(self, spec_dict: dict) -> str:
        """Validate and enqueue one spec; returns the new study id.

        Raises :class:`repro.core.study.StudyError` on an invalid
        document (the HTTP layer turns that into a 400 naming the
        offending field).  The *normalized* ``to_dict`` form is what
        gets queued, so the runner re-parses exactly what validation
        approved.
        """
        spec = StudySpec.from_dict(spec_dict)
        study_id = new_study_id()
        self.open_ledger().submit_study(study_id, spec.to_dict(), time.time())
        return study_id

    def cancel(self, study_id: str) -> str | None:
        """Cancel a queued/running study; returns its prior state.

        ``None`` means the study is unknown or already terminal (the
        caller distinguishes via :meth:`status`).  A study running
        under *this* server is killed outright; one leased by another
        server just flips state, and that runner's final
        ``finish_study`` is refused by the ledger.
        """
        prior = self.open_ledger().cancel_study(study_id, time.time())
        if prior == "running":
            with self._lock:
                proc = self._procs.get(study_id)
            if proc is not None:
                _kill_group(proc)
        return prior

    def list_studies(self) -> list[dict]:
        """Brief docs for every queue row, oldest submission first."""
        return [self._brief(row) for row in self.open_ledger().studies()]

    def status(self, study_id: str) -> dict | None:
        """The full status document for one study (``None`` if unknown)."""
        row = self.open_ledger().study(study_id)
        if row is None:
            return None
        doc = self._brief(row)
        doc["spec"] = row["spec"]
        doc["result"] = row["result"]
        doc["error"] = row["error"]
        doc["progress"] = self._progress(study_id)
        return doc

    @staticmethod
    def _brief(row: dict) -> dict:
        return {
            "id": row["id"],
            "name": row["spec"].get("name"),
            "state": row["state"],
            "submitted_at": row["submitted_at"],
            "started_at": row["started_at"],
            "finished_at": row["finished_at"],
            "pid": row["lease_pid"],
        }

    def _progress(self, study_id: str) -> dict:
        """Per-job progress + partial outcomes from the study ledger.

        Totals come from the pinned run configuration (``labels`` x
        ``num_repeats``) — ``tasks`` rows only exist once a repeat
        finishes.  ``best_rewards`` lists the best reward of each
        *finished* repeat (``None`` for repeats with no feasible
        point), so a watcher sees outcomes accrue before the study is
        done.  ``executions`` is the ledger's record of which
        execution backend actually ran each attempt (requested vs
        effective — a resumed study may have fallen back to serial,
        or been picked up by a different backend than the first
        attempt used).
        """
        path = self.study_ledger_path(study_id)
        empty = {"jobs": {}, "done_repeats": 0, "total_repeats": None,
                 "executions": []}
        if not path.exists():
            return empty
        ledger = RunLedger(path)
        config = ledger.run_config() or {}
        statuses = ledger.task_statuses()
        labels = config.get("labels") or sorted(statuses)
        repeats = config.get("num_repeats")
        jobs: dict[str, dict] = {}
        done_repeats = 0
        for label in labels:
            counts = statuses.get(
                label, {"done": 0, "checkpointed": 0, "checkpointed_steps": 0}
            )
            best = [
                None if result.best is None else float(result.best.reward)
                for result in ledger.done_results(label)
            ]
            jobs[label] = {
                "done": counts["done"],
                "total": repeats,
                "checkpointed_steps": counts["checkpointed_steps"],
                "best_rewards": best,
            }
            done_repeats += counts["done"]
        return {
            "jobs": jobs,
            "done_repeats": done_repeats,
            "total_repeats": repeats * len(labels) if repeats else None,
            "executions": ledger.executions(),
        }

    # -- worker pool ---------------------------------------------------
    def start(self) -> None:
        """Spin up the worker threads (idempotent while running)."""
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"study-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Kill live runners and join the workers.

        Interrupted studies are *left* ``running`` in the queue — with
        heartbeats now going stale, the next :meth:`start` (this
        process or a future one) re-leases and resumes them.  That is
        deliberate: stop is indistinguishable from a crash, and resume
        must work identically for both.
        """
        self._stop.set()
        with self._lock:
            procs = list(self._procs.values())
        for proc in procs:
            _kill_group(proc)
        for thread in self._threads:
            thread.join(timeout=10)
        self._threads.clear()

    def _worker_loop(self) -> None:
        ledger = self.open_ledger()
        while not self._stop.is_set():
            study_id = ledger.claim_study(
                os.getpid(), time.time(), self.stale_after
            )
            if study_id is None:
                self._stop.wait(self.poll_every)
                continue
            self._run_one(ledger, study_id)

    def _run_one(self, ledger: RunLedger, study_id: str) -> None:
        """Spawn the runner for one leased study and shepherd it."""
        try:
            spec = self._spec_of(ledger, study_id)
        except Exception as err:  # hand-edited queue row; submit validated
            try:
                ledger.fail_study(study_id, f"invalid spec: {err}", time.time())
            except LedgerError:
                pass
            return
        cmd = [
            sys.executable,
            "-m",
            "repro.server.runner",
            "--queue",
            str(self.queue_path),
            "--study-id",
            study_id,
            "--ledger",
            str(self.study_ledger_path(study_id)),
            "--cache",
            str(self.cache_shard_path(spec)),
        ]
        if self.scale:
            cmd += ["--scale", self.scale]
        for module in self.imports:
            cmd += ["--import", module]
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = (
            src_root + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src_root
        )
        log_path = self.study_log_path(study_id)
        with open(log_path, "ab") as log_file:
            # Own session => own process group: killpg reaches the
            # runner and any process-pool children it forked, and the
            # runner outlives a crashing server (its last checkpoint
            # still lands before the stale lease is reclaimed).
            proc = subprocess.Popen(
                cmd,
                stdout=log_file,
                stderr=subprocess.STDOUT,
                start_new_session=True,
                env=env,
            )
        with self._lock:
            self._procs[study_id] = proc
        try:
            ledger.heartbeat_study(study_id, time.time(), pid=proc.pid)
            while proc.poll() is None:
                if self._stop.wait(self.heartbeat_every):
                    _kill_group(proc)
                    proc.wait()
                    return  # stays 'running'; reclaimed on next boot
                ledger.heartbeat_study(study_id, time.time(), pid=proc.pid)
        finally:
            with self._lock:
                self._procs.pop(study_id, None)
        row = ledger.study(study_id)
        if row is not None and row["state"] == "running":
            # The runner died without reporting (segfault, OOM kill,
            # unhandled exit) — record the failure with its log tail.
            message = f"runner exited with code {proc.returncode}"
            tail = _log_tail(log_path)
            if tail:
                message += "\n" + tail
            try:
                ledger.fail_study(study_id, message, time.time())
            except LedgerError:
                pass  # lost a race with cancel/reclaim; their word stands

    @staticmethod
    def _spec_of(ledger: RunLedger, study_id: str) -> StudySpec:
        return StudySpec.from_dict(ledger.study(study_id)["spec"])

    def is_terminal(self, state: str) -> bool:
        return state in TERMINAL_STUDY_STATES


def _kill_group(proc: subprocess.Popen) -> None:
    """SIGKILL a runner's whole process group (best effort)."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        try:
            proc.kill()
        except ProcessLookupError:
            pass


def _log_tail(path: Path, limit: int = 2000) -> str:
    try:
        return path.read_text(errors="replace")[-limit:].strip()
    except OSError:
        return ""
