"""HTTP request handling for the study server.

Routes (all JSON)::

    GET    /healthz               liveness probe
    GET    /studies               every queue row (brief form)
    POST   /studies               submit a StudySpec document -> 201 {id}
    GET    /studies/<id>          full status document
    GET    /studies/<id>/events   NDJSON stream of status documents
    DELETE /studies/<id>          cancel (409 when already terminal)

Invalid spec documents come back as ``400 {"error": ...}`` with the
field-naming message :meth:`StudySpec.from_dict` raises; unknown ids
are ``404``.

The ``/events`` stream uses the oldest trick in HTTP: the handler
speaks HTTP/1.0, sends no ``Content-Length``, and writes one JSON
document per line whenever the study's status changes — the response
is framed by connection close, so no chunked encoding is needed and
any line-reading client (``curl -N``, :class:`repro.server.client.
StudyClient.events`) consumes it incrementally.  The stream ends with
the first terminal-state document.

The handler keeps no state of its own: every request reaches the
:class:`~repro.server.queue.StudyQueue` through ``self.server.queue``
(attached by :class:`repro.server.app.StudyServer`), and the queue
opens a fresh ledger handle per call — sqlite connections must never
cross the server's request threads.
"""

from __future__ import annotations

import json
import re
import time
from http.server import BaseHTTPRequestHandler
from urllib.parse import urlsplit

from repro.core.study import StudyError
from repro.parallel.ledger import TERMINAL_STUDY_STATES

__all__ = ["StudyRequestHandler"]

_STUDY_ROUTE = re.compile(r"/studies/([^/]+)")
_EVENTS_ROUTE = re.compile(r"/studies/([^/]+)/events")


class StudyRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    # HTTP/1.0 on purpose: connection-close framing is what lets
    # /events stream line-delimited JSON without chunked encoding.
    protocol_version = "HTTP/1.0"

    @property
    def queue(self):
        return self.server.queue

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:
        path = urlsplit(self.path).path
        if path == "/healthz":
            return self._json(200, {"ok": True})
        if path == "/studies":
            return self._json(200, {"studies": self.queue.list_studies()})
        match = _EVENTS_ROUTE.fullmatch(path)
        if match:
            return self._events(match.group(1))
        match = _STUDY_ROUTE.fullmatch(path)
        if match:
            doc = self.queue.status(match.group(1))
            if doc is None:
                return self._unknown(match.group(1))
            return self._json(200, doc)
        self._json(404, {"error": f"no route for GET {path}"})

    def do_POST(self) -> None:
        path = urlsplit(self.path).path
        if path != "/studies":
            return self._json(404, {"error": f"no route for POST {path}"})
        try:
            length = int(self.headers.get("Content-Length") or 0)
            body = json.loads(self.rfile.read(length).decode() or "null")
        except (ValueError, UnicodeDecodeError):
            return self._json(400, {"error": "body must be a JSON document"})
        if not isinstance(body, dict):
            return self._json(
                400, {"error": "body must be a JSON StudySpec object"}
            )
        try:
            study_id = self.queue.submit(body)
        except StudyError as err:
            return self._json(400, {"error": str(err)})
        self._json(201, {"id": study_id, "state": "queued"})

    def do_DELETE(self) -> None:
        path = urlsplit(self.path).path
        match = _STUDY_ROUTE.fullmatch(path)
        if not match:
            return self._json(404, {"error": f"no route for DELETE {path}"})
        study_id = match.group(1)
        prior = self.queue.cancel(study_id)
        if prior is not None:
            return self._json(
                200, {"id": study_id, "state": "cancelled", "was": prior}
            )
        doc = self.queue.status(study_id)
        if doc is None:
            return self._unknown(study_id)
        # Terminal already: cancellation must never overwrite a
        # recorded outcome, so report the conflict instead.
        self._json(
            409,
            {
                "error": f"study {study_id!r} is already {doc['state']}",
                "state": doc["state"],
            },
        )

    # -- responses -----------------------------------------------------
    def _json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode() + b"\n"
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _unknown(self, study_id: str) -> None:
        self._json(404, {"error": f"unknown study {study_id!r}"})

    def _events(self, study_id: str) -> None:
        doc = self.queue.status(study_id)
        if doc is None:
            return self._unknown(study_id)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        poll = getattr(self.server, "events_poll", 0.25)
        last = None
        try:
            while True:
                doc = self.queue.status(study_id)
                if doc is None:  # row vanished under us; end the stream
                    return
                # No sort_keys: the document's own (deterministic) key
                # order is meaningful — the result summary lists
                # strategies in run order, and watchers render it as-is.
                line = json.dumps(doc)
                if line != last:
                    self.wfile.write(line.encode() + b"\n")
                    self.wfile.flush()
                    last = line
                if doc["state"] in TERMINAL_STUDY_STATES:
                    return
                time.sleep(poll)
        except (BrokenPipeError, ConnectionResetError):
            return  # watcher hung up; nothing to clean up

    def log_message(self, format: str, *args) -> None:
        # One quiet line per request on stderr unless the server was
        # built with quiet=True (tests); never the default two-line noise.
        if not getattr(self.server, "quiet", False):
            super().log_message(format, *args)
