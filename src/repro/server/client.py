"""Urllib-based client for the study server's HTTP/JSON API.

This is what ``repro submit|status|watch|cancel`` speak; it has no
dependencies beyond the stdlib and raises :class:`ServerError` (with
the server's own ``error`` message when one came back) for every
failure mode — unreachable server, HTTP error status, timeout.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator

__all__ = ["ServerError", "StudyClient", "DEFAULT_SERVER"]

#: Where the CLI looks when --server/REPRO_SERVER are absent.
DEFAULT_SERVER = "http://127.0.0.1:8321"


class ServerError(RuntimeError):
    """A request to the study server failed.

    ``status`` carries the HTTP status code when the server answered
    at all (``None`` for connection-level failures).
    """

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class StudyClient:
    def __init__(self, base_url: str = DEFAULT_SERVER, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------
    def _open(self, method: str, path: str, payload: dict | None = None, timeout=...):
        data = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if data else {}
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=headers
        )
        try:
            return urllib.request.urlopen(
                request, timeout=self.timeout if timeout is ... else timeout
            )
        except urllib.error.HTTPError as err:
            detail = None
            try:
                detail = json.loads(err.read().decode()).get("error")
            except Exception:
                pass
            raise ServerError(
                detail or f"{method} {path}: HTTP {err.code}", status=err.code
            ) from None
        except urllib.error.URLError as err:
            raise ServerError(
                f"cannot reach study server at {self.base_url}: {err.reason}"
            ) from None

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        with self._open(method, path, payload) as response:
            return json.loads(response.read().decode() or "null")

    # -- API -----------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, spec_dict: dict) -> dict:
        """POST a StudySpec document; returns ``{"id": ..., "state": "queued"}``."""
        return self._request("POST", "/studies", payload=spec_dict)

    def studies(self) -> list[dict]:
        return self._request("GET", "/studies")["studies"]

    def status(self, study_id: str) -> dict:
        return self._request("GET", f"/studies/{study_id}")

    def cancel(self, study_id: str) -> dict:
        return self._request("DELETE", f"/studies/{study_id}")

    def events(self, study_id: str) -> Iterator[dict]:
        """Stream status documents until the study reaches a terminal state.

        No read timeout: between checkpoints a healthy study may be
        silent for a long time, and the server closes the connection
        when the stream is over.
        """
        with self._open("GET", f"/studies/{study_id}/events", timeout=None) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode())

    def wait(
        self, study_id: str, timeout: float | None = None, poll: float = 0.5
    ) -> dict:
        """Poll until the study is terminal; returns the final document."""
        from repro.parallel.ledger import TERMINAL_STUDY_STATES

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            doc = self.status(study_id)
            if doc["state"] in TERMINAL_STUDY_STATES:
                return doc
            if deadline is not None and time.monotonic() > deadline:
                raise ServerError(
                    f"study {study_id!r} still {doc['state']!r} after {timeout}s"
                )
            time.sleep(poll)
