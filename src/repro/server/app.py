"""The study server: one HTTP front end over one :class:`StudyQueue`.

Stdlib only — :class:`http.server.ThreadingHTTPServer` gives each
request its own thread (the /events streams hold theirs for the life
of the watch), and the queue's worker threads run studies through
runner subprocesses.  ``port=0`` binds an ephemeral port (tests, CI);
the bound address is available as :attr:`StudyServer.url` either way.

Two run modes: :meth:`serve_forever` for the CLI (blocks the main
thread until interrupted), and :meth:`start`/:meth:`stop` for
embedding in tests.  Both stop paths leave in-flight studies
``running`` in the queue so the next boot resumes them — shutdown is
deliberately indistinguishable from a crash (see
:meth:`StudyQueue.stop`).
"""

from __future__ import annotations

import threading
from http.server import ThreadingHTTPServer
from pathlib import Path

from repro.server.handlers import StudyRequestHandler
from repro.server.queue import StudyQueue

__all__ = ["StudyServer"]


class StudyServer:
    def __init__(
        self,
        state_dir: str | Path,
        host: str = "127.0.0.1",
        port: int = 8321,
        workers: int = 1,
        scale: str | None = None,
        imports: tuple[str, ...] = (),
        stale_after: float = 15.0,
        events_poll: float = 0.25,
        quiet: bool = False,
    ) -> None:
        self.queue = StudyQueue(
            state_dir,
            scale=scale,
            workers=workers,
            stale_after=stale_after,
            imports=imports,
        )
        self.httpd = ThreadingHTTPServer((host, port), StudyRequestHandler)
        self.httpd.daemon_threads = True
        # The handler reaches everything through its server object.
        self.httpd.queue = self.queue
        self.httpd.events_poll = events_poll
        self.httpd.quiet = quiet
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- embedded mode (tests) -----------------------------------------
    def start(self) -> None:
        """Serve in a background thread; returns once accepting."""
        self.queue.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="study-server",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.queue.stop()
        self.httpd.server_close()

    # -- foreground mode (CLI) -----------------------------------------
    def serve_forever(self) -> None:
        """Block serving requests until KeyboardInterrupt/shutdown."""
        self.queue.start()
        try:
            self.httpd.serve_forever()
        finally:
            self.queue.stop()
            self.httpd.server_close()
