"""Small timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "timed"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    >>> sw = Stopwatch()
    >>> with sw.lap("search"):
    ...     pass
    >>> "search" in sw.laps
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def lap(self, name: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.laps[name] = self.laps.get(name, 0.0) + time.perf_counter() - start

    def total(self) -> float:
        return sum(self.laps.values())


@contextmanager
def timed():
    """Context manager yielding a callable that returns elapsed seconds."""
    start = time.perf_counter()
    yield lambda: time.perf_counter() - start
