"""Plain-text table rendering for experiment reports.

The experiment harness prints the same rows the paper's tables and
figures report.  Rendering is kept dependency-free: GitHub-flavoured
markdown tables and aligned ASCII tables, plus CSV writing.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Sequence
from pathlib import Path

__all__ = ["format_markdown", "format_ascii", "write_csv", "format_float"]


def format_float(value: object, digits: int = 3) -> str:
    """Format a numeric cell; passthrough for non-numeric cells."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    return f"{value:.{digits}f}"


def _stringify(rows: Iterable[Sequence[object]], digits: int) -> list[list[str]]:
    return [[format_float(cell, digits) for cell in row] for row in rows]


def format_markdown(
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    digits: int = 3,
) -> str:
    """Render a GitHub-flavoured markdown table."""
    body = _stringify(rows, digits)
    widths = [len(h) for h in header]
    for row in body:
        if len(row) != len(header):
            raise ValueError(f"row width {len(row)} != header width {len(header)}")
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    lines = [
        "| " + " | ".join(h.ljust(w) for h, w in zip(header, widths)) + " |",
        "|" + "|".join("-" * (w + 2) for w in widths) + "|",
    ]
    for row in body:
        lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    return "\n".join(lines)


def format_ascii(
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    digits: int = 3,
) -> str:
    """Render an aligned plain-ASCII table (no pipes), for terminals."""
    body = _stringify(rows, digits)
    widths = [len(h) for h in header]
    for row in body:
        if len(row) != len(header):
            raise ValueError(f"row width {len(row)} != header width {len(header)}")
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_csv(
    path: str | Path,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write rows to ``path`` as CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(header))
        for row in rows:
            writer.writerow(list(row))
    return path


def csv_string(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a CSV string (used by tests and examples)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(list(header))
    for row in rows:
        writer.writerow(list(row))
    return buf.getvalue()
