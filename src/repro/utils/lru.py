"""A bounded mapping with least-recently-used eviction.

The evaluator's latency/area memos are pure key -> value functions, so
evicting an entry can never change a result — only make a revisit pay
its computation again.  Bounding them lets multi-million-point sweeps
run in constant memory: the hot working set (the configurations a
search keeps revisiting) stays resident while one-off points age out.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["LRUCache"]


class LRUCache(OrderedDict):
    """An :class:`OrderedDict` that evicts its oldest entry past ``capacity``.

    Reads (``[]`` and :meth:`get`) refresh an entry's recency; writes
    insert at the fresh end and evict from the stale end once the
    capacity is exceeded.  ``capacity <= 0`` means unbounded.
    """

    def __init__(self, capacity: int = 0) -> None:
        super().__init__()
        self.capacity = int(capacity)

    def __getitem__(self, key):
        value = super().__getitem__(key)
        self.move_to_end(key)
        return value

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        if self.capacity > 0:
            while len(self) > self.capacity:
                self.popitem(last=False)
