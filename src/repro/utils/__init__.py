"""Shared utilities: RNG management, tables, serialization, timing."""

from repro.utils.rng import DEFAULT_SEED, hash_seed, make_rng, spawn
from repro.utils.serialization import dump_json, load_json, to_jsonable
from repro.utils.tables import format_ascii, format_float, format_markdown, write_csv
from repro.utils.timing import Stopwatch, timed

__all__ = [
    "DEFAULT_SEED",
    "hash_seed",
    "make_rng",
    "spawn",
    "dump_json",
    "load_json",
    "to_jsonable",
    "format_ascii",
    "format_float",
    "format_markdown",
    "write_csv",
    "Stopwatch",
    "timed",
]
