"""JSON (de)serialization helpers for library objects.

Dataclass-based specs and configs throughout the library expose
``to_dict`` / ``from_dict``; this module supplies the shared plumbing
for writing those dicts to disk with numpy-safe encoding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["to_jsonable", "dump_json", "load_json"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into plain JSON-serializable types."""
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(x) for x in obj]
    if hasattr(obj, "to_dict"):
        return to_jsonable(obj.to_dict())
    raise TypeError(f"cannot serialize object of type {type(obj).__name__}")


def dump_json(obj: Any, path: str | Path, indent: int = 2) -> Path:
    """Serialize ``obj`` to JSON at ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=indent, sort_keys=True))
    return path


def load_json(path: str | Path) -> Any:
    """Load JSON from ``path``."""
    return json.loads(Path(path).read_text())
