"""Deterministic random-number management.

Every stochastic component in the library (database sampling, surrogate
noise, RL controllers, search strategies, synthetic datasets) draws from
a :class:`numpy.random.Generator` that is derived from an explicit seed.
Nothing in the library touches the global numpy RNG state, which keeps
experiments reproducible and parallel-safe.

Two idioms are provided:

* :func:`make_rng` — turn ``None`` / an ``int`` / an existing generator
  into a :class:`numpy.random.Generator`.
* :func:`hash_seed` — derive a stable 64-bit seed from arbitrary string
  material.  This is how per-entity determinism is implemented (e.g. the
  surrogate accuracy of a cell depends only on the cell's canonical hash
  and the global surrogate seed, never on call order).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "hash_seed", "spawn", "DEFAULT_SEED"]

DEFAULT_SEED = 0xC0DE51


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to the library default seed (so that "unseeded" runs
    are still reproducible), an ``int`` is used directly, and an
    existing generator is passed through unchanged.
    """
    if seed is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(int(seed))


def hash_seed(*parts: object) -> int:
    """Derive a stable 64-bit seed from the string forms of ``parts``.

    The derivation uses BLAKE2b, so it is stable across processes and
    Python versions (unlike the builtin ``hash``).
    """
    material = "\x1f".join(str(p) for p in parts)
    digest = hashlib.blake2b(material.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63 - 1, size=n)]
