"""The NASBench-101 cell specification.

A :class:`ModelSpec` is an upper-triangular adjacency matrix over at
most :data:`MAX_VERTICES` vertices plus an operation label per vertex.
Construction prunes vertices that are not on any input->output path
(mirroring NASBench-101), after which the search-space validity rules
apply: at most :data:`MAX_VERTICES` vertices, at most :data:`MAX_EDGES`
edges, ``input``/``output`` labels at the endpoints, and interior
labels drawn from :data:`repro.nasbench.ops.INTERIOR_OPS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.nasbench import graph_util
from repro.nasbench.ops import INPUT, INTERIOR_OPS, OP_INDEX, OUTPUT

__all__ = ["ModelSpec", "MAX_VERTICES", "MAX_EDGES", "InvalidSpecError"]

#: NASBench-101 limits: cells have at most 7 vertices and 9 edges.
MAX_VERTICES = 7
MAX_EDGES = 9


class InvalidSpecError(ValueError):
    """Raised when a spec violates the search-space rules."""


@dataclass(frozen=True)
class ModelSpec:
    """An immutable, pruned cell specification.

    Parameters
    ----------
    original_matrix, original_ops:
        The spec as proposed (e.g. decoded from controller actions).
    matrix, ops:
        The pruned spec actually built/evaluated.  Populated during
        ``__post_init__``; equal to the originals when nothing prunes.
    valid:
        False when pruning disconnects input from output or a rule is
        violated; invalid specs are never compiled and receive the
        punishment reward during search.
    """

    original_matrix: np.ndarray
    original_ops: tuple[str, ...]
    matrix: np.ndarray = field(init=False, repr=False)
    ops: tuple[str, ...] = field(init=False)
    valid: bool = field(init=False)
    invalid_reason: str = field(init=False, default="")

    def __post_init__(self) -> None:
        matrix = np.asarray(self.original_matrix, dtype=np.int8)
        object.__setattr__(self, "original_matrix", matrix)
        object.__setattr__(self, "original_ops", tuple(self.original_ops))

        reason = self._structural_problem(matrix, self.original_ops)
        if reason is not None:
            self._mark_invalid(matrix, reason)
            return

        pruned = graph_util.prune(matrix, list(self.original_ops))
        if pruned is None:
            self._mark_invalid(matrix, "no input->output path")
            return
        pruned_matrix, pruned_ops = pruned
        if graph_util.num_edges(pruned_matrix) > MAX_EDGES:
            self._mark_invalid(matrix, f"more than {MAX_EDGES} edges after pruning")
            return
        object.__setattr__(self, "matrix", pruned_matrix)
        object.__setattr__(self, "ops", tuple(pruned_ops))
        object.__setattr__(self, "valid", True)

    # ------------------------------------------------------------------
    @staticmethod
    def _structural_problem(matrix: np.ndarray, ops: tuple[str, ...]) -> str | None:
        n = matrix.shape[0]
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            return "adjacency matrix must be square"
        if n < 2:
            return "need at least input and output vertices"
        if n > MAX_VERTICES:
            return f"more than {MAX_VERTICES} vertices"
        if len(ops) != n:
            return "ops length must match vertex count"
        if not graph_util.is_upper_triangular(matrix):
            return "adjacency matrix must be strictly upper-triangular"
        if not np.isin(matrix, (0, 1)).all():
            return "adjacency matrix must be binary"
        if ops[0] != INPUT:
            return "first op must be 'input'"
        if ops[-1] != OUTPUT:
            return "last op must be 'output'"
        for op in ops[1:-1]:
            if op not in INTERIOR_OPS:
                return f"unknown interior op {op!r}"
        return None

    def _mark_invalid(self, matrix: np.ndarray, reason: str) -> None:
        object.__setattr__(self, "matrix", np.zeros((0, 0), dtype=np.int8))
        object.__setattr__(self, "ops", ())
        object.__setattr__(self, "valid", False)
        object.__setattr__(self, "invalid_reason", reason)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Vertex count of the pruned cell (0 when invalid)."""
        return self.matrix.shape[0] if self.valid else 0

    @property
    def num_edges(self) -> int:
        """Edge count of the pruned cell (0 when invalid)."""
        return graph_util.num_edges(self.matrix) if self.valid else 0

    def op_counts(self) -> dict[str, int]:
        """Count of each interior op in the pruned cell."""
        counts = {op: 0 for op in INTERIOR_OPS}
        for op in self.ops[1:-1]:
            counts[op] += 1
        return counts

    def depth(self) -> int:
        """Vertices on the longest input->output path (>=2 when valid)."""
        if not self.valid:
            return 0
        return graph_util.longest_path_length(self.matrix)

    def has_output_skip(self) -> bool:
        """True when the input vertex connects directly to the output."""
        return bool(self.valid and self.matrix[0, -1])

    def spec_hash(self) -> str:
        """Isomorphism-invariant fingerprint of the pruned cell.

        Labels follow NASBench-101: ``-1`` for input, ``-2`` for output
        and the canonical op index for interior vertices, so the hash
        matches across any vertex reordering of the same cell.
        """
        if not self.valid:
            raise InvalidSpecError(f"invalid spec has no hash: {self.invalid_reason}")
        labeling = [-1] + [OP_INDEX[op] for op in self.ops[1:-1]] + [-2]
        return graph_util.hash_module(self.matrix, labeling)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (original, unpruned spec)."""
        return {
            "matrix": self.original_matrix.astype(int).tolist(),
            "ops": list(self.original_ops),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModelSpec":
        return cls(np.asarray(data["matrix"]), tuple(data["ops"]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ModelSpec):
            return NotImplemented
        if self.valid != other.valid:
            return False
        if not self.valid:
            return (
                self.original_ops == other.original_ops
                and np.array_equal(self.original_matrix, other.original_matrix)
            )
        return self.ops == other.ops and np.array_equal(self.matrix, other.matrix)

    def __hash__(self) -> int:
        if self.valid:
            return hash((self.ops, self.matrix.tobytes()))
        return hash((self.original_ops, self.original_matrix.tobytes()))

    def __str__(self) -> str:
        if not self.valid:
            return f"ModelSpec(invalid: {self.invalid_reason})"
        edges = [
            (i, j)
            for i in range(self.num_vertices)
            for j in range(self.num_vertices)
            if self.matrix[i, j]
        ]
        return f"ModelSpec(V={self.num_vertices}, E={edges}, ops={list(self.ops)})"
