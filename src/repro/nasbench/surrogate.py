"""Calibrated surrogate for NASBench-101's precomputed CIFAR-10 metrics.

The paper reads accuracy (and training time) for every cell out of the
NASBench-101 database.  That database is not available offline, so this
module provides a **deterministic response surface** over interpretable
cell features, calibrated to NASBench's published statistics:

* accuracies concentrate in the high-80s to mid-94s with a ~94.5-95%
  ceiling (Fig. 4's Pareto band spans 91-94.5%);
* deeper cells and conv3x3-rich cells are more accurate; pooling-heavy
  and projection-only cells fall off; capacity (parameters) helps with
  diminishing returns — so accuracy correlates positively with
  latency/area pressure, which is what produces the paper's three-way
  tradeoff;
* per-cell "training noise" is drawn deterministically from the cell's
  canonical hash, so repeated queries agree and experiments reproduce.

The surrogate is *not* claimed to predict real NASBench numbers; it
preserves the statistical shape the search and Pareto analyses consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.nasbench import graph_util
from repro.nasbench.compile import compile_cell_ops
from repro.nasbench.model_spec import ModelSpec
from repro.nasbench.ops import CONV1X1, CONV3X3, MAXPOOL3X3
from repro.nasbench.skeleton import CIFAR10_SKELETON, SkeletonConfig
from repro.utils.rng import hash_seed

__all__ = ["CellFeatures", "extract_features", "Cifar10Surrogate"]


@dataclass(frozen=True)
class CellFeatures:
    """Interpretable cell descriptors feeding the surrogates."""

    num_vertices: int
    num_edges: int
    depth: int          # vertices on the longest input->output path
    width: int          # max vertices sharing a topological layer
    n_conv3x3: int
    n_conv1x1: int
    n_maxpool: int
    has_output_skip: bool
    log10_params: float
    giga_macs: float

    @property
    def n_interior(self) -> int:
        return self.n_conv3x3 + self.n_conv1x1 + self.n_maxpool

    def as_vector(self) -> np.ndarray:
        return np.array(
            [
                self.num_vertices,
                self.num_edges,
                self.depth,
                self.width,
                self.n_conv3x3,
                self.n_conv1x1,
                self.n_maxpool,
                float(self.has_output_skip),
                self.log10_params,
                self.giga_macs,
            ],
            dtype=np.float64,
        )


def extract_features(
    spec: ModelSpec, skeleton: SkeletonConfig = CIFAR10_SKELETON
) -> CellFeatures:
    """Compute :class:`CellFeatures` for a valid spec."""
    if not spec.valid:
        raise ValueError("cannot featurize an invalid spec")
    ir = compile_cell_ops(spec, skeleton)
    counts = spec.op_counts()
    layers = graph_util.topological_layers(spec.matrix)
    width = max(np.bincount(np.asarray(layers))) if layers else 1
    return CellFeatures(
        num_vertices=spec.num_vertices,
        num_edges=spec.num_edges,
        depth=spec.depth(),
        width=int(width),
        n_conv3x3=counts[CONV3X3],
        n_conv1x1=counts[CONV1X1],
        n_maxpool=counts[MAXPOOL3X3],
        has_output_skip=spec.has_output_skip(),
        log10_params=float(np.log10(max(ir.total_params, 1))),
        giga_macs=ir.total_macs / 1e9,
    )


@dataclass(frozen=True)
class Cifar10Surrogate:
    """Deterministic CIFAR-10 validation/test accuracy + training time.

    Parameters
    ----------
    seed:
        Global seed folded into every cell's noise draw; two surrogates
        with the same seed agree exactly on every cell.
    noise_std:
        Std-dev (percentage points) of the per-cell training noise.
        NASBench's run-to-run validation std is a few tenths of a point.
    """

    seed: int = 101
    noise_std: float = 0.25
    ceiling: float = 95.1
    floor: float = 80.0

    # --- calibrated response surface -----------------------------------
    def _mean_accuracy(self, f: CellFeatures) -> float:
        """Noise-free validation accuracy (percent)."""
        acc = 92.5
        # Depth: shallow cells lose the most; saturates around depth 6.
        acc -= 5.5 * np.exp(-0.9 * (f.depth - 2))
        # Conv3x3s carry the representational power; conv1x1s help less.
        acc += 1.1 * (1.0 - np.exp(-0.7 * f.n_conv3x3))
        acc += 0.3 * (1.0 - np.exp(-0.6 * f.n_conv1x1))
        # Pool-heavy cells lose accuracy (no learnable weights).
        acc -= 1.8 * (f.n_maxpool / max(f.n_interior, 1)) ** 2
        # Capacity with diminishing returns; ~10^6.7 params is typical.
        acc += 1.2 * np.tanh(0.7 * (f.log10_params - 6.7))
        # Residual-style skip into the output helps optimization.
        if f.has_output_skip:
            acc += 0.35
        # Mild benefit from parallel branches (ensembling effect).
        acc += 0.25 * min(f.width - 1, 3)
        return float(acc)

    def _noise(self, spec_hash: str, tag: str) -> float:
        rng = np.random.default_rng(hash_seed("c10", self.seed, spec_hash, tag))
        return float(rng.normal(0.0, self.noise_std))

    # --- public API -----------------------------------------------------
    def validation_accuracy(self, spec: ModelSpec) -> float:
        """Deterministic validation accuracy in percent."""
        f = extract_features(spec)
        raw = self._mean_accuracy(f) + self._noise(spec.spec_hash(), "val")
        return float(np.clip(raw, self.floor, self.ceiling))

    def test_accuracy(self, spec: ModelSpec) -> float:
        """Test accuracy: validation minus a small deterministic gap."""
        f = extract_features(spec)
        gap = 0.35 + abs(self._noise(spec.spec_hash(), "gap")) * 0.5
        raw = self._mean_accuracy(f) + self._noise(spec.spec_hash(), "val") - gap
        return float(np.clip(raw, self.floor - 1.0, self.ceiling))

    def training_seconds(self, spec: ModelSpec) -> float:
        """Simulated 108-epoch training wall-clock (single GPU)."""
        f = extract_features(spec)
        base = 550.0 + 900.0 * f.giga_macs
        jitter = 1.0 + 0.05 * self._noise(spec.spec_hash(), "time") / max(self.noise_std, 1e-9)
        return float(base * max(jitter, 0.5))

    @lru_cache(maxsize=1 << 16)
    def _cached_val(self, matrix_bytes: bytes, shape: int, ops: tuple[str, ...]) -> float:
        spec = ModelSpec(
            np.frombuffer(matrix_bytes, dtype=np.int8).reshape(shape, shape), ops
        )
        return self.validation_accuracy(spec)

    def validation_accuracy_cached(self, spec: ModelSpec) -> float:
        """Memoized accuracy lookup keyed by the pruned spec."""
        return self._cached_val(spec.matrix.tobytes(), spec.matrix.shape[0], spec.ops)
