"""Network skeleton around a searched cell (NASBench-101, Fig. 2).

The macro-architecture is fixed: a 3x3 convolution stem, three stacks
of three cells, a 2x2 max-pool downsample between stacks (channels
double after each downsample), then global average pooling and a fully
connected classifier.  Only the cell's internals are searched.

Also hosts :func:`compute_vertex_channels`, NASBench-101's channel
inference: channels of vertices feeding the output split the cell's
output channel count (the output concatenates them), and other interior
vertices inherit the maximum channel count of their successors so that
element-wise additions line up (bigger tensors are truncated on the
edge, exactly as in the reference implementation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SkeletonConfig", "compute_vertex_channels", "CIFAR10_SKELETON", "CIFAR100_SKELETON"]


@dataclass(frozen=True)
class SkeletonConfig:
    """Macro-architecture hyper-parameters (NASBench-101 defaults)."""

    input_height: int = 32
    input_width: int = 32
    input_channels: int = 3
    stem_channels: int = 128
    num_stacks: int = 3
    cells_per_stack: int = 3
    num_classes: int = 10

    def __post_init__(self) -> None:
        for name in ("input_height", "input_width", "input_channels",
                     "stem_channels", "num_stacks", "cells_per_stack",
                     "num_classes"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        # Each downsample halves the spatial size; make sure it divides.
        shrink = 2 ** (self.num_stacks - 1)
        if self.input_height % shrink or self.input_width % shrink:
            raise ValueError(
                f"input {self.input_height}x{self.input_width} not divisible by "
                f"the {self.num_stacks - 1} downsamples"
            )

    def stack_channels(self) -> list[int]:
        """Cell output channels per stack (doubling after downsample)."""
        return [self.stem_channels * (2**i) for i in range(self.num_stacks)]

    def stack_spatial(self) -> list[tuple[int, int]]:
        """(height, width) of feature maps per stack."""
        return [
            (self.input_height // (2**i), self.input_width // (2**i))
            for i in range(self.num_stacks)
        ]


#: The skeleton used for all NASBench-101 CIFAR-10 experiments.
CIFAR10_SKELETON = SkeletonConfig(num_classes=10)

#: Same macro-architecture with a 100-way classifier (Section IV).
CIFAR100_SKELETON = SkeletonConfig(num_classes=100)


def compute_vertex_channels(
    input_channels: int, output_channels: int, matrix: np.ndarray
) -> list[int]:
    """Channel count at each cell vertex (NASBench-101 algorithm).

    ``vertex_channels[v]`` is the number of channels the op at vertex
    ``v`` consumes and produces.  Vertices with an edge to the output
    share ``output_channels`` as evenly as possible (the output vertex
    concatenates them; the first ``output_channels % fan_in`` vertices
    take one extra channel).  Remaining interior vertices take the max
    of their successors' channels.  Edges from the input vertex are 1x1
    projections and are therefore excluded from the split.
    """
    num_vertices = matrix.shape[0]
    if num_vertices < 2:
        raise ValueError("cell needs at least input and output vertices")
    vertex_channels = [0] * num_vertices
    vertex_channels[0] = int(input_channels)
    vertex_channels[num_vertices - 1] = int(output_channels)
    if num_vertices == 2:
        # Input wired straight to output: a single projection.
        return vertex_channels

    # Fan-in of the output vertex from *interior* vertices only.
    out_fan_in = int(np.sum(matrix[1:-1, num_vertices - 1]))
    if out_fan_in == 0:
        raise ValueError("output vertex has no interior predecessor")
    interior = output_channels // out_fan_in
    correction = output_channels % out_fan_in

    for v in range(1, num_vertices - 1):
        if matrix[v, num_vertices - 1]:
            vertex_channels[v] = interior
            if correction:
                vertex_channels[v] += 1
                correction -= 1

    # Walk backwards so successors are resolved before predecessors.
    for v in range(num_vertices - 3, 0, -1):
        if not matrix[v, num_vertices - 1]:
            for dst in range(v + 1, num_vertices - 1):
                if matrix[v, dst]:
                    vertex_channels[v] = max(vertex_channels[v], vertex_channels[dst])
        if vertex_channels[v] == 0:
            raise ValueError(f"vertex {v} has no path to output after pruning")

    # Invariants from the reference implementation.
    final_fan_in = 0
    for v in range(1, num_vertices - 1):
        if matrix[v, num_vertices - 1]:
            final_fan_in += vertex_channels[v]
        for dst in range(v + 1, num_vertices - 1):
            if matrix[v, dst] and vertex_channels[v] < vertex_channels[dst]:
                raise AssertionError("channels must never increase along interior edges")
    if final_fan_in != output_channels:
        raise AssertionError("concatenated channels must equal output channels")
    return vertex_channels
