"""NASBench-101 CNN search space: specs, compilation, database, surrogate."""

from repro.nasbench.compile import CompiledOp, NetworkIR, compile_cell_ops, compile_network
from repro.nasbench.database import (
    CellDatabase,
    CellRecord,
    enumerate_unique_cells,
    sample_unique_cells,
)
from repro.nasbench.encoding import CellEncoding
from repro.nasbench.known_cells import (
    KNOWN_CELLS,
    cod1_cell,
    cod2_cell,
    googlenet_cell,
    resnet_cell,
)
from repro.nasbench.model_spec import MAX_EDGES, MAX_VERTICES, InvalidSpecError, ModelSpec
from repro.nasbench.skeleton import (
    CIFAR10_SKELETON,
    CIFAR100_SKELETON,
    SkeletonConfig,
    compute_vertex_channels,
)
from repro.nasbench.surrogate import CellFeatures, Cifar10Surrogate, extract_features

__all__ = [
    "CompiledOp",
    "NetworkIR",
    "compile_cell_ops",
    "compile_network",
    "CellDatabase",
    "CellRecord",
    "enumerate_unique_cells",
    "sample_unique_cells",
    "CellEncoding",
    "KNOWN_CELLS",
    "cod1_cell",
    "cod2_cell",
    "googlenet_cell",
    "resnet_cell",
    "MAX_EDGES",
    "MAX_VERTICES",
    "InvalidSpecError",
    "ModelSpec",
    "CIFAR10_SKELETON",
    "CIFAR100_SKELETON",
    "SkeletonConfig",
    "compute_vertex_channels",
    "CellFeatures",
    "Cifar10Surrogate",
    "extract_features",
]
