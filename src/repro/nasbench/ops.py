"""Operation vocabulary of the NASBench-101 cell search space.

A cell is a DAG whose interior vertices are labelled with one of three
operations (``conv3x3-bn-relu``, ``conv1x1-bn-relu``, ``maxpool3x3``)
and whose first/last vertices are the special ``input`` / ``output``
markers.  When a cell is compiled into a concrete network (see
:mod:`repro.nasbench.compile`) additional *derived* operations appear:
1x1 projections on edges leaving the cell input, element-wise additions
at vertices with fan-in > 1, and the channel concatenation at the cell
output — exactly the automatic glue NASBench-101 inserts.
"""

from __future__ import annotations

__all__ = [
    "INPUT",
    "OUTPUT",
    "CONV3X3",
    "CONV1X1",
    "MAXPOOL3X3",
    "INTERIOR_OPS",
    "OP_INDEX",
    "KIND_STEM",
    "KIND_CONV3X3",
    "KIND_CONV1X1",
    "KIND_PROJ1X1",
    "KIND_MAXPOOL3X3",
    "KIND_DOWNSAMPLE",
    "KIND_ADD",
    "KIND_CONCAT",
    "KIND_GAP",
    "KIND_DENSE",
    "CONV_KINDS",
    "POOL_KINDS",
    "GLUE_KINDS",
]

# --- cell vertex labels (the searchable vocabulary) ---------------------
INPUT = "input"
OUTPUT = "output"
CONV3X3 = "conv3x3-bn-relu"
CONV1X1 = "conv1x1-bn-relu"
MAXPOOL3X3 = "maxpool3x3"

#: Operations allowed on interior vertices, in canonical order.
INTERIOR_OPS = (CONV3X3, CONV1X1, MAXPOOL3X3)

#: Canonical integer index of each interior op (used by encodings and
#: by the isomorphism-invariant hash labelling).
OP_INDEX = {op: i for i, op in enumerate(INTERIOR_OPS)}

# --- compiled-op kinds (what the hardware model schedules) --------------
KIND_STEM = "stem3x3"
KIND_CONV3X3 = "conv3x3"
KIND_CONV1X1 = "conv1x1"
KIND_PROJ1X1 = "proj1x1"
KIND_MAXPOOL3X3 = "maxpool3x3"
KIND_DOWNSAMPLE = "maxpool2x2"
KIND_ADD = "add"
KIND_CONCAT = "concat"
KIND_GAP = "global-avg-pool"
KIND_DENSE = "dense"

#: Kinds executed on a convolution engine.  3x3-shaped kernels go to the
#: 3x3 engine, 1x1-shaped to the 1x1 engine when the accelerator splits
#: its DSPs (``ratio_conv_engines < 1``).
CONV_KINDS = frozenset({KIND_STEM, KIND_CONV3X3, KIND_CONV1X1, KIND_PROJ1X1})

#: Kinds executed on the (optional) pooling engine.
POOL_KINDS = frozenset({KIND_MAXPOOL3X3, KIND_DOWNSAMPLE})

#: Kinds that always run on the host CPU (unsupported by the
#: accelerator, as in CHaiDNN).
GLUE_KINDS = frozenset({KIND_ADD, KIND_CONCAT, KIND_GAP, KIND_DENSE})


def kernel_size(kind: str) -> int:
    """Spatial kernel size of a compiled-op kind (1 for non-spatial)."""
    if kind in (KIND_STEM, KIND_CONV3X3, KIND_MAXPOOL3X3):
        return 3
    if kind == KIND_DOWNSAMPLE:
        return 2
    return 1


def is_conv3x3_shaped(kind: str) -> bool:
    """True if the op runs on the 3x3 convolution engine."""
    return kind in (KIND_STEM, KIND_CONV3X3)


def is_conv1x1_shaped(kind: str) -> bool:
    """True if the op runs on the 1x1 convolution engine."""
    return kind in (KIND_CONV1X1, KIND_PROJ1X1)
