"""Cell databases: the offline stand-in for NASBench-101's table.

Two constructions are provided:

* :meth:`CellDatabase.nasbench_micro` — the **exhaustive** space of all
  unique cells with at most 5 vertices (deduplicated by the
  isomorphism-invariant hash).  Because it is exhaustive, search and
  enumeration cover exactly the same space, which is what makes the
  Fig. 4/5/6 comparisons between discovered points and the true Pareto
  frontier meaningful.
* :meth:`CellDatabase.nasbench_lite` — micro plus a seeded sample of
  unique 6/7-vertex cells, for larger-scale experiments.

Every record stores the spec, its features and its surrogate CIFAR-10
statistics, mirroring the fields the paper reads from NASBench.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.nasbench.model_spec import MAX_VERTICES, ModelSpec
from repro.nasbench.ops import INPUT, INTERIOR_OPS, OUTPUT
from repro.nasbench.surrogate import CellFeatures, Cifar10Surrogate, extract_features
from repro.utils.rng import make_rng

__all__ = ["CellRecord", "CellDatabase", "enumerate_unique_cells", "sample_unique_cells"]


@dataclass(frozen=True)
class CellRecord:
    """One database row: a unique cell and its precomputed statistics."""

    spec: ModelSpec
    spec_hash: str
    features: CellFeatures
    validation_accuracy: float
    test_accuracy: float
    training_seconds: float


def _all_matrices(num_vertices: int):
    """Yield every strictly-upper-triangular binary matrix."""
    pairs = [(i, j) for i in range(num_vertices) for j in range(i + 1, num_vertices)]
    for bits in itertools.product((0, 1), repeat=len(pairs)):
        matrix = np.zeros((num_vertices, num_vertices), dtype=np.int8)
        for (i, j), bit in zip(pairs, bits):
            matrix[i, j] = bit
        yield matrix


def enumerate_unique_cells(max_vertices: int) -> list[ModelSpec]:
    """Exhaustively enumerate unique valid cells with <= ``max_vertices``.

    Feasible up to 5 vertices (tens of thousands of raw candidates);
    raises for larger limits where sampling should be used instead.
    """
    if max_vertices > 5:
        raise ValueError(
            "exhaustive enumeration is only supported up to 5 vertices; "
            "use sample_unique_cells for 6-7 vertex cells"
        )
    seen: dict[str, ModelSpec] = {}
    for num_vertices in range(2, max_vertices + 1):
        op_products = itertools.product(INTERIOR_OPS, repeat=num_vertices - 2)
        op_choices = [(INPUT, *interior, OUTPUT) for interior in op_products]
        for matrix in _all_matrices(num_vertices):
            for ops in op_choices:
                spec = ModelSpec(matrix, ops)
                if not spec.valid:
                    continue
                seen.setdefault(spec.spec_hash(), spec)
    return list(seen.values())


def sample_unique_cells(
    n: int,
    seed: int | np.random.Generator | None = None,
    min_vertices: int = 6,
    max_vertices: int = MAX_VERTICES,
    exclude_hashes: set[str] | None = None,
    max_tries: int | None = None,
) -> list[ModelSpec]:
    """Sample ``n`` unique valid cells with the given vertex range."""
    rng = make_rng(seed)
    exclude = set(exclude_hashes or ())
    found: dict[str, ModelSpec] = {}
    tries = 0
    budget = max_tries if max_tries is not None else max(200 * n, 10_000)
    while len(found) < n and tries < budget:
        tries += 1
        num_vertices = int(rng.integers(min_vertices, max_vertices + 1))
        pair_count = num_vertices * (num_vertices - 1) // 2
        # Bias edge density toward valid (<=9 edge) graphs.
        p_edge = min(0.9, 7.0 / pair_count)
        matrix = np.zeros((num_vertices, num_vertices), dtype=np.int8)
        for i in range(num_vertices):
            for j in range(i + 1, num_vertices):
                matrix[i, j] = 1 if rng.random() < p_edge else 0
        interior = tuple(
            INTERIOR_OPS[int(rng.integers(0, len(INTERIOR_OPS)))]
            for _ in range(num_vertices - 2)
        )
        spec = ModelSpec(matrix, (INPUT, *interior, OUTPUT))
        if not spec.valid or spec.num_vertices < min_vertices:
            continue
        h = spec.spec_hash()
        if h in exclude or h in found:
            continue
        found[h] = spec
    return list(found.values())


@dataclass
class CellDatabase:
    """A fixed, queryable set of unique cells with surrogate statistics."""

    records: list[CellRecord]
    surrogate: Cifar10Surrogate
    _by_hash: dict[str, CellRecord] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_hash = {r.spec_hash: r for r in self.records}
        if len(self._by_hash) != len(self.records):
            raise ValueError("database contains duplicate cells")

    # --- constructors ---------------------------------------------------
    @classmethod
    def from_specs(
        cls, specs: list[ModelSpec], surrogate: Cifar10Surrogate | None = None
    ) -> "CellDatabase":
        surrogate = surrogate or Cifar10Surrogate()
        records = []
        seen: set[str] = set()
        for spec in specs:
            if not spec.valid:
                raise ValueError("database specs must be valid")
            h = spec.spec_hash()
            if h in seen:
                continue
            seen.add(h)
            records.append(
                CellRecord(
                    spec=spec,
                    spec_hash=h,
                    features=extract_features(spec),
                    validation_accuracy=surrogate.validation_accuracy(spec),
                    test_accuracy=surrogate.test_accuracy(spec),
                    training_seconds=surrogate.training_seconds(spec),
                )
            )
        return cls(records, surrogate)

    @classmethod
    def nasbench_micro(
        cls, surrogate: Cifar10Surrogate | None = None
    ) -> "CellDatabase":
        """Exhaustive <=5-vertex space (shared by search and Pareto)."""
        return cls.from_specs(enumerate_unique_cells(5), surrogate)

    @classmethod
    def nasbench_lite(
        cls,
        extra_cells: int = 2000,
        seed: int | np.random.Generator | None = None,
        surrogate: Cifar10Surrogate | None = None,
    ) -> "CellDatabase":
        """Micro space plus ``extra_cells`` sampled 6/7-vertex cells."""
        base = enumerate_unique_cells(5)
        exclude = {s.spec_hash() for s in base}
        extra = sample_unique_cells(extra_cells, seed, exclude_hashes=exclude)
        return cls.from_specs(base + extra, surrogate)

    # --- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __contains__(self, spec: ModelSpec) -> bool:
        return spec.valid and spec.spec_hash() in self._by_hash

    def get(self, spec: ModelSpec) -> CellRecord | None:
        """Record for ``spec`` or ``None`` when not in the database."""
        if not spec.valid:
            return None
        return self._by_hash.get(spec.spec_hash())

    def accuracies(self) -> np.ndarray:
        """Vector of validation accuracies in record order."""
        return np.array([r.validation_accuracy for r in self.records])

    def stats(self) -> dict[str, float]:
        acc = self.accuracies()
        return {
            "count": float(len(self.records)),
            "acc_min": float(acc.min()),
            "acc_mean": float(acc.mean()),
            "acc_max": float(acc.max()),
        }
