"""Controller action-space encoding for cell specs.

The RL controller emits one categorical decision per token.  For a
cell space with ``max_vertices`` vertices the token sequence is:

* one binary decision per potential edge ``(i, j), i < j`` in row-major
  order — ``C(max_vertices, 2)`` tokens;
* one 3-way decision per interior vertex — ``max_vertices - 2`` tokens.

Decoding never fails: specs that violate the search-space rules (too
many edges, disconnected) simply come back with ``valid == False`` and
the search assigns them the punishment reward, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.nasbench.model_spec import MAX_VERTICES, ModelSpec
from repro.nasbench.ops import INPUT, INTERIOR_OPS, OP_INDEX, OUTPUT

__all__ = ["CellEncoding"]


@dataclass(frozen=True)
class CellEncoding:
    """Bijection between controller action vectors and cell specs."""

    max_vertices: int = MAX_VERTICES

    def __post_init__(self) -> None:
        if not 2 <= self.max_vertices <= MAX_VERTICES:
            raise ValueError(
                f"max_vertices must be in [2, {MAX_VERTICES}], got {self.max_vertices}"
            )

    # ------------------------------------------------------------------
    @property
    def edge_pairs(self) -> list[tuple[int, int]]:
        """Potential edges in decoding order."""
        n = self.max_vertices
        return [(i, j) for i in range(n) for j in range(i + 1, n)]

    @property
    def num_edge_tokens(self) -> int:
        return len(self.edge_pairs)

    @property
    def num_op_tokens(self) -> int:
        return self.max_vertices - 2

    @property
    def num_tokens(self) -> int:
        return self.num_edge_tokens + self.num_op_tokens

    @property
    def vocab_sizes(self) -> list[int]:
        """Number of choices per token (2 for edges, 3 for ops)."""
        return [2] * self.num_edge_tokens + [len(INTERIOR_OPS)] * self.num_op_tokens

    @property
    def space_size(self) -> int:
        """Raw (pre-dedup) size of the action space."""
        size = 1
        for v in self.vocab_sizes:
            size *= v
        return size

    # ------------------------------------------------------------------
    def decode(self, actions: Sequence[int]) -> ModelSpec:
        """Turn an action vector into a (possibly invalid) spec."""
        actions = list(actions)
        if len(actions) != self.num_tokens:
            raise ValueError(
                f"expected {self.num_tokens} actions, got {len(actions)}"
            )
        for a, vocab in zip(actions, self.vocab_sizes):
            if not 0 <= a < vocab:
                raise ValueError(f"action {a} out of range for vocab {vocab}")
        n = self.max_vertices
        matrix = np.zeros((n, n), dtype=np.int8)
        for (i, j), bit in zip(self.edge_pairs, actions):
            matrix[i, j] = bit
        op_choices = actions[self.num_edge_tokens:]
        ops = (INPUT, *(INTERIOR_OPS[c] for c in op_choices), OUTPUT)
        return ModelSpec(matrix, ops)

    def encode(self, spec: ModelSpec) -> list[int]:
        """Action vector for ``spec`` (embedded in the first vertices).

        The pruned spec's vertices map onto vertices
        ``0..V-2`` plus the final output vertex; interior vertices
        without a counterpart default to op 0 and stay disconnected, so
        ``decode(encode(spec))`` prunes back to an isomorphic cell.
        """
        if not spec.valid:
            raise ValueError("cannot encode an invalid spec")
        v = spec.num_vertices
        if v > self.max_vertices:
            raise ValueError(
                f"spec has {v} vertices but encoding allows {self.max_vertices}"
            )
        n = self.max_vertices
        # Map spec vertex k -> encoded vertex (output goes last).
        position = {k: k for k in range(v - 1)}
        position[v - 1] = n - 1
        edge_bits = {pair: 0 for pair in self.edge_pairs}
        for i in range(v):
            for j in range(i + 1, v):
                if spec.matrix[i, j]:
                    edge_bits[(position[i], position[j])] = 1
        op_choices = [0] * self.num_op_tokens
        for k in range(1, v - 1):
            op_choices[position[k] - 1] = OP_INDEX[spec.ops[k]]
        return [edge_bits[pair] for pair in self.edge_pairs] + op_choices

    def random_actions(self, rng: np.random.Generator) -> list[int]:
        """Uniformly random action vector."""
        return [int(rng.integers(0, v)) for v in self.vocab_sizes]
