"""Graph utilities for cell DAGs: reachability, pruning, canonical hash.

The canonical hash is a faithful reimplementation of NASBench-101's
``graph_util.hash_module`` — an iterated neighbourhood-hashing scheme
(similar in spirit to Weisfeiler-Lehman) that is invariant to vertex
reordering, so isomorphic cells deduplicate to one database entry.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "is_upper_triangular",
    "num_edges",
    "reachable_from",
    "reaching_to",
    "prune",
    "hash_module",
    "permute_matrix",
    "longest_path_length",
    "topological_layers",
]


def is_upper_triangular(matrix: np.ndarray) -> bool:
    """True if ``matrix`` has no entries on or below the diagonal."""
    return bool(np.all(np.tril(matrix) == 0))


def num_edges(matrix: np.ndarray) -> int:
    """Number of edges in the adjacency matrix."""
    return int(np.sum(matrix))


def reachable_from(matrix: np.ndarray, start: int) -> set[int]:
    """Vertices reachable from ``start`` (inclusive) following edges."""
    n = matrix.shape[0]
    seen = {start}
    frontier = [start]
    while frontier:
        v = frontier.pop()
        for w in range(n):
            if matrix[v, w] and w not in seen:
                seen.add(w)
                frontier.append(w)
    return seen


def reaching_to(matrix: np.ndarray, end: int) -> set[int]:
    """Vertices from which ``end`` is reachable (inclusive)."""
    return reachable_from(matrix.T, end)


def prune(matrix: np.ndarray, ops: list[str]) -> tuple[np.ndarray, list[str]] | None:
    """Remove vertices not on any input->output path.

    Returns the pruned ``(matrix, ops)`` or ``None`` when no path from
    the input vertex (0) to the output vertex (last) exists — such specs
    are invalid in NASBench-101.
    """
    n = matrix.shape[0]
    if n == 0:
        return None
    forward = reachable_from(matrix, 0)
    backward = reaching_to(matrix, n - 1)
    keep = forward & backward
    # If the output is unreachable from the input, one of the two sets
    # misses an endpoint and the spec is invalid.
    if 0 not in keep or (n - 1) not in keep:
        return None
    index = sorted(keep)
    pruned = matrix[np.ix_(index, index)].copy()
    pruned_ops = [ops[i] for i in index]
    return pruned, pruned_ops


def hash_module(matrix: np.ndarray, labeling: list[int]) -> str:
    """Isomorphism-invariant fingerprint of a labelled DAG.

    Reimplements NASBench-101's iterated hashing: each vertex starts
    from a hash of ``(out_degree, in_degree, label)`` and is repeatedly
    re-hashed together with the sorted hashes of its in- and
    out-neighbourhoods, ``V`` times; the fingerprint is the hash of the
    sorted final vertex hashes.
    """
    n = matrix.shape[0]
    if len(labeling) != n:
        raise ValueError(f"labeling length {len(labeling)} != vertex count {n}")
    in_deg = np.sum(matrix, axis=0).tolist()
    out_deg = np.sum(matrix, axis=1).tolist()
    hashes = [
        hashlib.md5(str((out_deg[v], in_deg[v], labeling[v])).encode()).hexdigest()
        for v in range(n)
    ]
    for _ in range(n):
        new_hashes = []
        for v in range(n):
            in_nb = sorted(hashes[w] for w in range(n) if matrix[w, v])
            out_nb = sorted(hashes[w] for w in range(n) if matrix[v, w])
            material = "".join(in_nb) + "|" + "".join(out_nb) + "|" + hashes[v]
            new_hashes.append(hashlib.md5(material.encode()).hexdigest())
        hashes = new_hashes
    return hashlib.md5(str(sorted(hashes)).encode()).hexdigest()


def permute_matrix(
    matrix: np.ndarray, ops: list[str], permutation: list[int]
) -> tuple[np.ndarray, list[str]]:
    """Relabel vertices: vertex ``v`` becomes ``permutation[v]``.

    Used by isomorphism tests: hashes of permuted graphs must agree.
    """
    n = matrix.shape[0]
    if sorted(permutation) != list(range(n)):
        raise ValueError("permutation must be a bijection on vertices")
    permuted = np.zeros_like(matrix)
    new_ops: list[str] = [""] * n
    for src in range(n):
        new_ops[permutation[src]] = ops[src]
        for dst in range(n):
            if matrix[src, dst]:
                permuted[permutation[src], permutation[dst]] = 1
    return permuted, new_ops


def longest_path_length(matrix: np.ndarray) -> int:
    """Number of vertices on the longest input->output path.

    For an upper-triangular DAG this is a single forward DP pass.
    Returns 0 when the output is unreachable.
    """
    n = matrix.shape[0]
    dist = [-(10**9)] * n
    dist[0] = 1
    for v in range(n):
        if dist[v] < 0:
            continue
        for w in range(v + 1, n):
            if matrix[v, w]:
                dist[w] = max(dist[w], dist[v] + 1)
    return max(dist[n - 1], 0)


def topological_layers(matrix: np.ndarray) -> list[int]:
    """Layer index (longest distance from input, 0-based) per vertex."""
    n = matrix.shape[0]
    layer = [0] * n
    for v in range(n):
        for w in range(v + 1, n):
            if matrix[v, w]:
                layer[w] = max(layer[w], layer[v] + 1)
    return layer
