"""Lower a :class:`ModelSpec` + skeleton into a concrete op-level IR.

The compiled :class:`NetworkIR` is the single source of truth consumed
by *both* halves of the codesign system:

* the accelerator latency model schedules ``NetworkIR.ops`` onto
  engines (see :mod:`repro.accelerator.scheduler`);
* the numpy NN builder instantiates the same ops as runnable layers
  (see :mod:`repro.nn.builder`).

Lowering follows NASBench-101's ``build_module`` exactly:

* edges leaving the cell input become 1x1 *projections* to the target
  vertex's channel count (conv1x1 + BN + ReLU);
* interior edges are channel *truncations* (free — a slice);
* a vertex with fan-in > 1 sums its inputs (an ``add`` glue op);
* the output vertex concatenates all interior predecessors, and a
  direct input->output edge is projected then added on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.nasbench import ops as O
from repro.nasbench.model_spec import InvalidSpecError, ModelSpec
from repro.nasbench.skeleton import SkeletonConfig, compute_vertex_channels

__all__ = ["CompiledOp", "NetworkIR", "compile_network", "compile_cell_ops"]


@dataclass(frozen=True)
class CompiledOp:
    """One concrete operation of the lowered network.

    ``deps`` are indices of ops whose outputs this op consumes; the
    scheduler uses them to exploit branch parallelism.  ``macs`` counts
    multiply-accumulates (0 for pooling/glue); ``work`` counts simple
    element ops for non-MAC kinds so that CPU/pool latency modelling
    has a size measure.
    """

    index: int
    kind: str
    name: str
    in_channels: int
    out_channels: int
    height: int
    width: int
    deps: tuple[int, ...]
    stride: int = 1

    @property
    def kernel(self) -> int:
        return O.kernel_size(self.kind)

    @property
    def out_height(self) -> int:
        return self.height // self.stride

    @property
    def out_width(self) -> int:
        return self.width // self.stride

    @property
    def macs(self) -> int:
        """Multiply-accumulate count (convolution-like ops only)."""
        if self.kind in O.CONV_KINDS:
            k = self.kernel
            return k * k * self.in_channels * self.out_channels * self.out_height * self.out_width
        if self.kind == O.KIND_DENSE:
            return self.in_channels * self.out_channels
        return 0

    @property
    def work(self) -> int:
        """Element-operation count for non-MAC ops (pool/add/concat)."""
        if self.kind in O.POOL_KINDS:
            k = self.kernel
            return k * k * self.out_channels * self.out_height * self.out_width
        if self.kind == O.KIND_ADD:
            return self.in_channels * self.height * self.width
        if self.kind == O.KIND_CONCAT:
            return self.out_channels * self.height * self.width
        if self.kind == O.KIND_GAP:
            return self.in_channels * self.height * self.width
        return 0

    @property
    def params(self) -> int:
        """Learnable parameter count (conv weights + BN, or dense)."""
        if self.kind in O.CONV_KINDS:
            k = self.kernel
            weights = k * k * self.in_channels * self.out_channels
            bn = 2 * self.out_channels
            return weights + bn
        if self.kind == O.KIND_DENSE:
            return self.in_channels * self.out_channels + self.out_channels
        return 0

    @property
    def input_bytes(self) -> int:
        """Activation bytes read (8-bit activations, CHaiDNN-style)."""
        return self.in_channels * self.height * self.width

    @property
    def output_bytes(self) -> int:
        """Activation bytes written."""
        return self.out_channels * self.out_height * self.out_width

    @property
    def weight_bytes(self) -> int:
        """Weight bytes read (8-bit weights)."""
        if self.kind in O.CONV_KINDS:
            k = self.kernel
            return k * k * self.in_channels * self.out_channels
        if self.kind == O.KIND_DENSE:
            return self.in_channels * self.out_channels
        return 0

    def signature(self) -> tuple:
        """LUT key: everything that determines latency on given HW."""
        return (self.kind, self.in_channels, self.out_channels,
                self.height, self.width, self.stride)


@dataclass
class NetworkIR:
    """A compiled network: a DAG of :class:`CompiledOp`."""

    ops: list[CompiledOp] = field(default_factory=list)

    def add(self, kind: str, name: str, in_ch: int, out_ch: int,
            height: int, width: int, deps: tuple[int, ...], stride: int = 1) -> int:
        index = len(self.ops)
        self.ops.append(CompiledOp(index, kind, name, in_ch, out_ch,
                                   height, width, deps, stride))
        return index

    @property
    def total_macs(self) -> int:
        return sum(op.macs for op in self.ops)

    @property
    def total_params(self) -> int:
        return sum(op.params for op in self.ops)

    def count_kinds(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for op in self.ops:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    def unique_signatures(self) -> list[tuple]:
        """Distinct latency-LUT signatures in this network."""
        seen: dict[tuple, None] = {}
        for op in self.ops:
            seen.setdefault(op.signature(), None)
        return list(seen)

    def validate(self) -> None:
        """Check the IR is a well-formed DAG (deps precede users)."""
        for op in self.ops:
            if op.index >= len(self.ops) or self.ops[op.index] is not op:
                raise AssertionError("op index out of sync")
            for dep in op.deps:
                if dep >= op.index:
                    raise AssertionError(f"op {op.index} depends on later op {dep}")


def _emit_cell(
    ir: NetworkIR,
    spec: ModelSpec,
    cell_name: str,
    in_channels: int,
    out_channels: int,
    height: int,
    width: int,
    input_op: int,
) -> int:
    """Emit one cell; returns the index of the op producing its output."""
    matrix = spec.matrix
    n = matrix.shape[0]
    channels = compute_vertex_channels(in_channels, out_channels, matrix)

    # Op index producing each vertex's output tensor.
    produced: list[int | None] = [None] * n
    produced[0] = input_op

    kind_of_op = {
        O.CONV3X3: O.KIND_CONV3X3,
        O.CONV1X1: O.KIND_CONV1X1,
        O.MAXPOOL3X3: O.KIND_MAXPOOL3X3,
    }

    for v in range(1, n - 1):
        fan_in: list[int] = []
        for src in range(1, v):
            if matrix[src, v]:
                # Interior edge: channel truncation, no op emitted.
                fan_in.append(produced[src])  # type: ignore[arg-type]
        if matrix[0, v]:
            proj = ir.add(O.KIND_PROJ1X1, f"{cell_name}/v{v}/proj",
                          in_channels, channels[v], height, width, (input_op,))
            fan_in.append(proj)
        if len(fan_in) > 1:
            vertex_in = ir.add(O.KIND_ADD, f"{cell_name}/v{v}/add",
                               channels[v], channels[v], height, width, tuple(fan_in))
        else:
            vertex_in = fan_in[0]
        produced[v] = ir.add(kind_of_op[spec.ops[v]], f"{cell_name}/v{v}/{spec.ops[v]}",
                             channels[v], channels[v], height, width, (vertex_in,))

    concat_in = [produced[v] for v in range(1, n - 1) if matrix[v, n - 1]]
    if not concat_in:
        # Degenerate cell: input wired straight to output.
        return ir.add(O.KIND_PROJ1X1, f"{cell_name}/out/proj",
                      in_channels, out_channels, height, width, (input_op,))
    if len(concat_in) == 1:
        output = concat_in[0]  # type: ignore[assignment]
    else:
        output = ir.add(O.KIND_CONCAT, f"{cell_name}/out/concat",
                        out_channels, out_channels, height, width,
                        tuple(concat_in))  # type: ignore[arg-type]
    if matrix[0, n - 1]:
        proj = ir.add(O.KIND_PROJ1X1, f"{cell_name}/out/proj",
                      in_channels, out_channels, height, width, (input_op,))
        output = ir.add(O.KIND_ADD, f"{cell_name}/out/add",
                        out_channels, out_channels, height, width, (output, proj))
    return output


def compile_network(spec: ModelSpec, skeleton: SkeletonConfig) -> NetworkIR:
    """Compile the full skeleton around ``spec`` into a :class:`NetworkIR`."""
    if not spec.valid:
        raise InvalidSpecError(f"cannot compile invalid spec: {spec.invalid_reason}")

    ir = NetworkIR()
    height, width = skeleton.input_height, skeleton.input_width
    current = ir.add(O.KIND_STEM, "stem", skeleton.input_channels,
                     skeleton.stem_channels, height, width, ())
    channels = skeleton.stem_channels

    for stack in range(skeleton.num_stacks):
        if stack > 0:
            current = ir.add(O.KIND_DOWNSAMPLE, f"stack{stack}/downsample",
                             channels, channels, height, width, (current,), stride=2)
            height //= 2
            width //= 2
            channels *= 2
        for cell_idx in range(skeleton.cells_per_stack):
            in_ch = channels if (stack == 0 or cell_idx > 0) else channels // 2
            current = _emit_cell(ir, spec, f"stack{stack}/cell{cell_idx}",
                                 in_ch, channels, height, width, current)

    pooled = ir.add(O.KIND_GAP, "global-avg-pool", channels, channels,
                    height, width, (current,))
    ir.add(O.KIND_DENSE, "classifier", channels, skeleton.num_classes,
           1, 1, (pooled,))
    ir.validate()
    return ir


@lru_cache(maxsize=4096)
def _compile_cached(matrix_bytes: bytes, shape: int, ops: tuple[str, ...],
                    skeleton: SkeletonConfig) -> NetworkIR:
    matrix = np.frombuffer(matrix_bytes, dtype=np.int8).reshape(shape, shape)
    return compile_network(ModelSpec(matrix, ops), skeleton)


def compile_cell_ops(spec: ModelSpec, skeleton: SkeletonConfig) -> NetworkIR:
    """Cached variant of :func:`compile_network` keyed by pruned spec."""
    if not spec.valid:
        raise InvalidSpecError(f"cannot compile invalid spec: {spec.invalid_reason}")
    return _compile_cached(spec.matrix.tobytes(), spec.matrix.shape[0],
                           spec.ops, skeleton)
