"""Reference cells used by the paper's evaluation.

* :func:`resnet_cell` / :func:`googlenet_cell` — the two best
  manually-designed cells on the paper's FPGA platform (Section IV
  baselines, Table II), expressed inside the NASBench-101 skeleton.
* :func:`cod1_cell` / :func:`cod2_cell` — reconstructions of the best
  cells discovered by Codesign-NAS (Fig. 8).  The paper's figure shows
  the *compiled* graphs (with auto-inserted projections/adds/concats);
  we reconstruct searchable specs whose compilation matches the drawn
  operation inventory.  Exact wiring of Cod-1's two element-wise adds
  is ambiguous in the figure; the reconstruction below preserves the op
  counts (two conv3x3, one conv1x1, skip+add into the output) which is
  what the latency/area analysis depends on.
"""

from __future__ import annotations

import numpy as np

from repro.nasbench.model_spec import ModelSpec
from repro.nasbench.ops import CONV1X1, CONV3X3, INPUT, MAXPOOL3X3, OUTPUT

__all__ = ["resnet_cell", "googlenet_cell", "cod1_cell", "cod2_cell", "KNOWN_CELLS"]


def resnet_cell() -> ModelSpec:
    """ResNet basic block: two 3x3 convolutions plus an identity skip.

    The skip (input -> output edge) compiles to a 1x1 projection added
    onto the cell output, mirroring ResNet's shortcut with projection.
    """
    matrix = np.array(
        [
            # in  c1  c2  out
            [0, 1, 0, 1],  # input feeds first conv and the skip
            [0, 0, 1, 0],  # conv3x3 -> conv3x3
            [0, 0, 0, 1],  # second conv3x3 -> output
            [0, 0, 0, 0],
        ]
    )
    ops = (INPUT, CONV3X3, CONV3X3, OUTPUT)
    return ModelSpec(matrix, ops)


def googlenet_cell() -> ModelSpec:
    """Inception-style cell: three parallel branches concatenated.

    Branch A: 1x1 conv.  Branch B: 1x1 conv -> 3x3 conv.  Branch C:
    3x3 max-pool -> 1x1 conv.  (The 5x5 branch of GoogLeNet v1 does not
    fit the 7-vertex NASBench budget; this is the standard NASBench
    rendering of the Inception cell.)
    """
    matrix = np.array(
        [
            # in  a1  b1  b2  c1  c2  out
            [0, 1, 1, 0, 1, 0, 0],
            [0, 0, 0, 0, 0, 0, 1],  # A: conv1x1 -> out
            [0, 0, 0, 1, 0, 0, 0],  # B: conv1x1 -> conv3x3
            [0, 0, 0, 0, 0, 0, 1],  # B: conv3x3 -> out
            [0, 0, 0, 0, 0, 1, 0],  # C: maxpool -> conv1x1
            [0, 0, 0, 0, 0, 0, 1],  # C: conv1x1 -> out
            [0, 0, 0, 0, 0, 0, 0],
        ]
    )
    ops = (INPUT, CONV1X1, CONV1X1, CONV3X3, MAXPOOL3X3, CONV1X1, OUTPUT)
    return ModelSpec(matrix, ops)


def cod1_cell() -> ModelSpec:
    """Cod-1 (Fig. 8a): conv3x3/conv1x1/conv3x3 with rich skips.

    Compiles to two element-wise adds inside the cell, a concat at the
    output, and the ResNet-style projected skip into the output — the
    operation inventory shown in the paper's figure.
    """
    matrix = np.array(
        [
            # in  c3a c1  c3b out
            [0, 1, 1, 1, 1],
            [0, 0, 1, 0, 1],  # conv3x3 -> conv1x1, and to output (concat)
            [0, 0, 0, 1, 0],  # conv1x1 -> conv3x3
            [0, 0, 0, 0, 1],  # conv3x3 -> output (concat)
            [0, 0, 0, 0, 0],
        ]
    )
    ops = (INPUT, CONV3X3, CONV1X1, CONV3X3, OUTPUT)
    return ModelSpec(matrix, ops)


def cod2_cell() -> ModelSpec:
    """Cod-2 (Fig. 8b): two input projections, a pool, one conv3x3.

    Compiles to proj1x1 -> maxpool3x3 and a second proj1x1 merged with
    the pool result (element-wise) feeding a conv3x3 — the
    proj/proj/pool/merge/conv3x3 chain drawn in the figure.
    """
    matrix = np.array(
        [
            # in  mp  c3  out
            [0, 1, 1, 0],
            [0, 0, 1, 0],  # maxpool -> conv3x3 (merged with input proj)
            [0, 0, 0, 1],  # conv3x3 -> output
            [0, 0, 0, 0],
        ]
    )
    ops = (INPUT, MAXPOOL3X3, CONV3X3, OUTPUT)
    return ModelSpec(matrix, ops)


#: Name -> constructor for every reference cell.
KNOWN_CELLS = {
    "resnet": resnet_cell,
    "googlenet": googlenet_cell,
    "cod1": cod1_cell,
    "cod2": cod2_cell,
}
