"""Two-tier proposal filtering: surrogate-ranked, exact-scored.

The two-tier mode trades controller samples (cheap: an LSTM rollout)
for exact hardware evaluations (the budgeted resource): each iteration
the driver asks the strategy for an *inflated* batch, a
:class:`TwoTierFilter` scores every proposal with a learned surrogate
platform (:mod:`repro.hw.surrogate`), and only the top
``exact_fraction`` slice is re-scored by the exact platform.  The
exact results are what gets told / cached / ledgered — the surrogate
tier only decides *which* proposals deserve an exact evaluation, so
the resume and bit-identity contracts of the exact path are untouched,
and a surrogate misprediction costs opportunity, never correctness.

Determinism: the surrogate evaluator is deterministic (fitted model +
punishment rewards for invalid points), ranking ties break by proposal
position, and the surviving indices are returned in ascending order —
so the REINFORCE baseline update consumes rollouts in the same order
they were sampled, and a resumed run replays identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.core.evaluator import CodesignEvaluator
    from repro.search.base import Proposal

__all__ = ["TwoTierFilter", "DEFAULT_EXACT_FRACTION"]

#: Default slice of each surrogate-ranked batch that earns an exact
#: evaluation (the ISSUE/paper operating point: 4x oversampling).
DEFAULT_EXACT_FRACTION = 0.25


@dataclass
class TwoTierFilter:
    """Rank proposals with a surrogate, keep the top slice.

    ``surrogate_evaluator`` must score under the *same* reward scenario
    as the exact evaluator (so the ranking optimizes the quantity the
    search optimizes) but with the surrogate platform and no shared
    eval cache — exact rows must never leak into surrogate scores nor
    the other way around (the evaluators' distinct ``cache_namespace``
    enforces the persistent side of that).
    """

    surrogate_evaluator: "CodesignEvaluator"
    exact_fraction: float = DEFAULT_EXACT_FRACTION

    def __post_init__(self) -> None:
        if not 0.0 < self.exact_fraction <= 1.0:
            raise ValueError(
                f"exact_fraction must be in (0, 1], got {self.exact_fraction}"
            )

    def ask_size(self, k: int) -> int:
        """Proposals to ask for so that ~``k`` survive the filter."""
        return max(k, math.ceil(k / self.exact_fraction))

    def select(self, proposals: "list[Proposal]", k: int) -> list[int]:
        """Indices of the top-``k`` proposals by surrogate score.

        Returned in ascending order (sample order, not rank order):
        the REINFORCE strategies update their EMA baseline rollout by
        rollout, so preserving sample order keeps the update
        independent of how the surrogate happened to rank the batch.
        Ties break toward the earlier proposal, deterministically.
        """
        if k >= len(proposals):
            return list(range(len(proposals)))
        results = self.surrogate_evaluator.evaluate_batch(
            [(p.spec, p.config) for p in proposals]
        )
        scores = np.array([r.reward.value for r in results], dtype=np.float64)
        order = np.argsort(-scores, kind="stable")
        return sorted(int(i) for i in order[:k])
