"""Uniform random search — the ablation baseline for the RL controller."""

from __future__ import annotations

from repro.core.archive import SearchArchive
from repro.core.evaluator import CodesignEvaluator
from repro.search.base import SearchResult, SearchStrategy

__all__ = ["RandomSearch"]


class RandomSearch(SearchStrategy):
    """Samples every token uniformly at each step."""

    name = "random"

    def run(self, evaluator: CodesignEvaluator, num_steps: int) -> SearchResult:
        archive = SearchArchive()
        for _ in range(num_steps):
            actions = self.search_space.random_actions(self.rng)
            spec, config = self.search_space.decode(actions)
            result = evaluator.evaluate(spec, config)
            archive.record(result, phase="random")
        return self._result(archive, evaluator)
