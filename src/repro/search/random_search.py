"""Uniform random search — the ablation baseline for the RL controller."""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.evaluator import EvaluationResult
from repro.search.base import Proposal, SearchStrategy

__all__ = ["RandomSearch"]


class RandomSearch(SearchStrategy):
    """Samples every token uniformly at each step.

    Proposals never depend on results, so any batch size visits the
    same points in the same order — batching only changes speed.
    """

    name = "random"

    def ask(self, n: int) -> list[Proposal]:
        proposals = []
        for _ in range(n):
            actions = self.search_space.random_actions(self.rng)
            spec, config = self.search_space.decode(actions)
            proposals.append(Proposal(spec=spec, config=config, phase="random"))
        return proposals

    def tell(
        self,
        proposals: list[Proposal],
        results: list[EvaluationResult],
        indices: Sequence[int] | None = None,
    ) -> None:
        # No per-rollout state survives ask(), so a filtered subset
        # (two-tier mode) needs no slicing here.
        for result in results:
            self.archive.record(result, phase="random")


from repro.search.registry import register_strategy

register_strategy(RandomSearch)
