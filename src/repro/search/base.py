"""Search-strategy interface and shared result container."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.archive import ArchiveEntry, SearchArchive
from repro.core.evaluator import CodesignEvaluator
from repro.core.search_space import JointSearchSpace
from repro.utils.rng import make_rng

__all__ = ["SearchResult", "SearchStrategy"]


@dataclass
class SearchResult:
    """Outcome of one search run."""

    strategy: str
    scenario: str
    archive: SearchArchive
    extras: dict = field(default_factory=dict)

    @property
    def best(self) -> ArchiveEntry | None:
        return self.archive.best()

    def top_k(self, k: int) -> list[ArchiveEntry]:
        return self.archive.top_k(k)

    def reward_trace(self) -> np.ndarray:
        return self.archive.reward_trace()

    def best_so_far_trace(self) -> np.ndarray:
        return self.archive.best_so_far_trace()


class SearchStrategy:
    """Base class: subclasses implement :meth:`run`."""

    name = "base"

    def __init__(
        self,
        search_space: JointSearchSpace | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.search_space = search_space or JointSearchSpace()
        self.rng = make_rng(seed)

    def run(self, evaluator: CodesignEvaluator, num_steps: int) -> SearchResult:
        raise NotImplementedError

    def _result(self, archive: SearchArchive, evaluator: CodesignEvaluator, **extras) -> SearchResult:
        return SearchResult(
            strategy=self.name,
            scenario=evaluator.reward_fn.config.name,
            archive=archive,
            extras=extras,
        )
