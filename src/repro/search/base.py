"""Search-strategy interface: the batched ask/tell protocol.

Every strategy is a proposal engine over the joint CNN x accelerator
space.  Instead of owning its own evaluate loop, a strategy implements
three hooks —

* :meth:`SearchStrategy.setup` — reset per-run state (archive, stage
  machinery) for a fresh search against one evaluator;
* :meth:`SearchStrategy.ask` — propose up to ``n`` points as
  :class:`Proposal` objects (a strategy may return fewer, e.g. at a
  phase or stage boundary, and returns ``[]`` to finish early);
* :meth:`SearchStrategy.tell` — consume the evaluation results for the
  proposals of the last ask, updating controllers / populations and
  recording the archive;

— and the shared :meth:`SearchStrategy.run` driver turns them into a
search: each iteration asks for a batch, evaluates it in **one**
:meth:`repro.core.CodesignEvaluator.evaluate_batch` call (or any
caller-supplied batch evaluation function, e.g. a process-pool fan-out
from :func:`repro.search.runner.make_batch_evaluator`), and tells the
results back.

Every strategy is additionally **checkpointable**: :meth:`state_dict`
snapshots everything future proposals depend on (RNG stream, archive,
populations, stage machinery, policy weights and optimizer moments)
and :meth:`load_state_dict` restores it.  The driver checkpoints at
batch boundaries through a pluggable :class:`Checkpoint` callback —
with the sqlite-backed :class:`repro.parallel.RunLedger` behind it, a
killed search resumes from its last checkpoint and, because replayed
batches are pure re-evaluations, finishes bit-identical to an
uninterrupted run at the same batch size (see
``tests/search/test_checkpoint_resume.py``).

Batch semantics are per-strategy (generation-sized batches for
evolution, rollout batches for the REINFORCE strategies), chosen so a
``batch_size=1`` run consumes the RNG stream exactly like the historic
per-point loop — serial results are bit-identical to the pre-ask/tell
implementation (see ``tests/search/test_ask_tell_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:
    from repro.search.two_tier import TwoTierFilter

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.core.archive import ArchiveEntry, SearchArchive
from repro.core.evaluator import CodesignEvaluator, EvaluationResult
from repro.core.search_space import JointSearchSpace
from repro.nasbench.model_spec import ModelSpec
from repro.utils.rng import make_rng

__all__ = [
    "Checkpoint",
    "Proposal",
    "SearchResult",
    "SearchStrategy",
    "BatchEvaluateFn",
]

#: Signature of the pluggable batch evaluation function: pairs in,
#: one result per pair in order.
BatchEvaluateFn = Callable[
    [Sequence[tuple[ModelSpec, AcceleratorConfig]]], "list[EvaluationResult]"
]


class Checkpoint:
    """Where the run driver persists/recovers mid-search state.

    Duck-typed: any object with this interface works (the ledger's
    task-bound handle, an in-memory snapshot for tests, a custom
    callback).  ``save`` receives ``{"strategy": state_dict,
    "steps_done": int}`` and must take a *snapshot* — the strategy
    keeps mutating its own state afterwards — which is why the
    provided implementations serialize immediately.
    """

    def load(self) -> dict | None:
        """Return the last saved state, or ``None`` for a fresh run."""
        raise NotImplementedError

    def save(self, state: dict) -> None:
        """Persist a snapshot of ``state``."""
        raise NotImplementedError


@dataclass(frozen=True)
class Proposal:
    """One point proposed by :meth:`SearchStrategy.ask`.

    ``phase`` labels the archive entry; ``payload`` carries whatever
    the strategy needs to process the result in ``tell`` (e.g. the
    rollout index into a pending :class:`repro.rl.policy.PolicyBatch`).
    """

    spec: ModelSpec
    config: AcceleratorConfig
    phase: str = ""
    payload: object = None


@dataclass
class SearchResult:
    """Outcome of one search run."""

    strategy: str
    scenario: str
    archive: SearchArchive
    extras: dict = field(default_factory=dict)

    @property
    def best(self) -> ArchiveEntry | None:
        return self.archive.best()

    def top_k(self, k: int) -> list[ArchiveEntry]:
        return self.archive.top_k(k)

    def reward_trace(self) -> np.ndarray:
        return self.archive.reward_trace()

    def best_so_far_trace(self) -> np.ndarray:
        return self.archive.best_so_far_trace()


class SearchStrategy:
    """Base class: subclasses implement the ask/tell hooks."""

    name = "base"

    def __init__(
        self,
        search_space: JointSearchSpace | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.search_space = search_space or JointSearchSpace()
        self.rng = make_rng(seed)
        self.archive = SearchArchive()
        self._evaluator: CodesignEvaluator | None = None

    # --- declarative construction ----------------------------------------
    @classmethod
    def allowed_params(cls) -> list[str]:
        """Parameter names :meth:`from_params` accepts for this class.

        The constructor's keyword hyper-parameters — everything except
        ``search_space`` and ``seed``, which the caller supplies
        positionally.  Shared by :meth:`from_params` and the
        registry's ``validate_strategy_params`` so the two can never
        disagree on what a strategy accepts.
        """
        import inspect

        return [
            p
            for p in inspect.signature(cls.__init__).parameters
            if p not in ("self", "search_space", "seed")
        ]

    @classmethod
    def from_params(
        cls,
        seed: int | np.random.Generator | None,
        search_space: JointSearchSpace | None = None,
        **params,
    ) -> "SearchStrategy":
        """Construct from a flat, JSON-ready parameter mapping.

        This is the constructor the strategy registry
        (:mod:`repro.search.registry`) and the declarative
        :class:`repro.core.study.StudySpec` path use: ``params`` holds
        the strategy's keyword hyper-parameters as plain JSON values
        (nested specs like ``reinforce_config`` dicts are coerced by
        :meth:`_coerce_params`).  Unknown parameter names and values the
        constructor rejects raise :class:`ValueError` with a message
        naming the strategy and the offending field.
        """
        allowed = cls.allowed_params()
        unknown = sorted(set(params) - set(allowed))
        if unknown:
            raise ValueError(
                f"strategy {cls.name!r} got unknown parameter(s) {unknown}; "
                f"allowed: {sorted(allowed)}"
            )
        try:
            coerced = cls._coerce_params(dict(params))
            return cls(search_space, seed=seed, **coerced)
        except (TypeError, ValueError) as err:
            raise ValueError(
                f"cannot construct strategy {cls.name!r} from params "
                f"{params!r}: {err}"
            ) from err

    @classmethod
    def _coerce_params(cls, params: dict) -> dict:
        """Turn JSON-ready parameter values into constructor arguments.

        The base implementation understands the ``reinforce_config``
        dict shared by the REINFORCE strategies; subclasses extend it
        (and call super) for their own structured parameters.
        """
        config = params.get("reinforce_config")
        if isinstance(config, dict):
            from repro.rl.reinforce import ReinforceConfig

            params["reinforce_config"] = ReinforceConfig(**config)
        return params

    # --- ask/tell hooks ---------------------------------------------------
    def setup(self, evaluator: CodesignEvaluator, num_steps: int) -> None:
        """Reset per-run state.  Subclasses extend (and call super)."""
        self.archive = SearchArchive()
        self._evaluator = evaluator

    def ask(self, n: int) -> list[Proposal]:
        """Propose up to ``n`` points (``[]`` ends the search early)."""
        raise NotImplementedError

    def tell(
        self,
        proposals: list[Proposal],
        results: list[EvaluationResult],
        indices: Sequence[int] | None = None,
    ) -> None:
        """Consume results of the last ask (update state + archive).

        ``indices`` is set by the two-tier driver when only a filtered
        subset of the last ask was evaluated: the ascending positions
        of ``proposals`` within that ask.  Strategies holding
        per-rollout state from :meth:`ask` (the REINFORCE pending
        batch) must slice it accordingly; strategies that only consume
        the passed pairs can ignore it.
        """
        raise NotImplementedError

    def finish(self) -> SearchResult:
        """Package the archive once the step budget is spent."""
        return self._result(self.archive, self._evaluator)

    # --- checkpoint/resume ------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot everything future proposals depend on.

        Only valid at a batch boundary (after :meth:`tell`, before the
        next :meth:`ask`) — which is the only place the run driver
        calls it.  Subclasses extend the returned dict (and call
        super); every value must survive
        :func:`repro.parallel.ledger.encode_state` round-trips.
        """
        return {
            "name": self.name,
            "rng": self.rng.bit_generator.state,
            "archive": SearchArchive(entries=list(self.archive.entries)),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot, in place.

        Called after :meth:`setup` on a freshly constructed strategy
        (same constructor arguments and seed as the checkpointed one),
        so anything ``setup`` derives from the RNG is simply
        overwritten here.
        """
        if state.get("name") != self.name:
            raise ValueError(
                f"checkpoint belongs to strategy {state.get('name')!r}, "
                f"cannot restore into {self.name!r}"
            )
        self.rng.bit_generator.state = state["rng"]
        self.archive = SearchArchive(entries=list(state["archive"].entries))

    # --- the driver -------------------------------------------------------
    def run(
        self,
        evaluator: CodesignEvaluator,
        num_steps: int,
        batch_size: int = 1,
        evaluate_fn: BatchEvaluateFn | None = None,
        checkpoint: Checkpoint | None = None,
        checkpoint_every: int = 1,
        two_tier: "TwoTierFilter | None" = None,
    ) -> SearchResult:
        """Drive the ask/tell loop for ``num_steps`` evaluations.

        ``batch_size`` controls how many proposals are evaluated per
        :meth:`ask`; at 1 the search is bit-identical to the historic
        per-point loop.  ``evaluate_fn`` overrides how a batch of
        (spec, config) pairs is evaluated — by default one
        ``evaluator.evaluate_batch`` call.

        ``two_tier`` arms the surrogate-filtered mode
        (:class:`repro.search.two_tier.TwoTierFilter`): each iteration
        asks for an inflated batch, keeps only the top surrogate-ranked
        slice, and exact-evaluates just that slice — which is also all
        that is told, archived, and counted against ``num_steps``, so
        every recorded result still comes from ``evaluate_fn``.

        ``checkpoint`` makes the run resumable: a state found in it is
        restored (skipping the already-told steps) before the loop, and
        the state is saved back every ``checkpoint_every`` batches and
        at the final batch.  Since evaluation is pure, a resumed run
        replays at most ``checkpoint_every`` batches and finishes
        bit-identical to an uninterrupted one.

        Each save snapshots the *full* state — including the archive so
        far — which is what keeps resume simple and exact, but means a
        checkpoint's cost grows with the run; for very long searches
        over cheap (table/surrogate) evaluations, raise
        ``checkpoint_every`` so the snapshot cost stays a small
        fraction of the evaluation work it protects.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if evaluate_fn is None:
            evaluate_fn = evaluator.evaluate_batch
        self.setup(evaluator, num_steps)
        remaining = num_steps
        if checkpoint is not None:
            saved = checkpoint.load()
            if saved is not None:
                self.load_state_dict(saved["strategy"])
                remaining = num_steps - int(saved["steps_done"])
        batches = 0
        while remaining > 0:
            k = min(batch_size, remaining)
            proposals = self.ask(two_tier.ask_size(k) if two_tier else k)
            if not proposals:
                break
            indices = None
            if two_tier is not None and len(proposals) > k:
                # Surrogate tier: rank the inflated ask, keep the top
                # slice (ascending positions).  A short ask (phase or
                # stage boundary) skips filtering — nothing to discard.
                indices = two_tier.select(proposals, k)
                proposals = [proposals[i] for i in indices]
            if len(proposals) > remaining:
                raise RuntimeError(
                    f"{self.name}.ask returned {len(proposals)} proposals "
                    f"with only {remaining} steps remaining"
                )
            results = evaluate_fn([(p.spec, p.config) for p in proposals])
            if len(results) != len(proposals):
                raise RuntimeError(
                    f"evaluate_fn returned {len(results)} results for "
                    f"{len(proposals)} proposals — tell() pairs them "
                    "positionally, so a mismatched batch evaluator would "
                    "silently corrupt the search"
                )
            self.tell(proposals, results, indices=indices)
            remaining -= len(proposals)
            batches += 1
            if checkpoint is not None and (
                batches % checkpoint_every == 0 or remaining <= 0
            ):
                checkpoint.save(
                    {
                        "strategy": self.state_dict(),
                        "steps_done": num_steps - remaining,
                    }
                )
        return self.finish()

    def _result(self, archive: SearchArchive, evaluator: CodesignEvaluator, **extras) -> SearchResult:
        return SearchResult(
            strategy=self.name,
            scenario=evaluator.reward_fn.config.name,
            archive=archive,
            extras=extras,
        )
