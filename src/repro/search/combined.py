"""Combined search (paper Section III-B1).

One controller over the concatenated CNN+HW token sequence applies
REINFORCE directly to the joint space of Eq. 1 — both the CNN and the
accelerator can change at every step, which makes this strategy the
fastest to adapt (and, per the paper, the best choice when the search
is unconstrained and for the CIFAR-100 flow).

Batch semantics (ask/tell): a batch is a **rollout batch** — ``ask(n)``
draws ``n`` rollouts from the current policy in one vectorized forward
pass, and ``tell`` performs one mini-batch REINFORCE update (mean
gradient over the rollouts, EMA baseline advanced rollout-by-rollout).
At batch size 1 both collapse to the historic sample/update step,
bit-identically.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.evaluator import CodesignEvaluator, EvaluationResult
from repro.core.search_space import JointSearchSpace
from repro.rl.policy import SequencePolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer
from repro.search.base import Proposal, SearchStrategy

__all__ = ["CombinedSearch"]


class CombinedSearch(SearchStrategy):
    """Single joint policy, updated once per rollout batch."""

    name = "combined"

    def __init__(
        self,
        search_space: JointSearchSpace | None = None,
        seed: int | np.random.Generator | None = None,
        reinforce_config: ReinforceConfig | None = None,
        hidden_size: int = 64,
        embedding_size: int = 32,
    ) -> None:
        super().__init__(search_space, seed)
        policy_seed = int(self.rng.integers(0, 2**63 - 1))
        self.policy = SequencePolicy(
            self.search_space.vocab_sizes,
            hidden_size=hidden_size,
            embedding_size=embedding_size,
            seed=policy_seed,
        )
        self.trainer = ReinforceTrainer(self.policy, reinforce_config)
        self._pending = None

    # --- ask/tell ------------------------------------------------------
    def setup(self, evaluator: CodesignEvaluator, num_steps: int) -> None:
        super().setup(evaluator, num_steps)
        self._pending = None

    # --- checkpoint/resume ---------------------------------------------
    def state_dict(self) -> dict:
        if self._pending is not None:
            raise RuntimeError("cannot checkpoint between ask and tell")
        state = super().state_dict()
        state["trainer"] = self.trainer.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.trainer.load_state_dict(state["trainer"])
        self._pending = None

    def ask(self, n: int) -> list[Proposal]:
        self._pending = self.trainer.sample_batch(self.rng, n)
        proposals = []
        for i in range(n):
            spec, config = self.search_space.decode(self._pending.actions_list(i))
            proposals.append(Proposal(spec=spec, config=config, phase="combined"))
        return proposals

    def tell(
        self,
        proposals: list[Proposal],
        results: list[EvaluationResult],
        indices: Sequence[int] | None = None,
    ) -> None:
        pending = self._pending if indices is None else self._pending.subset(indices)
        self.trainer.update_batch(pending, [r.reward.value for r in results])
        self._pending = None
        for result in results:
            self.archive.record(result, phase="combined")


from repro.search.registry import register_strategy

register_strategy(CombinedSearch)
