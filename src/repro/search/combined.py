"""Combined search (paper Section III-B1).

One controller over the concatenated CNN+HW token sequence applies
REINFORCE directly to the joint space of Eq. 1 — both the CNN and the
accelerator can change at every step, which makes this strategy the
fastest to adapt (and, per the paper, the best choice when the search
is unconstrained and for the CIFAR-100 flow).
"""

from __future__ import annotations

import numpy as np

from repro.core.archive import SearchArchive
from repro.core.evaluator import CodesignEvaluator
from repro.core.search_space import JointSearchSpace
from repro.rl.policy import SequencePolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer
from repro.search.base import SearchResult, SearchStrategy

__all__ = ["CombinedSearch"]


class CombinedSearch(SearchStrategy):
    """Single joint policy, updated every step."""

    name = "combined"

    def __init__(
        self,
        search_space: JointSearchSpace | None = None,
        seed: int | np.random.Generator | None = None,
        reinforce_config: ReinforceConfig | None = None,
        hidden_size: int = 64,
        embedding_size: int = 32,
    ) -> None:
        super().__init__(search_space, seed)
        policy_seed = int(self.rng.integers(0, 2**63 - 1))
        self.policy = SequencePolicy(
            self.search_space.vocab_sizes,
            hidden_size=hidden_size,
            embedding_size=embedding_size,
            seed=policy_seed,
        )
        self.trainer = ReinforceTrainer(self.policy, reinforce_config)

    def run(self, evaluator: CodesignEvaluator, num_steps: int) -> SearchResult:
        archive = SearchArchive()
        for _ in range(num_steps):
            sample = self.trainer.sample(self.rng)
            spec, config = self.search_space.decode(sample.actions)
            result = evaluator.evaluate(spec, config)
            self.trainer.update(sample, result.reward.value)
            archive.record(result, phase="combined")
        return self._result(archive, evaluator)
