"""Strategy registry: declarative name -> :class:`SearchStrategy` table.

Every shipped strategy registers itself at import time (the bottom of
its module calls :func:`register_strategy`), so a strategy is
constructible from nothing but its registered name plus a flat,
JSON-ready parameter mapping::

    from repro.search.registry import build_strategy

    strategy = build_strategy(
        "evolution", seed=7, search_space=space, population_size=25
    )

This is the factory layer behind :class:`repro.core.study.StudySpec`:
a spec names strategies as ``{"name": ..., "params": {...}}`` and the
study builder resolves them here.  Third-party strategies join the
same table with ``register_strategy(MyStrategy)`` (or as a class
decorator) and become spec-constructible with no further wiring.

Lookups lazily import the built-in strategy modules, so consumers may
import this module alone without pulling in ``repro.search`` first.
"""

from __future__ import annotations

from typing import Iterable

from repro.search.base import SearchStrategy

__all__ = [
    "StrategyError",
    "register_strategy",
    "get_strategy",
    "strategy_name_of",
    "list_strategies",
    "validate_strategy_params",
    "build_strategy",
]

#: The six built-in strategy modules; imported lazily on first lookup
#: so each can register itself without import cycles.
_BUILTIN_MODULES = (
    "repro.search.combined",
    "repro.search.evolution",
    "repro.search.phase",
    "repro.search.random_search",
    "repro.search.separate",
    "repro.search.threshold_schedule",
)

_REGISTRY: dict[str, type[SearchStrategy]] = {}


class StrategyError(ValueError):
    """A strategy name or its declarative params could not be resolved."""


def _ensure_builtins() -> None:
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def register_strategy(
    cls: type[SearchStrategy] | None = None,
    name: str | None = None,
    overwrite: bool = False,
):
    """Register a strategy class under ``name`` (default ``cls.name``).

    Usable directly (``register_strategy(MyStrategy)``) or as a class
    decorator.  Registering a *different* class under a taken name
    raises unless ``overwrite`` is set; re-registering the same class
    is a no-op, so modules can register at import time safely.
    """

    def _register(strategy_cls: type[SearchStrategy]) -> type[SearchStrategy]:
        key = name or strategy_cls.name
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not strategy_cls and not overwrite:
            raise StrategyError(
                f"strategy name {key!r} is already registered to "
                f"{existing.__name__}; pass overwrite=True to replace it"
            )
        _REGISTRY[key] = strategy_cls
        return strategy_cls

    return _register if cls is None else _register(cls)


def list_strategies() -> list[str]:
    """Registered strategy names, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def get_strategy(name: str) -> type[SearchStrategy]:
    """The strategy class registered under ``name``."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise StrategyError(
            f"unknown strategy {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def strategy_name_of(cls: type[SearchStrategy]) -> str | None:
    """The name ``cls`` is registered under, or ``None``."""
    _ensure_builtins()
    for name, registered in _REGISTRY.items():
        if registered is cls:
            return name
    return None


def validate_strategy_params(name: str, params: dict | None) -> None:
    """Check ``params`` names against the strategy's constructor.

    Raises :class:`StrategyError` naming the strategy and the unknown
    field(s); value errors are left to construction time (some require
    the search space).
    """
    cls = get_strategy(name)
    if not params:
        return
    if not isinstance(params, dict):
        raise StrategyError(
            f"strategy {name!r}: params must be a mapping, "
            f"got {type(params).__name__}"
        )
    allowed = cls.allowed_params()
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise StrategyError(
            f"strategy {name!r} got unknown parameter(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )


def build_strategy(
    name: str,
    seed,
    search_space=None,
    **params,
) -> SearchStrategy:
    """Construct a registered strategy from its flat parameter mapping."""
    cls = get_strategy(name)
    try:
        return cls.from_params(seed, search_space, **params)
    except StrategyError:
        raise
    except ValueError as err:
        raise StrategyError(str(err)) from err


def iter_registered() -> Iterable[tuple[str, type[SearchStrategy]]]:
    """(name, class) pairs currently registered."""
    _ensure_builtins()
    return sorted(_REGISTRY.items())
