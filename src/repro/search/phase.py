"""Phase search (paper Section III-B2).

Two controllers — one over the CNN tokens, one over the accelerator
tokens — take turns: a CNN phase searches cells against the currently
frozen accelerator, then the best pair found so far freezes the CNN
and an accelerator phase tunes the hardware, and so on until the step
budget is spent.  The paper interleaves 1000-step CNN phases with
200-step HW phases inside a 10,000-step budget.

Divide-and-conquer makes each sub-problem easier, but mutual
adaptation only happens at phase boundaries — the mechanism behind the
paper's observation that phase search reaches better constrained
optima yet converges slower and misses constraints more often at small
budgets.
"""

from __future__ import annotations

import numpy as np

from repro.core.archive import ArchiveEntry, SearchArchive
from repro.core.evaluator import CodesignEvaluator
from repro.core.search_space import JointSearchSpace
from repro.rl.policy import SequencePolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer
from repro.search.base import SearchResult, SearchStrategy

__all__ = ["PhaseSearch"]


class PhaseSearch(SearchStrategy):
    """Alternating CNN / accelerator controllers."""

    name = "phase"

    def __init__(
        self,
        search_space: JointSearchSpace | None = None,
        seed: int | np.random.Generator | None = None,
        reinforce_config: ReinforceConfig | None = None,
        cnn_phase_steps: int = 1000,
        hw_phase_steps: int = 200,
        hidden_size: int = 64,
        embedding_size: int = 32,
    ) -> None:
        super().__init__(search_space, seed)
        if cnn_phase_steps < 1 or hw_phase_steps < 1:
            raise ValueError("phase lengths must be positive")
        self.cnn_phase_steps = cnn_phase_steps
        self.hw_phase_steps = hw_phase_steps
        cnn_seed = int(self.rng.integers(0, 2**63 - 1))
        hw_seed = int(self.rng.integers(0, 2**63 - 1))
        self.cnn_policy = SequencePolicy(
            self.search_space.cnn_vocab_sizes, hidden_size, embedding_size, cnn_seed
        )
        self.hw_policy = SequencePolicy(
            self.search_space.hw_vocab_sizes, hidden_size, embedding_size, hw_seed
        )
        self.cnn_trainer = ReinforceTrainer(self.cnn_policy, reinforce_config)
        self.hw_trainer = ReinforceTrainer(self.hw_policy, reinforce_config)

    # ------------------------------------------------------------------
    @staticmethod
    def _best_entry(archive: SearchArchive) -> ArchiveEntry | None:
        """Best feasible entry, falling back to best valid entry."""
        best = archive.best()
        if best is not None:
            return best
        valid = [e for e in archive.entries if e.valid]
        if valid:
            return max(valid, key=lambda e: e.reward)
        if archive.entries:
            return max(archive.entries, key=lambda e: e.reward)
        return None

    def run(self, evaluator: CodesignEvaluator, num_steps: int) -> SearchResult:
        archive = SearchArchive()
        # Initial frozen accelerator: a random design-space point.
        frozen_config = self.search_space.accelerator_space.random_config(self.rng)
        frozen_spec = None
        steps_done = 0
        phase_index = 0
        while steps_done < num_steps:
            cnn_phase = phase_index % 2 == 0
            budget = self.cnn_phase_steps if cnn_phase else self.hw_phase_steps
            budget = min(budget, num_steps - steps_done)
            phase_name = f"{'cnn' if cnn_phase else 'hw'}-{phase_index}"
            for _ in range(budget):
                if cnn_phase:
                    sample = self.cnn_trainer.sample(self.rng)
                    spec = self.search_space.cell_encoding.decode(sample.actions)
                    result = evaluator.evaluate(spec, frozen_config)
                    self.cnn_trainer.update(sample, result.reward.value)
                else:
                    sample = self.hw_trainer.sample(self.rng)
                    config = self.search_space.accelerator_space.decode(sample.actions)
                    result = evaluator.evaluate(frozen_spec, config)
                    self.hw_trainer.update(sample, result.reward.value)
                archive.record(result, phase=phase_name)
            steps_done += budget
            # Freeze the best component found so far for the next phase.
            best = self._best_entry(archive)
            if best is not None and best.valid:
                frozen_config = best.config
                frozen_spec = best.spec
            if frozen_spec is None:
                # No valid CNN yet: stay in (another) CNN phase.
                phase_index += 2
            else:
                phase_index += 1
        return self._result(archive, evaluator)
