"""Phase search (paper Section III-B2).

Two controllers — one over the CNN tokens, one over the accelerator
tokens — take turns: a CNN phase searches cells against the currently
frozen accelerator, then the best pair found so far freezes the CNN
and an accelerator phase tunes the hardware, and so on until the step
budget is spent.  The paper interleaves 1000-step CNN phases with
200-step HW phases inside a 10,000-step budget.

Divide-and-conquer makes each sub-problem easier, but mutual
adaptation only happens at phase boundaries — the mechanism behind the
paper's observation that phase search reaches better constrained
optima yet converges slower and misses constraints more often at small
budgets.

Batch semantics (ask/tell): rollout batches from the active phase's
controller, truncated at phase boundaries — ``ask`` never mixes two
phases in one batch, so the freeze decision at each boundary still
sees every result of the finished phase.  Batch size 1 is
bit-identical to the historic per-point loop.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.archive import ArchiveEntry, SearchArchive
from repro.core.evaluator import CodesignEvaluator, EvaluationResult
from repro.core.search_space import JointSearchSpace
from repro.rl.policy import SequencePolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer
from repro.search.base import Proposal, SearchStrategy

__all__ = ["PhaseSearch"]


class PhaseSearch(SearchStrategy):
    """Alternating CNN / accelerator controllers."""

    name = "phase"

    def __init__(
        self,
        search_space: JointSearchSpace | None = None,
        seed: int | np.random.Generator | None = None,
        reinforce_config: ReinforceConfig | None = None,
        cnn_phase_steps: int = 1000,
        hw_phase_steps: int = 200,
        hidden_size: int = 64,
        embedding_size: int = 32,
    ) -> None:
        super().__init__(search_space, seed)
        if cnn_phase_steps < 1 or hw_phase_steps < 1:
            raise ValueError("phase lengths must be positive")
        self.cnn_phase_steps = cnn_phase_steps
        self.hw_phase_steps = hw_phase_steps
        cnn_seed = int(self.rng.integers(0, 2**63 - 1))
        hw_seed = int(self.rng.integers(0, 2**63 - 1))
        self.cnn_policy = SequencePolicy(
            self.search_space.cnn_vocab_sizes, hidden_size, embedding_size, cnn_seed
        )
        self.hw_policy = SequencePolicy(
            self.search_space.hw_vocab_sizes, hidden_size, embedding_size, hw_seed
        )
        self.cnn_trainer = ReinforceTrainer(self.cnn_policy, reinforce_config)
        self.hw_trainer = ReinforceTrainer(self.hw_policy, reinforce_config)
        self._pending = None

    # ------------------------------------------------------------------
    @staticmethod
    def _best_entry(archive: SearchArchive) -> ArchiveEntry | None:
        """Best feasible entry, falling back to best valid entry."""
        best = archive.best()
        if best is not None:
            return best
        valid = [e for e in archive.entries if e.valid]
        if valid:
            return max(valid, key=lambda e: e.reward)
        if archive.entries:
            return max(archive.entries, key=lambda e: e.reward)
        return None

    def _in_cnn_phase(self) -> bool:
        return self._phase_index % 2 == 0

    def _start_phase(self) -> None:
        """Arm the budget for the phase at ``self._phase_index``."""
        budget = (
            self.cnn_phase_steps if self._in_cnn_phase() else self.hw_phase_steps
        )
        self._phase_left = budget

    def _end_phase(self) -> None:
        """Freeze the best component found so far for the next phase."""
        best = self._best_entry(self.archive)
        if best is not None and best.valid:
            self._frozen_config = best.config
            self._frozen_spec = best.spec
        if self._frozen_spec is None:
            # No valid CNN yet: stay in (another) CNN phase.
            self._phase_index += 2
        else:
            self._phase_index += 1
        self._start_phase()

    # --- ask/tell ------------------------------------------------------
    def setup(self, evaluator: CodesignEvaluator, num_steps: int) -> None:
        super().setup(evaluator, num_steps)
        # Initial frozen accelerator: a random design-space point.
        self._frozen_config = self.search_space.accelerator_space.random_config(
            self.rng
        )
        self._frozen_spec = None
        self._phase_index = 0
        self._start_phase()
        self._pending = None

    # --- checkpoint/resume ---------------------------------------------
    def state_dict(self) -> dict:
        if self._pending is not None:
            raise RuntimeError("cannot checkpoint between ask and tell")
        state = super().state_dict()
        state.update(
            cnn_trainer=self.cnn_trainer.state_dict(),
            hw_trainer=self.hw_trainer.state_dict(),
            frozen_config=self._frozen_config,
            frozen_spec=self._frozen_spec,
            phase_index=self._phase_index,
            phase_left=self._phase_left,
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.cnn_trainer.load_state_dict(state["cnn_trainer"])
        self.hw_trainer.load_state_dict(state["hw_trainer"])
        self._frozen_config = state["frozen_config"]
        self._frozen_spec = state["frozen_spec"]
        self._phase_index = int(state["phase_index"])
        self._phase_left = int(state["phase_left"])
        self._pending = None

    def ask(self, n: int) -> list[Proposal]:
        k = min(n, self._phase_left)
        phase_name = f"{'cnn' if self._in_cnn_phase() else 'hw'}-{self._phase_index}"
        if self._in_cnn_phase():
            self._pending = self.cnn_trainer.sample_batch(self.rng, k)
            return [
                Proposal(
                    spec=self.search_space.cell_encoding.decode(
                        self._pending.actions_list(i)
                    ),
                    config=self._frozen_config,
                    phase=phase_name,
                )
                for i in range(k)
            ]
        self._pending = self.hw_trainer.sample_batch(self.rng, k)
        return [
            Proposal(
                spec=self._frozen_spec,
                config=self.search_space.accelerator_space.decode(
                    self._pending.actions_list(i)
                ),
                phase=phase_name,
            )
            for i in range(k)
        ]

    def tell(
        self,
        proposals: list[Proposal],
        results: list[EvaluationResult],
        indices: Sequence[int] | None = None,
    ) -> None:
        trainer = self.cnn_trainer if self._in_cnn_phase() else self.hw_trainer
        pending = self._pending if indices is None else self._pending.subset(indices)
        trainer.update_batch(pending, [r.reward.value for r in results])
        for proposal, result in zip(proposals, results):
            self.archive.record(result, phase=proposal.phase)
        self._pending = None
        self._phase_left -= len(proposals)
        if self._phase_left == 0:
            self._end_phase()


from repro.search.registry import register_strategy

register_strategy(PhaseSearch)
