"""Threshold-scheduled codesign search (paper Section IV-A).

The CIFAR-100 flow combines latency and area into perf/area
(img/s/cm2), constrains it to a threshold, and maximizes accuracy.  The
threshold rises over the run — (2, 8, 16, 30, 40) in the paper — with a
target number of *valid* (feasible) points per rung, starting at 300
and growing to 1000 at the last rung ("this gradual increase makes it
easier for the RL controller to learn the structure of high-accuracy
CNNs").  The controller is the combined strategy's joint policy; the
evaluator is re-armed with the next rung's reward while keeping all of
its latency/area/accuracy caches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.archive import ArchiveEntry, SearchArchive
from repro.core.evaluator import CodesignEvaluator
from repro.core.reward import MetricBounds
from repro.core.scenarios import CIFAR100_THRESHOLD_SCHEDULE, cifar100_threshold
from repro.core.search_space import JointSearchSpace
from repro.rl.policy import SequencePolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer
from repro.search.base import Checkpoint, SearchResult, SearchStrategy

__all__ = ["ThresholdRung", "ThresholdScheduleSearch", "default_rungs"]


@dataclass(frozen=True)
class ThresholdRung:
    """One rung of the schedule: threshold + valid-point target."""

    threshold: float
    target_valid_points: int
    max_steps: int

    def __post_init__(self) -> None:
        if self.target_valid_points < 1:
            raise ValueError("target_valid_points must be positive")
        if self.max_steps < self.target_valid_points:
            raise ValueError("max_steps must cover the valid-point target")


def default_rungs(
    thresholds: tuple[float, ...] = CIFAR100_THRESHOLD_SCHEDULE,
    targets: tuple[int, ...] = (300, 400, 500, 600, 1000),
    step_multiplier: int = 4,
) -> list[ThresholdRung]:
    """The paper's schedule: ~2300+ valid points over five rungs."""
    if len(thresholds) != len(targets):
        raise ValueError("thresholds and targets must align")
    return [
        ThresholdRung(th, n, max_steps=step_multiplier * n)
        for th, n in zip(thresholds, targets)
    ]


class ThresholdScheduleSearch(SearchStrategy):
    """Combined-strategy search over a rising perf/area threshold."""

    name = "threshold-schedule"

    def __init__(
        self,
        search_space: JointSearchSpace | None = None,
        seed: int | np.random.Generator | None = None,
        reinforce_config: ReinforceConfig | None = None,
        rungs: list[ThresholdRung] | None = None,
        bounds: MetricBounds | None = None,
        hidden_size: int = 64,
        embedding_size: int = 32,
    ) -> None:
        super().__init__(search_space, seed)
        self.rungs = rungs or default_rungs()
        thresholds = [rung.threshold for rung in self.rungs]
        if len(set(thresholds)) != len(thresholds):
            # Per-rung archives (results and checkpoints) are keyed by
            # threshold; a repeated value would silently merge two
            # rungs' entries into one archive.
            raise ValueError(f"rung thresholds must be unique, got {thresholds}")
        self.bounds = bounds or MetricBounds()
        policy_seed = int(self.rng.integers(0, 2**63 - 1))
        self.policy = SequencePolicy(
            self.search_space.vocab_sizes, hidden_size, embedding_size, policy_seed
        )
        self.trainer = ReinforceTrainer(self.policy, reinforce_config)

    # --- declarative construction --------------------------------------
    @classmethod
    def _coerce_params(cls, params: dict) -> dict:
        """JSON forms of ``rungs`` / ``bounds`` -> their value objects.

        ``rungs`` entries may be ``[threshold, target, max_steps]``
        triples or ``{"threshold": ..., "target_valid_points": ...,
        "max_steps": ...}`` mappings; ``bounds`` is a mapping of metric
        name to ``[lo, hi]`` (the :class:`MetricBounds` fields).
        """
        params = super()._coerce_params(params)
        rungs = params.get("rungs")
        if rungs is not None and not all(
            isinstance(r, ThresholdRung) for r in rungs
        ):
            coerced = []
            for rung in rungs:
                if isinstance(rung, ThresholdRung):
                    coerced.append(rung)
                elif isinstance(rung, dict):
                    coerced.append(ThresholdRung(**rung))
                elif isinstance(rung, (list, tuple)) and len(rung) == 3:
                    coerced.append(ThresholdRung(*rung))
                else:
                    raise ValueError(
                        f"rung {rung!r} must be a [threshold, "
                        "target_valid_points, max_steps] triple or mapping"
                    )
            params["rungs"] = coerced
        bounds = params.get("bounds")
        if isinstance(bounds, dict):
            params["bounds"] = MetricBounds(
                **{name: tuple(pair) for name, pair in bounds.items()}
            )
        return params

    # --- checkpoint/resume ---------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            trainer=self.trainer.state_dict(),
            rung_index=getattr(self, "_rung_index", 0),
            rung_steps=getattr(self, "_rung_steps", 0),
            rung_valid=getattr(self, "_rung_valid", 0),
            total_steps=getattr(self, "_total_steps", 0),
            # Per-rung archives share their entries with the main
            # archive, so they serialize as step indices into it —
            # avoiding a second full copy of every entry per checkpoint.
            per_rung=[
                [threshold, [entry.step for entry in rung_archive.entries]]
                for threshold, rung_archive in getattr(self, "_per_rung", {}).items()
            ],
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.trainer.load_state_dict(state["trainer"])
        self._rung_index = int(state["rung_index"])
        self._rung_steps = int(state["rung_steps"])
        self._rung_valid = int(state["rung_valid"])
        self._total_steps = int(state["total_steps"])
        entries = self.archive.entries  # entry.step == its archive index
        self._per_rung = {
            float(threshold): SearchArchive(
                entries=[entries[int(step)] for step in steps]
            )
            for threshold, steps in state["per_rung"]
        }

    def run(
        self,
        evaluator: CodesignEvaluator,
        num_steps: int | None = None,
        batch_size: int = 1,
        checkpoint: Checkpoint | None = None,
        checkpoint_every: int = 1,
        two_tier=None,
    ) -> SearchResult:
        """Run the whole schedule (``num_steps`` caps the total if set).

        ``batch_size`` rollouts are sampled, evaluated (one
        ``evaluate_batch`` call on the current rung's evaluator) and
        folded into one REINFORCE update at a time; the valid-point
        target is re-checked between batches, so a batch may overshoot
        it by up to ``batch_size - 1`` evaluations.  At ``batch_size=1``
        the run is bit-identical to the historic per-point loop.

        ``checkpoint`` / ``checkpoint_every`` follow the base driver's
        contract (:meth:`SearchStrategy.run`): state — including the
        rung cursor and per-rung archives — is saved at batch
        boundaries and restored on resume, bit-identical to an
        uninterrupted run at the same batch size.

        Returns a result whose ``extras`` carry per-rung archives and
        top-10 lists (the rows Fig. 7 plots).
        """
        if two_tier is not None:
            # The rung loop re-arms the evaluator's reward per rung; a
            # surrogate filter armed with one scenario would rank with
            # stale thresholds, so refuse rather than filter wrongly.
            raise ValueError(
                "threshold-schedule drives its own rung loop and does not "
                "support two-tier surrogate filtering"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        self.archive = SearchArchive()
        self._per_rung = {}
        self._rung_index = 0
        self._rung_steps = 0
        self._rung_valid = 0
        self._total_steps = 0
        if checkpoint is not None:
            saved = checkpoint.load()
            if saved is not None:
                self.load_state_dict(saved["strategy"])
        batches = 0
        while self._rung_index < len(self.rungs):
            rung = self.rungs[self._rung_index]
            scenario = cifar100_threshold(rung.threshold, self.bounds)
            rung_eval = evaluator.with_reward(scenario)
            rung_archive = self._per_rung.setdefault(rung.threshold, SearchArchive())
            while (
                self._rung_valid < rung.target_valid_points
                and self._rung_steps < rung.max_steps
            ):
                if num_steps is not None and self._total_steps >= num_steps:
                    break
                k = min(batch_size, rung.max_steps - self._rung_steps)
                if num_steps is not None:
                    k = min(k, num_steps - self._total_steps)
                batch = self.trainer.sample_batch(self.rng, k)
                pairs = [
                    self.search_space.decode(batch.actions_list(i)) for i in range(k)
                ]
                results = rung_eval.evaluate_batch(pairs)
                self.trainer.update_batch(batch, [r.reward.value for r in results])
                for result in results:
                    entry = self.archive.record(result, phase=f"th-{rung.threshold:g}")
                    rung_archive.entries.append(entry)
                    if result.feasible:
                        self._rung_valid += 1
                self._rung_steps += k
                self._total_steps += k
                batches += 1
                if checkpoint is not None and batches % checkpoint_every == 0:
                    checkpoint.save(
                        {
                            "strategy": self.state_dict(),
                            "steps_done": self._total_steps,
                        }
                    )
            if num_steps is not None and self._total_steps >= num_steps:
                break
            self._rung_index += 1
            self._rung_steps = 0
            self._rung_valid = 0
        if checkpoint is not None and batches % checkpoint_every != 0:
            # Final-batch save, matching the base driver's contract:
            # a kill between here and the caller's record_done must
            # not replay more than the already-covered batches.
            checkpoint.save(
                {"strategy": self.state_dict(), "steps_done": self._total_steps}
            )
        top10 = {
            threshold: rung_archive.top_k(10)
            for threshold, rung_archive in self._per_rung.items()
        }
        result = SearchResult(
            strategy=self.name,
            scenario="cifar100-threshold-schedule",
            archive=self.archive,
            extras={"per_rung": self._per_rung, "top10": top10},
        )
        return result

    @staticmethod
    def best_over_rungs(result: SearchResult) -> ArchiveEntry | None:
        """Highest-accuracy feasible point across all rungs."""
        best: ArchiveEntry | None = None
        for rung_archive in result.extras["per_rung"].values():
            for entry in rung_archive.feasible_entries():
                if entry.metrics is None:
                    continue
                if best is None or entry.metrics.accuracy > best.metrics.accuracy:
                    best = entry
        return best


from repro.search.registry import register_strategy

register_strategy(ThresholdScheduleSearch)
