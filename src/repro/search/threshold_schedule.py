"""Threshold-scheduled codesign search (paper Section IV-A).

The CIFAR-100 flow combines latency and area into perf/area
(img/s/cm2), constrains it to a threshold, and maximizes accuracy.  The
threshold rises over the run — (2, 8, 16, 30, 40) in the paper — with a
target number of *valid* (feasible) points per rung, starting at 300
and growing to 1000 at the last rung ("this gradual increase makes it
easier for the RL controller to learn the structure of high-accuracy
CNNs").  The controller is the combined strategy's joint policy; the
evaluator is re-armed with the next rung's reward while keeping all of
its latency/area/accuracy caches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.archive import ArchiveEntry, SearchArchive
from repro.core.evaluator import CodesignEvaluator
from repro.core.reward import MetricBounds
from repro.core.scenarios import CIFAR100_THRESHOLD_SCHEDULE, cifar100_threshold
from repro.core.search_space import JointSearchSpace
from repro.rl.policy import SequencePolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer
from repro.search.base import SearchResult, SearchStrategy

__all__ = ["ThresholdRung", "ThresholdScheduleSearch", "default_rungs"]


@dataclass(frozen=True)
class ThresholdRung:
    """One rung of the schedule: threshold + valid-point target."""

    threshold: float
    target_valid_points: int
    max_steps: int

    def __post_init__(self) -> None:
        if self.target_valid_points < 1:
            raise ValueError("target_valid_points must be positive")
        if self.max_steps < self.target_valid_points:
            raise ValueError("max_steps must cover the valid-point target")


def default_rungs(
    thresholds: tuple[float, ...] = CIFAR100_THRESHOLD_SCHEDULE,
    targets: tuple[int, ...] = (300, 400, 500, 600, 1000),
    step_multiplier: int = 4,
) -> list[ThresholdRung]:
    """The paper's schedule: ~2300+ valid points over five rungs."""
    if len(thresholds) != len(targets):
        raise ValueError("thresholds and targets must align")
    return [
        ThresholdRung(th, n, max_steps=step_multiplier * n)
        for th, n in zip(thresholds, targets)
    ]


class ThresholdScheduleSearch(SearchStrategy):
    """Combined-strategy search over a rising perf/area threshold."""

    name = "threshold-schedule"

    def __init__(
        self,
        search_space: JointSearchSpace | None = None,
        seed: int | np.random.Generator | None = None,
        reinforce_config: ReinforceConfig | None = None,
        rungs: list[ThresholdRung] | None = None,
        bounds: MetricBounds | None = None,
        hidden_size: int = 64,
        embedding_size: int = 32,
    ) -> None:
        super().__init__(search_space, seed)
        self.rungs = rungs or default_rungs()
        self.bounds = bounds or MetricBounds()
        policy_seed = int(self.rng.integers(0, 2**63 - 1))
        self.policy = SequencePolicy(
            self.search_space.vocab_sizes, hidden_size, embedding_size, policy_seed
        )
        self.trainer = ReinforceTrainer(self.policy, reinforce_config)

    def run(
        self,
        evaluator: CodesignEvaluator,
        num_steps: int | None = None,
        batch_size: int = 1,
    ) -> SearchResult:
        """Run the whole schedule (``num_steps`` caps the total if set).

        ``batch_size`` rollouts are sampled, evaluated (one
        ``evaluate_batch`` call on the current rung's evaluator) and
        folded into one REINFORCE update at a time; the valid-point
        target is re-checked between batches, so a batch may overshoot
        it by up to ``batch_size - 1`` evaluations.  At ``batch_size=1``
        the run is bit-identical to the historic per-point loop.

        Returns a result whose ``extras`` carry per-rung archives and
        top-10 lists (the rows Fig. 7 plots).
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        archive = SearchArchive()
        per_rung: dict[float, SearchArchive] = {}
        total_steps = 0
        for rung in self.rungs:
            scenario = cifar100_threshold(rung.threshold, self.bounds)
            rung_eval = evaluator.with_reward(scenario)
            rung_archive = SearchArchive()
            valid_points = 0
            steps = 0
            while valid_points < rung.target_valid_points and steps < rung.max_steps:
                if num_steps is not None and total_steps >= num_steps:
                    break
                k = min(batch_size, rung.max_steps - steps)
                if num_steps is not None:
                    k = min(k, num_steps - total_steps)
                batch = self.trainer.sample_batch(self.rng, k)
                pairs = [
                    self.search_space.decode(batch.actions_list(i)) for i in range(k)
                ]
                results = rung_eval.evaluate_batch(pairs)
                self.trainer.update_batch(batch, [r.reward.value for r in results])
                for result in results:
                    entry = archive.record(result, phase=f"th-{rung.threshold:g}")
                    rung_archive.entries.append(entry)
                    if result.feasible:
                        valid_points += 1
                steps += k
                total_steps += k
            per_rung[rung.threshold] = rung_archive
            if num_steps is not None and total_steps >= num_steps:
                break
        top10 = {
            threshold: rung_archive.top_k(10)
            for threshold, rung_archive in per_rung.items()
        }
        result = SearchResult(
            strategy=self.name,
            scenario="cifar100-threshold-schedule",
            archive=archive,
            extras={"per_rung": per_rung, "top10": top10},
        )
        return result

    @staticmethod
    def best_over_rungs(result: SearchResult) -> ArchiveEntry | None:
        """Highest-accuracy feasible point across all rungs."""
        best: ArchiveEntry | None = None
        for rung_archive in result.extras["per_rung"].values():
            for entry in rung_archive.feasible_entries():
                if entry.metrics is None:
                    continue
                if best is None or entry.metrics.accuracy > best.metrics.accuracy:
                    best = entry
        return best
