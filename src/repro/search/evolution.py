"""Regularized (aging) evolution — the paper's noted alternative.

The paper's introduction lists evolutionary algorithms alongside RL as
standard NAS search engines; this strategy implements regularized
evolution (Real et al., 2019) over the same joint action vector the RL
controller emits, so it is directly comparable to the REINFORCE
strategies under any scenario: an initial random population, tournament
selection of a parent, single-token mutation of its action vector, and
aging removal of the oldest individual.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.archive import SearchArchive
from repro.core.evaluator import CodesignEvaluator
from repro.core.search_space import JointSearchSpace
from repro.search.base import SearchResult, SearchStrategy

__all__ = ["EvolutionSearch"]


@dataclass
class _Individual:
    actions: list[int]
    reward: float


class EvolutionSearch(SearchStrategy):
    """Aging evolution over the joint CNN+HW action space."""

    name = "evolution"

    def __init__(
        self,
        search_space: JointSearchSpace | None = None,
        seed: int | np.random.Generator | None = None,
        population_size: int = 50,
        tournament_size: int = 10,
        mutations_per_child: int = 1,
    ) -> None:
        super().__init__(search_space, seed)
        if population_size < 2:
            raise ValueError("population_size must be at least 2")
        if not 1 <= tournament_size <= population_size:
            raise ValueError("tournament_size must be in [1, population_size]")
        if mutations_per_child < 1:
            raise ValueError("mutations_per_child must be positive")
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.mutations_per_child = mutations_per_child

    # ------------------------------------------------------------------
    def _mutate(self, actions: list[int]) -> list[int]:
        """Resample ``mutations_per_child`` random tokens."""
        child = list(actions)
        vocab = self.search_space.vocab_sizes
        for _ in range(self.mutations_per_child):
            token = int(self.rng.integers(0, len(child)))
            choices = [a for a in range(vocab[token]) if a != child[token]]
            child[token] = int(self.rng.choice(choices))
        return child

    def run(self, evaluator: CodesignEvaluator, num_steps: int) -> SearchResult:
        archive = SearchArchive()
        population: deque[_Individual] = deque()

        def evaluate(actions: list[int], phase: str) -> _Individual:
            spec, config = self.search_space.decode(actions)
            result = evaluator.evaluate(spec, config)
            archive.record(result, phase=phase)
            return _Individual(actions=actions, reward=result.reward.value)

        # Seed population with random individuals.
        warmup = min(self.population_size, num_steps)
        for _ in range(warmup):
            population.append(
                evaluate(self.search_space.random_actions(self.rng), "init")
            )

        # Aging evolution.
        for _ in range(num_steps - warmup):
            contenders = [
                population[int(i)]
                for i in self.rng.integers(0, len(population), self.tournament_size)
            ]
            parent = max(contenders, key=lambda ind: ind.reward)
            child = evaluate(self._mutate(parent.actions), "evolve")
            population.append(child)
            population.popleft()  # age out the oldest
        return self._result(archive, evaluator)
