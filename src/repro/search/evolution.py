"""Regularized (aging) evolution — the paper's noted alternative.

The paper's introduction lists evolutionary algorithms alongside RL as
standard NAS search engines; this strategy implements regularized
evolution (Real et al., 2019) over the same joint action vector the RL
controller emits, so it is directly comparable to the REINFORCE
strategies under any scenario: an initial random population, tournament
selection of a parent, single-token mutation of its action vector, and
aging removal of the oldest individual.

Batch semantics (ask/tell): a batch is a **generation** — ``ask(n)``
runs ``n`` tournaments against the current population and proposes
``n`` children; ``tell`` appends them all and ages out the ``n``
oldest.  At batch size 1 this degenerates to the classic steady-state
loop, bit-identical to the historic implementation.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.evaluator import CodesignEvaluator, EvaluationResult
from repro.core.search_space import JointSearchSpace
from repro.search.base import Proposal, SearchStrategy

__all__ = ["EvolutionSearch"]


@dataclass
class _Individual:
    actions: list[int]
    reward: float


class EvolutionSearch(SearchStrategy):
    """Aging evolution over the joint CNN+HW action space."""

    name = "evolution"

    def __init__(
        self,
        search_space: JointSearchSpace | None = None,
        seed: int | np.random.Generator | None = None,
        population_size: int = 50,
        tournament_size: int = 10,
        mutations_per_child: int = 1,
    ) -> None:
        super().__init__(search_space, seed)
        if population_size < 2:
            raise ValueError("population_size must be at least 2")
        if not 1 <= tournament_size <= population_size:
            raise ValueError("tournament_size must be in [1, population_size]")
        if mutations_per_child < 1:
            raise ValueError("mutations_per_child must be positive")
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.mutations_per_child = mutations_per_child
        self.population: deque[_Individual] = deque()

    # ------------------------------------------------------------------
    def _mutate(self, actions: list[int]) -> list[int]:
        """Resample ``mutations_per_child`` random tokens."""
        child = list(actions)
        vocab = self.search_space.vocab_sizes
        for _ in range(self.mutations_per_child):
            token = int(self.rng.integers(0, len(child)))
            choices = [a for a in range(vocab[token]) if a != child[token]]
            child[token] = int(self.rng.choice(choices))
        return child

    def _select_parent(self) -> _Individual:
        contenders = [
            self.population[int(i)]
            for i in self.rng.integers(0, len(self.population), self.tournament_size)
        ]
        return max(contenders, key=lambda ind: ind.reward)

    # --- ask/tell ------------------------------------------------------
    def setup(self, evaluator: CodesignEvaluator, num_steps: int) -> None:
        super().setup(evaluator, num_steps)
        self.population = deque()

    # --- checkpoint/resume ---------------------------------------------
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["population"] = [
            {"actions": list(ind.actions), "reward": ind.reward}
            for ind in self.population
        ]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.population = deque(
            _Individual(
                actions=[int(a) for a in ind["actions"]],
                reward=float(ind["reward"]),
            )
            for ind in state["population"]
        )

    def ask(self, n: int) -> list[Proposal]:
        proposals = []
        warmup_left = self.population_size - len(self.population)
        if warmup_left > 0:
            # Seed population with random individuals.
            for _ in range(min(n, warmup_left)):
                actions = self.search_space.random_actions(self.rng)
                spec, config = self.search_space.decode(actions)
                proposals.append(
                    Proposal(spec=spec, config=config, phase="init", payload=actions)
                )
            return proposals
        # One generation: n tournaments against the current population.
        for _ in range(n):
            actions = self._mutate(self._select_parent().actions)
            spec, config = self.search_space.decode(actions)
            proposals.append(
                Proposal(spec=spec, config=config, phase="evolve", payload=actions)
            )
        return proposals

    def tell(
        self,
        proposals: list[Proposal],
        results: list[EvaluationResult],
        indices: Sequence[int] | None = None,
    ) -> None:
        # Each proposal carries its own actions payload, so a filtered
        # subset (two-tier mode) needs no extra slicing: only surviving
        # individuals join the population (and age out elders).
        evolving = proposals[0].phase == "evolve"
        for proposal, result in zip(proposals, results):
            self.archive.record(result, phase=proposal.phase)
            self.population.append(
                _Individual(actions=proposal.payload, reward=result.reward.value)
            )
            if evolving:
                self.population.popleft()  # age out the oldest


from repro.search.registry import register_strategy

register_strategy(EvolutionSearch)
