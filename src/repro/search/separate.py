"""Separate search — the conventional-design baseline (Section III-B3).

Stage 1 searches the CNN space for the most accurate model with **no
hardware context** (the controller's reward is normalized accuracy
alone).  Stage 2 freezes the best-accuracy CNN and explores the
accelerator space under the scenario's multi-objective reward.  The
paper splits 10,000 steps as 8,333 / 1,667.

The archive records the *scenario* reward at every step (so reward
traces are comparable across strategies, as in Fig. 6), while the
stage-1 controller is fed the accuracy-only signal.
"""

from __future__ import annotations

import numpy as np

from repro.core.archive import SearchArchive
from repro.core.evaluator import CodesignEvaluator
from repro.core.search_space import JointSearchSpace
from repro.nasbench.model_spec import ModelSpec
from repro.rl.policy import SequencePolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer
from repro.search.base import SearchResult, SearchStrategy

__all__ = ["SeparateSearch"]


class SeparateSearch(SearchStrategy):
    """Accuracy-only CNN search, then HW design-space exploration."""

    name = "separate"

    def __init__(
        self,
        search_space: JointSearchSpace | None = None,
        seed: int | np.random.Generator | None = None,
        reinforce_config: ReinforceConfig | None = None,
        cnn_fraction: float = 8333 / 10000,
        hidden_size: int = 64,
        embedding_size: int = 32,
    ) -> None:
        super().__init__(search_space, seed)
        if not 0.0 < cnn_fraction < 1.0:
            raise ValueError("cnn_fraction must be in (0, 1)")
        self.cnn_fraction = cnn_fraction
        cnn_seed = int(self.rng.integers(0, 2**63 - 1))
        hw_seed = int(self.rng.integers(0, 2**63 - 1))
        self.cnn_policy = SequencePolicy(
            self.search_space.cnn_vocab_sizes, hidden_size, embedding_size, cnn_seed
        )
        self.hw_policy = SequencePolicy(
            self.search_space.hw_vocab_sizes, hidden_size, embedding_size, hw_seed
        )
        self.cnn_trainer = ReinforceTrainer(self.cnn_policy, reinforce_config)
        self.hw_trainer = ReinforceTrainer(self.hw_policy, reinforce_config)

    # ------------------------------------------------------------------
    def _accuracy_reward(self, evaluator: CodesignEvaluator, spec: ModelSpec) -> float:
        """HW-blind stage-1 signal: normalized accuracy or punishment."""
        accuracy = evaluator.accuracy(spec) if spec.valid else None
        if accuracy is None:
            return -evaluator.reward_fn.config.punishment_scale
        lo, hi = evaluator.reward_fn.config.bounds.accuracy
        return float(np.clip((accuracy - lo) / (hi - lo), 0.0, 1.0))

    def run(self, evaluator: CodesignEvaluator, num_steps: int) -> SearchResult:
        archive = SearchArchive()
        cnn_steps = max(1, int(round(num_steps * self.cnn_fraction)))
        hw_steps = max(0, num_steps - cnn_steps)

        # Stage 1: accuracy-only CNN search.  A reference accelerator is
        # used solely to log comparable scenario metrics.
        reference_config = self.search_space.accelerator_space.random_config(self.rng)
        best_spec: ModelSpec | None = None
        best_accuracy = -np.inf
        for _ in range(cnn_steps):
            sample = self.cnn_trainer.sample(self.rng)
            spec = self.search_space.cell_encoding.decode(sample.actions)
            controller_reward = self._accuracy_reward(evaluator, spec)
            self.cnn_trainer.update(sample, controller_reward)
            result = evaluator.evaluate(spec, reference_config)
            archive.record(result, phase="cnn-only")
            accuracy = evaluator.accuracy(spec) if spec.valid else None
            if accuracy is not None and accuracy > best_accuracy:
                best_accuracy = accuracy
                best_spec = spec

        # Stage 2: accelerator exploration for the frozen CNN under the
        # full multi-objective scenario reward.
        if best_spec is None:
            return self._result(archive, evaluator, stage1_best=None)
        for _ in range(hw_steps):
            sample = self.hw_trainer.sample(self.rng)
            config = self.search_space.accelerator_space.decode(sample.actions)
            result = evaluator.evaluate(best_spec, config)
            self.hw_trainer.update(sample, result.reward.value)
            archive.record(result, phase="hw-only")
        return self._result(
            archive, evaluator, stage1_best=best_spec, stage1_accuracy=best_accuracy
        )
