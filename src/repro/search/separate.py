"""Separate search — the conventional-design baseline (Section III-B3).

Stage 1 searches the CNN space for the most accurate model with **no
hardware context** (the controller's reward is normalized accuracy
alone).  Stage 2 freezes the best-accuracy CNN and explores the
accelerator space under the scenario's multi-objective reward.  The
paper splits 10,000 steps as 8,333 / 1,667.

The archive records the *scenario* reward at every step (so reward
traces are comparable across strategies, as in Fig. 6), while the
stage-1 controller is fed the accuracy-only signal.

Batch semantics (ask/tell): rollout batches per stage controller, never
crossing the stage boundary — ``ask`` truncates a batch at the end of
stage 1 so the frozen CNN is chosen from *all* stage-1 results before
any accelerator rollout is proposed.  Batch size 1 is bit-identical to
the historic per-point loop.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.evaluator import CodesignEvaluator, EvaluationResult
from repro.core.search_space import JointSearchSpace
from repro.nasbench.model_spec import ModelSpec
from repro.rl.policy import SequencePolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer
from repro.search.base import Proposal, SearchResult, SearchStrategy

__all__ = ["SeparateSearch"]


class SeparateSearch(SearchStrategy):
    """Accuracy-only CNN search, then HW design-space exploration."""

    name = "separate"

    def __init__(
        self,
        search_space: JointSearchSpace | None = None,
        seed: int | np.random.Generator | None = None,
        reinforce_config: ReinforceConfig | None = None,
        cnn_fraction: float = 8333 / 10000,
        hidden_size: int = 64,
        embedding_size: int = 32,
    ) -> None:
        super().__init__(search_space, seed)
        if not 0.0 < cnn_fraction < 1.0:
            raise ValueError("cnn_fraction must be in (0, 1)")
        self.cnn_fraction = cnn_fraction
        cnn_seed = int(self.rng.integers(0, 2**63 - 1))
        hw_seed = int(self.rng.integers(0, 2**63 - 1))
        self.cnn_policy = SequencePolicy(
            self.search_space.cnn_vocab_sizes, hidden_size, embedding_size, cnn_seed
        )
        self.hw_policy = SequencePolicy(
            self.search_space.hw_vocab_sizes, hidden_size, embedding_size, hw_seed
        )
        self.cnn_trainer = ReinforceTrainer(self.cnn_policy, reinforce_config)
        self.hw_trainer = ReinforceTrainer(self.hw_policy, reinforce_config)
        self._pending = None

    # ------------------------------------------------------------------
    def _accuracy_reward(self, result: EvaluationResult) -> float:
        """HW-blind stage-1 signal: normalized accuracy or punishment.

        ``result.metrics is None`` exactly when the historic
        ``evaluator.accuracy`` returned ``None`` (invalid or
        unevaluable cell), so this matches the legacy signal bit for
        bit without re-querying the evaluator.
        """
        config = self._evaluator.reward_fn.config
        if result.metrics is None:
            return -config.punishment_scale
        lo, hi = config.bounds.accuracy
        return float(np.clip((result.metrics.accuracy - lo) / (hi - lo), 0.0, 1.0))

    # --- ask/tell ------------------------------------------------------
    def setup(self, evaluator: CodesignEvaluator, num_steps: int) -> None:
        super().setup(evaluator, num_steps)
        self._cnn_left = max(1, int(round(num_steps * self.cnn_fraction)))
        # Stage 1 logs comparable scenario metrics against a reference
        # accelerator: a random design-space point.
        self._reference_config = self.search_space.accelerator_space.random_config(
            self.rng
        )
        self._best_spec: ModelSpec | None = None
        self._best_accuracy = -np.inf
        self._pending = None

    # --- checkpoint/resume ---------------------------------------------
    def state_dict(self) -> dict:
        if self._pending is not None:
            raise RuntimeError("cannot checkpoint between ask and tell")
        state = super().state_dict()
        state.update(
            cnn_trainer=self.cnn_trainer.state_dict(),
            hw_trainer=self.hw_trainer.state_dict(),
            cnn_left=self._cnn_left,
            reference_config=self._reference_config,
            best_spec=self._best_spec,
            best_accuracy=float(self._best_accuracy),
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.cnn_trainer.load_state_dict(state["cnn_trainer"])
        self.hw_trainer.load_state_dict(state["hw_trainer"])
        self._cnn_left = int(state["cnn_left"])
        self._reference_config = state["reference_config"]
        self._best_spec = state["best_spec"]
        self._best_accuracy = float(state["best_accuracy"])
        self._pending = None

    def ask(self, n: int) -> list[Proposal]:
        if self._cnn_left > 0:
            k = min(n, self._cnn_left)
            self._pending = self.cnn_trainer.sample_batch(self.rng, k)
            return [
                Proposal(
                    spec=self.search_space.cell_encoding.decode(
                        self._pending.actions_list(i)
                    ),
                    config=self._reference_config,
                    phase="cnn-only",
                )
                for i in range(k)
            ]
        if self._best_spec is None:
            return []  # stage 1 found no evaluable CNN: stop early
        self._pending = self.hw_trainer.sample_batch(self.rng, n)
        return [
            Proposal(
                spec=self._best_spec,
                config=self.search_space.accelerator_space.decode(
                    self._pending.actions_list(i)
                ),
                phase="hw-only",
            )
            for i in range(n)
        ]

    def tell(
        self,
        proposals: list[Proposal],
        results: list[EvaluationResult],
        indices: Sequence[int] | None = None,
    ) -> None:
        stage1 = proposals[0].phase == "cnn-only"
        pending = self._pending if indices is None else self._pending.subset(indices)
        if stage1:
            self.cnn_trainer.update_batch(
                pending, [self._accuracy_reward(r) for r in results]
            )
            self._cnn_left -= len(proposals)
        else:
            self.hw_trainer.update_batch(
                pending, [r.reward.value for r in results]
            )
        self._pending = None
        for proposal, result in zip(proposals, results):
            self.archive.record(result, phase=proposal.phase)
            if stage1 and result.metrics is not None:
                accuracy = result.metrics.accuracy
                if accuracy > self._best_accuracy:
                    self._best_accuracy = accuracy
                    self._best_spec = proposal.spec

    def finish(self) -> SearchResult:
        if self._best_spec is None:
            return self._result(self.archive, self._evaluator, stage1_best=None)
        return self._result(
            self.archive,
            self._evaluator,
            stage1_best=self._best_spec,
            stage1_accuracy=self._best_accuracy,
        )


from repro.search.registry import register_strategy

register_strategy(SeparateSearch)
