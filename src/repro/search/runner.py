"""Repeat-experiment harness (Fig. 5 / Fig. 6 style).

The paper repeats every (strategy, scenario) experiment 10 times and
reports the top result per repeat (Fig. 5) and the step-wise reward
averaged over repeats (Fig. 6).  :func:`run_repeats` drives that, with
independent per-repeat seeds derived from one master seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.archive import ArchiveEntry
from repro.core.evaluator import CodesignEvaluator
from repro.search.base import SearchResult, SearchStrategy
from repro.utils.rng import hash_seed

__all__ = ["RepeatOutcome", "run_repeats", "mean_reward_trace"]

StrategyFactory = Callable[[int], SearchStrategy]
EvaluatorFactory = Callable[[], CodesignEvaluator]


@dataclass
class RepeatOutcome:
    """All repeats of one (strategy, scenario) experiment."""

    strategy: str
    scenario: str
    results: list[SearchResult] = field(default_factory=list)

    def best_entries(self) -> list[ArchiveEntry]:
        """Best feasible entry of each repeat (max 1 point per repeat)."""
        return [r.best for r in self.results if r.best is not None]

    def top_rewards(self) -> np.ndarray:
        return np.array([e.reward for e in self.best_entries()])

    def hit_rate(self) -> float:
        """Fraction of repeats that found any feasible point."""
        if not self.results:
            return 0.0
        return len(self.best_entries()) / len(self.results)

    def mean_best_reward(self) -> float:
        rewards = self.top_rewards()
        return float(rewards.mean()) if len(rewards) else float("nan")


def run_repeats(
    strategy_factory: StrategyFactory,
    evaluator_factory: EvaluatorFactory,
    num_steps: int,
    num_repeats: int = 10,
    master_seed: int = 0,
) -> RepeatOutcome:
    """Run ``num_repeats`` independent searches.

    ``strategy_factory(seed)`` builds a fresh strategy per repeat;
    ``evaluator_factory()`` builds (or shares) the evaluator — sharing
    one evaluator across repeats is safe and reuses the metric caches.
    """
    results: list[SearchResult] = []
    for repeat in range(num_repeats):
        seed = hash_seed("repeat", master_seed, repeat)
        strategy = strategy_factory(seed)
        evaluator = evaluator_factory()
        results.append(strategy.run(evaluator, num_steps))
    if not results:
        raise ValueError("num_repeats must be positive")
    return RepeatOutcome(
        strategy=results[0].strategy,
        scenario=results[0].scenario,
        results=results,
    )


def mean_reward_trace(
    outcome: RepeatOutcome, window: int = 100, best_so_far: bool = False
) -> np.ndarray:
    """Step-wise reward averaged over repeats (Fig. 6's curves).

    Traces are truncated to the shortest repeat, averaged across
    repeats, then smoothed with a trailing ``window``-step mean.  With
    ``best_so_far`` the running-max trace is averaged instead.
    """
    traces = [
        r.best_so_far_trace() if best_so_far else r.reward_trace()
        for r in outcome.results
    ]
    length = min(len(t) for t in traces)
    stacked = np.vstack([t[:length] for t in traces])
    mean = np.nanmean(stacked, axis=0)
    if window <= 1:
        return mean
    smoothed = np.empty_like(mean)
    for i in range(len(mean)):
        lo = max(0, i - window + 1)
        smoothed[i] = np.nanmean(mean[lo: i + 1])
    return smoothed
