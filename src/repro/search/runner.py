"""Repeat-experiment engine (Fig. 5 / Fig. 6 style).

The paper repeats every (strategy, scenario) experiment 10 times and
reports the top result per repeat (Fig. 5) and the step-wise reward
averaged over repeats (Fig. 6).  :func:`run_repeats` drives one such
bag of repeats; :func:`run_grid` drives many (strategy, scenario) jobs
at once so whole experiment grids fan out together.

Both dispatch execution through the pluggable backend registry
(:mod:`repro.parallel.pool`):

* ``"serial"`` — the historical in-process loop;
* ``"process"`` — repeats (across *all* jobs) spread over a fork-based
  process pool;
* ``"cluster"`` — repeats leased to cooperating worker processes
  (spawnable on other machines sharing the ledger file) with
  heartbeats and stale-lease re-issue (:mod:`repro.parallel.cluster`).

Third-party backends registered with
:func:`repro.parallel.pool.register_backend` are equally valid names.

Every repeat derives its seed as ``hash_seed("repeat", master_seed,
repeat)`` regardless of backend or scheduling, so results are
bit-identical at any worker count.  An optional shared persistent
:class:`repro.parallel.EvalCache` warm-starts evaluations: serial runs
write through it directly, process workers consult it read-only and
ship their new rows back to the parent, which merges them after the
pool completes.

An optional :class:`repro.parallel.RunLedger` makes a grid
crash-safe: completed (job, repeat) results are persisted as they
finish, in-flight searches checkpoint their strategy state every
``checkpoint_every`` batches, and re-running the same grid against the
same ledger loads finished repeats and resumes interrupted ones from
their last checkpoint — bit-identical to an uninterrupted run at the
same batch size (see ``tests/integration/test_kill_resume.py``).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.archive import ArchiveEntry
from repro.core.evaluator import CodesignEvaluator
from repro.parallel.cache import CacheEntry, EvalCache
from repro.parallel.ledger import RunLedger
from repro.parallel.pool import (
    ExecutionBackend,
    build_backend,
    parallel_map,
    resolve_workers,
)
from repro.search.base import BatchEvaluateFn, SearchResult, SearchStrategy
from repro.utils.rng import hash_seed

__all__ = [
    "GridRun",
    "RepeatJob",
    "RepeatOutcome",
    "make_batch_evaluator",
    "run_grid",
    "run_repeats",
    "mean_reward_trace",
]

StrategyFactory = Callable[[int], SearchStrategy]
EvaluatorFactory = Callable[[], CodesignEvaluator]


@dataclass(frozen=True)
class RepeatJob:
    """One (strategy, scenario) experiment to be repeated."""

    label: str
    strategy_factory: StrategyFactory
    evaluator_factory: EvaluatorFactory
    cache_scenario: str | None = None  # EvalCache namespace override
    # Two-tier mode: maps the job's exact evaluator to a
    # repro.search.two_tier.TwoTierFilter (surrogate-ranked proposal
    # filtering); None runs the plain exact-only loop.  A factory, not
    # a filter, because process-backend workers rebuild evaluators
    # per fork and the filter must wrap *that* evaluator's twin.
    two_tier_factory: Callable[[CodesignEvaluator], object] | None = None


@dataclass
class RepeatOutcome:
    """All repeats of one (strategy, scenario) experiment."""

    strategy: str
    scenario: str
    results: list[SearchResult] = field(default_factory=list)

    def best_entries(self) -> list[ArchiveEntry]:
        """Best feasible entry of each repeat (max 1 point per repeat)."""
        return [r.best for r in self.results if r.best is not None]

    def top_rewards(self) -> np.ndarray:
        return np.array([e.reward for e in self.best_entries()])

    def hit_rate(self) -> float:
        """Fraction of repeats that found any feasible point."""
        if not self.results:
            return 0.0
        return len(self.best_entries()) / len(self.results)

    def mean_best_reward(self) -> float:
        rewards = self.top_rewards()
        return float(rewards.mean()) if len(rewards) else float("nan")


def _coerce_cache(eval_cache: EvalCache | str | Path | None) -> EvalCache | None:
    if eval_cache is None or isinstance(eval_cache, EvalCache):
        return eval_cache
    return EvalCache(eval_cache)


def _coerce_ledger(ledger: RunLedger | str | Path | None) -> RunLedger | None:
    if ledger is None or isinstance(ledger, RunLedger):
        return ledger
    return RunLedger(ledger)


def make_batch_evaluator(
    evaluator: CodesignEvaluator,
    workers: int | None = None,
    min_chunk: int = 8,
) -> BatchEvaluateFn:
    """Batch evaluation function fanning each ask/tell batch over a pool.

    Worth it only when single evaluations are expensive (a surrogate
    with real inference cost, a trainer) — for the memoized
    table-backed evaluators the fork/IPC overhead dominates and the
    plain ``evaluator.evaluate_batch`` is faster.  Small batches
    (< ``min_chunk`` per worker) skip the pool entirely.

    Forked workers evaluate with the shared persistent
    :class:`~repro.parallel.EvalCache` *detached* (the store stays
    single-writer in the parent); the parent then absorbs every
    returned metric back into its own cache layers, so warm-start
    behaviour matches in-process evaluation.
    """
    parent_pid = os.getpid()

    def run_chunk(chunk):
        if os.getpid() != parent_pid:
            # Forked copy: never touch the parent's sqlite connection.
            evaluator.eval_cache = None
        return evaluator.evaluate_batch(chunk)

    def evaluate_fn(pairs):
        pairs = list(pairs)
        n_workers = min(resolve_workers(workers), max(1, len(pairs) // min_chunk))
        if n_workers <= 1:
            return evaluator.evaluate_batch(pairs)
        chunks = [pairs[i::n_workers] for i in range(n_workers)]
        before = evaluator.num_evaluations
        chunked = parallel_map(run_chunk, chunks, workers=n_workers, backend="process")
        # Undo the round-robin split, preserving input order.
        results: list = [None] * len(pairs)
        for lane, chunk_results in enumerate(chunked):
            if len(chunk_results) != len(chunks[lane]):
                # Same contract SearchStrategy.run enforces on the whole
                # batch: results pair with proposals positionally, so a
                # short/long chunk would silently shift every later
                # lane's results onto the wrong proposals.
                raise RuntimeError(
                    f"batch evaluator worker chunk {lane} returned "
                    f"{len(chunk_results)} results for {len(chunks[lane])} "
                    "pairs — evaluate_batch must return exactly one "
                    "result per input pair, in order"
                )
            for j, result in enumerate(chunk_results):
                results[lane + j * n_workers] = result
        # Workers counted evaluations on their forked copies only; keep
        # the parent's counter on the every-pair-counts contract.  (A
        # serial fallback inside parallel_map already incremented it.)
        evaluator.num_evaluations = before + len(pairs)
        _absorb_batch(evaluator, results)
        return results

    return evaluate_fn


def _absorb_batch(evaluator: CodesignEvaluator, results) -> None:
    """Fold worker-computed metrics into the parent evaluator's caches."""
    from repro.accelerator.lut import config_key

    cache = evaluator.eval_cache
    seen: set = set()
    for result in results:
        if not result.spec.valid:
            continue
        ckey = config_key(result.config)
        content = (result.spec.matrix.tobytes(), tuple(result.spec.ops))
        spec_hash = evaluator._content_hash_memo.get(content)
        if spec_hash is None:
            spec_hash = result.spec.spec_hash()
            evaluator._content_hash_memo[content] = spec_hash
        key = (spec_hash, ckey)
        if key in seen:
            continue
        seen.add(key)
        metrics = result.metrics
        if metrics is None:
            evaluator._accuracy_cache.setdefault(spec_hash, None)
        else:
            evaluator._accuracy_cache.setdefault(spec_hash, metrics.accuracy)
            evaluator._area_cache.setdefault(ckey, metrics.area_mm2)
            evaluator._latency_cache.setdefault(key, metrics.latency_s)
        if cache is not None:
            cache_key = (evaluator.cache_scenario, spec_hash, str(ckey))
            if cache.get(*cache_key) is None:
                if metrics is None:
                    cache.put(CacheEntry(*cache_key, None, None, None))
                else:
                    cache.put(
                        CacheEntry(
                            *cache_key,
                            metrics.accuracy,
                            metrics.latency_s,
                            metrics.area_mm2,
                        )
                    )


def _attach(
    evaluator: CodesignEvaluator, cache: EvalCache | None, job: RepeatJob
) -> None:
    if cache is not None and evaluator.eval_cache is None:
        evaluator.attach_eval_cache(cache, scenario=job.cache_scenario)


@dataclass
class GridRun:
    """One prepared grid execution, handed to an execution backend.

    Everything :func:`run_grid` resolves before dispatch lives here:
    the task bag (``pending`` excludes ledger-restored results), the
    run parameters, and the execution closures a backend composes —
    :meth:`run_one` (the historical serial path),
    :meth:`run_in_worker` / :meth:`merge_worker_payloads` (the
    fork-pool path), and the raw pieces (``jobs``, ``labels``,
    ``ledger``, ``cache``) the cluster backend coordinates through
    lease rows.  Backends schedule *where* tasks run; every method
    here computes identical results regardless of scheduling.
    """

    jobs: list[RepeatJob]
    labels: list[str]
    tasks: list[tuple[int, int]]
    pending: list[tuple[int, int]]
    completed: dict[tuple[int, int], SearchResult]
    num_steps: int
    num_repeats: int
    master_seed: int
    batch_size: int
    checkpoint_every: int
    workers: int | None
    cache: EvalCache | None
    ledger: RunLedger | None
    #: One read-only store view per (process, store path), reused by
    #: every task a pool worker runs — regardless of whether the
    #: factory hands out shared or fresh-per-task evaluators — so a
    #: long-lived worker holds a bounded number of sqlite connections.
    #: Forked children inherit the parent's (empty or stale) dict
    #: copy-on-write; stale entries are recognized by ``owner_pid``.
    _worker_views: dict[str, EvalCache] = field(
        default_factory=dict, init=False, repr=False
    )

    def run_strategy(self, job: RepeatJob, repeat: int, evaluator) -> SearchResult:
        strategy = job.strategy_factory(
            hash_seed("repeat", self.master_seed, repeat)
        )
        checkpoint = (
            self.ledger.checkpoint(job.label, repeat)
            if self.ledger is not None
            else None
        )
        two_tier = (
            job.two_tier_factory(evaluator)
            if job.two_tier_factory is not None
            else None
        )
        result = strategy.run(
            evaluator,
            self.num_steps,
            batch_size=self.batch_size,
            checkpoint=checkpoint,
            checkpoint_every=self.checkpoint_every,
            two_tier=two_tier,
        )
        if self.ledger is not None:
            self.ledger.record_done(job.label, repeat, result)
        return result

    def run_one(self, task: tuple[int, int]) -> SearchResult:
        """Run one (job, repeat) task in-process (the serial path)."""
        job_index, repeat = task
        job = self.jobs[job_index]
        evaluator = job.evaluator_factory()
        _attach(evaluator, self.cache, job)
        result = self.run_strategy(job, repeat, evaluator)
        if self.cache is not None:
            self.cache.flush()
        return result

    def worker_view(self, store_path) -> EvalCache:
        key = str(store_path)
        view = self._worker_views.get(key)
        if view is None or view.owner_pid != os.getpid():
            view = EvalCache(store_path, read_only=True)
            self._worker_views[key] = view
        return view

    def prepare_for_workers(self) -> None:
        """Pre-fork checks + flush so pool workers see a coherent store."""
        if self.cache is not None and self.cache.path is None:
            warnings.warn(
                "process backend cannot share a path-less (in-memory) "
                "EvalCache with workers; evaluations will not be cached "
                "— give the cache a file path",
                RuntimeWarning,
                stacklevel=2,
            )
        if self.ledger is not None and self.ledger.path is None:
            raise ValueError(
                "the process backend requires a file-backed ledger "
                "(an in-memory RunLedger cannot cross a fork)"
            )
        if self.cache is not None:
            self.cache.flush()  # workers must see everything known so far

    def run_in_worker(self, task: tuple[int, int]):
        # Runs in a forked child: evaluate against a per-process
        # read-only view of the store (never the parent's inherited
        # connection) and return the new rows alongside the result for
        # the parent to merge.  Stats are reported as per-task deltas
        # and pending rows drain per task.  (The ledger needs no such
        # dance: RunLedger reopens its connection when it notices the
        # pid changed.)
        job_index, repeat = task
        job = self.jobs[job_index]
        cache = self.cache
        evaluator = job.evaluator_factory()
        inherited = evaluator.eval_cache
        if inherited is not None and inherited.owner_pid != os.getpid():
            # Same parent-pid guard as make_batch_evaluator.run_chunk:
            # the factory closed over an evaluator whose cache (and
            # live sqlite connection) we inherited through fork —
            # detach it and fall back to the read-only view.  A cache
            # the factory opened post-fork (owner_pid matches) is safe
            # and stays.
            evaluator.eval_cache = None
        worker_cache = evaluator.eval_cache
        store_path = cache.path if cache is not None else None
        if store_path is None and inherited is not None and evaluator.eval_cache is None:
            store_path = inherited.path  # keep warm-starts after a detach
        if worker_cache is None and store_path is not None:
            worker_cache = self.worker_view(store_path)
            evaluator.attach_eval_cache(worker_cache, scenario=job.cache_scenario)
        if worker_cache is None:
            return self.run_strategy(job, repeat, evaluator), [], (0, 0), None
        hits0, misses0 = worker_cache.hits, worker_cache.misses
        result = self.run_strategy(job, repeat, evaluator)
        delta = worker_cache.drain_pending()
        stats = (worker_cache.hits - hits0, worker_cache.misses - misses0)
        # Rows the parent cannot route into `cache` (it was never given
        # one) still need a writable home: name the store they came from.
        delta_path = (
            str(worker_cache.path)
            if cache is None and delta and worker_cache.path is not None
            else None
        )
        # No explicit cleanup: a pooled view stays attached (a shared
        # evaluator reuses it next task; a task-local evaluator just
        # drops the reference, and the pool keeps the view alive and
        # bounded), while a cache the factory opened itself lives
        # exactly as long as the factory's objects do —
        # ``EvalCache.__del__`` closes the connection the moment it
        # becomes unreachable, so per-task caches release their fd at
        # task end and deliberately shared ones stay open.
        return result, delta, stats, delta_path

    def merge_worker_payloads(self, payloads) -> dict[tuple[int, int], SearchResult]:
        """Absorb pool workers' (result, cache delta, stats) payloads."""
        cache = self.cache
        fresh: dict[tuple[int, int], SearchResult] = {}
        # Stores reached only through factory-attached caches (run_grid
        # was given no eval_cache of its own): the parent persists the
        # workers' deltas through one writable connection per file.
        path_sinks: dict[str, EvalCache] = {}
        for task, (result, delta, (hits, misses), delta_path) in zip(
            self.pending, payloads
        ):
            if cache is not None:
                cache.merge(delta)
                # Fold worker-side lookups into the parent's counters so
                # hit-rate reporting covers the whole run.
                cache.hits += hits
                cache.misses += misses
            elif delta_path is not None:
                sink = path_sinks.get(delta_path)
                if sink is None:
                    sink = path_sinks[delta_path] = EvalCache(delta_path)
                sink.merge(delta)
            fresh[task] = result
        for sink in path_sinks.values():
            sink.close()
        for view in self._worker_views.values():
            # Views opened in the parent (the pool's inline-degraded
            # path) are closed here; the workers' copies died with
            # their processes.
            if view.owner_pid == os.getpid():
                view.close()
        return fresh


def run_grid(
    jobs: list[RepeatJob],
    num_steps: int,
    num_repeats: int = 10,
    master_seed: int = 0,
    backend: str | ExecutionBackend = "serial",
    workers: int | None = None,
    eval_cache: EvalCache | str | Path | None = None,
    batch_size: int = 1,
    ledger: RunLedger | str | Path | None = None,
    checkpoint_every: int = 10,
    ledger_context: dict | None = None,
) -> dict[str, RepeatOutcome]:
    """Run every job ``num_repeats`` times; returns label -> outcome.

    The task bag is the full (job, repeat) cross product, so with the
    process backend independent jobs parallelize against each other,
    not just their own repeats.  Per-repeat seeds depend only on
    ``master_seed`` and the repeat index (matching the historical
    serial harness), never on the job or the backend.

    ``backend`` names a registered
    :class:`~repro.parallel.pool.ExecutionBackend` (see
    :func:`repro.parallel.pool.list_backends`) or is an already-built
    backend instance (how :func:`repro.core.study.run_study` passes
    ``execution.backend_params`` through).  Built-ins: ``"serial"``,
    ``"process"`` (fork pool), and ``"cluster"`` (ledger-coordinated
    worker processes; see :mod:`repro.parallel.cluster`).

    ``batch_size`` is handed to every strategy's ask/tell driver: each
    iteration proposes up to that many points and evaluates them in one
    ``evaluate_batch`` call.  At the default of 1 results are
    bit-identical to the historic per-point loop; larger batches trade
    exact reproduction of the serial trace for per-strategy batch
    semantics (rollout batches, generations) and throughput.

    ``ledger`` (a :class:`repro.parallel.RunLedger` or a path) makes
    the grid crash-safe: each finished (job, repeat) is persisted as
    it completes, in-flight searches checkpoint every
    ``checkpoint_every`` batches, and re-running the same grid against
    the same ledger loads finished repeats and resumes interrupted
    ones from their last checkpoint — bit-identical to an
    uninterrupted run.  The ledger pins the run configuration
    (steps/repeats/seed/batch size/labels) and refuses to mix results
    from a different one.  Job labels are opaque strings, so anything
    else the outcome depends on — scenario definitions, evaluator
    parameters — should be passed as ``ledger_context`` (a
    JSON-serializable dict) to be pinned alongside; see
    :func:`repro.experiments.search_study.run_search_study`, which
    pins its resolved scenario definitions this way.
    """
    if num_repeats <= 0:
        raise ValueError("num_repeats must be positive")
    backend_obj = (
        backend if isinstance(backend, ExecutionBackend) else build_backend(backend)
    )
    if not jobs:
        return {}
    cache = _coerce_cache(eval_cache)
    ledger = _coerce_ledger(ledger)
    tasks = [(j, r) for j in range(len(jobs)) for r in range(num_repeats)]
    labels = [job.label for job in jobs]
    if len(set(labels)) != len(labels):
        raise ValueError(f"job labels must be unique, got {labels}")

    completed: dict[tuple[int, int], SearchResult] = {}
    if ledger is not None:
        ledger.begin_run(
            {
                "num_steps": num_steps,
                "num_repeats": num_repeats,
                "master_seed": master_seed,
                "batch_size": batch_size,
                "labels": labels,
                "context": ledger_context or {},
            }
        )
        for job_index, repeat in tasks:
            result = ledger.load_result(labels[job_index], repeat)
            if result is not None:
                completed[(job_index, repeat)] = result
    pending = [task for task in tasks if task not in completed]

    grid = GridRun(
        jobs=jobs,
        labels=labels,
        tasks=tasks,
        pending=pending,
        completed=completed,
        num_steps=num_steps,
        num_repeats=num_repeats,
        master_seed=master_seed,
        batch_size=batch_size,
        checkpoint_every=checkpoint_every,
        workers=workers,
        cache=cache,
        ledger=ledger,
    )
    if ledger is not None:
        # Pin what actually executes this run (requested vs effective
        # backend) so resumed/served studies can report it faithfully.
        ledger.record_execution(backend_obj.describe_execution(grid))
    fresh = backend_obj.run_tasks(grid)

    outcomes: dict[str, RepeatOutcome] = {}
    for task in tasks:
        result = completed[task] if task in completed else fresh[task]
        label = labels[task[0]]
        if label not in outcomes:
            outcomes[label] = RepeatOutcome(
                strategy=result.strategy, scenario=result.scenario
            )
        outcomes[label].results.append(result)
    return outcomes


def run_repeats(
    strategy_factory: StrategyFactory,
    evaluator_factory: EvaluatorFactory,
    num_steps: int,
    num_repeats: int = 10,
    master_seed: int = 0,
    backend: str | ExecutionBackend = "serial",
    workers: int | None = None,
    eval_cache: EvalCache | str | Path | None = None,
    batch_size: int = 1,
    ledger: RunLedger | str | Path | None = None,
    checkpoint_every: int = 10,
    label: str | None = None,
    two_tier_factory: Callable[[CodesignEvaluator], object] | None = None,
) -> RepeatOutcome:
    """Run ``num_repeats`` independent searches of one experiment.

    ``strategy_factory(seed)`` builds a fresh strategy per repeat;
    ``evaluator_factory()`` builds (or shares) the evaluator — sharing
    one evaluator across serial repeats is safe and reuses the metric
    caches.  See :func:`run_grid` for ``backend`` / ``workers`` /
    ``eval_cache`` / ``batch_size`` / ``ledger`` semantics.

    ``label`` keys the experiment's ledger task rows.  By default it
    is derived from the factories as ``"<scenario>/<strategy>"`` — the
    same convention the grid-level entry points use — so the rows a
    ``run_repeats`` run persists are interchangeable with those of an
    equivalent single-job :func:`run_grid` (historically the label was
    hardcoded to ``"job"``, which made every ``run_repeats`` ledger
    collide with every other).  Without a ledger the label never
    leaves this function, so no derivation happens.
    """
    if label is None:
        if ledger is None:
            label = "job"  # internal-only key, nothing persists it
        else:
            # Probe the factories once: a throwaway strategy (repeat-0
            # seed, never run) names the strategy; a throwaway
            # evaluator names the scenario.  Evaluation state is
            # untouched — every repeat still builds its own strategy,
            # and evaluator factories already tolerate per-task
            # invocation.
            strategy_name = strategy_factory(
                hash_seed("repeat", master_seed, 0)
            ).name
            scenario_name = evaluator_factory().reward_fn.config.name
            label = f"{scenario_name}/{strategy_name}"
    outcomes = run_grid(
        [
            RepeatJob(
                label,
                strategy_factory,
                evaluator_factory,
                two_tier_factory=two_tier_factory,
            )
        ],
        num_steps=num_steps,
        num_repeats=num_repeats,
        master_seed=master_seed,
        backend=backend,
        workers=workers,
        eval_cache=eval_cache,
        batch_size=batch_size,
        ledger=ledger,
        checkpoint_every=checkpoint_every,
    )
    return outcomes[label]


def mean_reward_trace(
    outcome: RepeatOutcome, window: int = 100, best_so_far: bool = False
) -> np.ndarray:
    """Step-wise reward averaged over repeats (Fig. 6's curves).

    Traces are truncated to the shortest repeat, averaged across
    repeats, then smoothed with a trailing ``window``-step mean.  With
    ``best_so_far`` the running-max trace is averaged instead.
    """
    traces = [
        r.best_so_far_trace() if best_so_far else r.reward_trace()
        for r in outcome.results
    ]
    length = min(len(t) for t in traces)
    stacked = np.vstack([t[:length] for t in traces])
    mean = np.nanmean(stacked, axis=0)
    if window <= 1:
        return mean
    # NaN-aware trailing mean via cumulative sums: O(n) instead of the
    # O(n * window) per-step nanmean loop.  NaNs (steps before the
    # first feasible point in best-so-far traces) contribute neither
    # to the window sum nor to its count; an all-NaN window stays NaN.
    finite = ~np.isnan(mean)
    cum_sum = np.concatenate(([0.0], np.cumsum(np.where(finite, mean, 0.0))))
    cum_cnt = np.concatenate(([0], np.cumsum(finite)))
    hi = np.arange(1, len(mean) + 1)
    lo = np.maximum(hi - window, 0)
    win_sum = cum_sum[hi] - cum_sum[lo]
    win_cnt = cum_cnt[hi] - cum_cnt[lo]
    return np.where(win_cnt > 0, win_sum / np.maximum(win_cnt, 1), np.nan)
