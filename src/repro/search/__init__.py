"""Search strategies (batched ask/tell): combined, phase, separate,
random, evolution, threshold schedule — plus the repeat/grid engine."""

from repro.search.base import Checkpoint, Proposal, SearchResult, SearchStrategy
from repro.search.combined import CombinedSearch
from repro.search.registry import (
    StrategyError,
    build_strategy,
    get_strategy,
    list_strategies,
    register_strategy,
)
from repro.search.evolution import EvolutionSearch
from repro.search.phase import PhaseSearch
from repro.search.random_search import RandomSearch
from repro.search.runner import (
    RepeatJob,
    RepeatOutcome,
    make_batch_evaluator,
    mean_reward_trace,
    run_grid,
    run_repeats,
)
from repro.search.separate import SeparateSearch
from repro.search.threshold_schedule import (
    ThresholdRung,
    ThresholdScheduleSearch,
    default_rungs,
)

__all__ = [
    "Checkpoint",
    "Proposal",
    "SearchResult",
    "SearchStrategy",
    "CombinedSearch",
    "EvolutionSearch",
    "StrategyError",
    "build_strategy",
    "get_strategy",
    "list_strategies",
    "register_strategy",
    "PhaseSearch",
    "RandomSearch",
    "RepeatJob",
    "RepeatOutcome",
    "make_batch_evaluator",
    "mean_reward_trace",
    "run_grid",
    "run_repeats",
    "SeparateSearch",
    "ThresholdRung",
    "ThresholdScheduleSearch",
    "default_rungs",
]
