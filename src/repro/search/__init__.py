"""Search strategies: combined, phase, separate, random, threshold schedule."""

from repro.search.base import SearchResult, SearchStrategy
from repro.search.combined import CombinedSearch
from repro.search.evolution import EvolutionSearch
from repro.search.phase import PhaseSearch
from repro.search.random_search import RandomSearch
from repro.search.runner import (
    RepeatJob,
    RepeatOutcome,
    mean_reward_trace,
    run_grid,
    run_repeats,
)
from repro.search.separate import SeparateSearch
from repro.search.threshold_schedule import (
    ThresholdRung,
    ThresholdScheduleSearch,
    default_rungs,
)

__all__ = [
    "SearchResult",
    "SearchStrategy",
    "CombinedSearch",
    "EvolutionSearch",
    "PhaseSearch",
    "RandomSearch",
    "RepeatJob",
    "RepeatOutcome",
    "mean_reward_trace",
    "run_grid",
    "run_repeats",
    "SeparateSearch",
    "ThresholdRung",
    "ThresholdScheduleSearch",
    "default_rungs",
]
