"""The ``cnn-cell`` reference workload — the paper's original space.

This is a pure re-packaging of the pre-workload stack: the NASBench
cell encoding, :func:`repro.nasbench.compile.compile_cell_ops`, and
the three historical accuracy sources.  Nothing here may change
behaviour — studies that never name a workload resolve to this recipe
and must stay bit-identical to archived runs (the spec-pin suite in
``tests/workloads`` guards exactly that).
"""

from __future__ import annotations

from repro.nasbench.compile import compile_cell_ops
from repro.nasbench.encoding import CellEncoding
from repro.workloads.registry import register_workload

__all__ = ["CNN_CELL"]


def _cnn_cell_encoding(bundle=None) -> CellEncoding:
    """The bundle's exact encoding when given, the full space otherwise."""
    if bundle is not None:
        return bundle.cell_encoding
    return CellEncoding()


CNN_CELL = register_workload(
    "cnn-cell",
    description=(
        "NASBench-101-style CNN cells compiled onto the CIFAR skeleton "
        "(the paper's original model space; reference workload)"
    ),
    encoding_factory=_cnn_cell_encoding,
    compile=compile_cell_ops,
    default_accuracy_source="database",
    accuracy_sources=("database", "surrogate", "cifar100-trainer"),
    platforms=("dac2020", "dac2020-scaled", "embedded-lite"),
    is_reference=True,
)
