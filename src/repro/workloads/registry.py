"""The workload registry: pluggable model families for the codesign loop.

A *workload* is the model half of the joint search space, packaged the
same way hardware platforms are (:mod:`repro.hw.platform`): a named
recipe that supplies

* the controller-facing **encoding** of the model space (duck-typed
  like :class:`repro.nasbench.CellEncoding` — ``num_tokens`` /
  ``vocab_sizes`` / ``decode`` / ``encode``),
* the **compile function** lowering a decoded spec to the IR the
  hardware platforms schedule (``compile(spec, skeleton) -> IR``),
* the **accuracy sources** that can score its specs (names in the
  :mod:`repro.core.evaluator` registry) and which one is the default,
* the **platforms** whose latency models understand its IR.

The historical CNN-cell stack registers as the ``cnn-cell`` reference
workload; studies that never name a workload resolve to it and stay
bit-identical to every archived pre-workload run.  New model families
(the ``transformer`` GEMM workload) plug in without touching the
search loop: :func:`repro.core.study.build_study` resolves the named
workload, injects its encoding into the joint space and its compile
function into the evaluator, and everything downstream is generic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = [
    "DEFAULT_WORKLOAD",
    "Workload",
    "WorkloadError",
    "register_workload",
    "get_workload",
    "list_workloads",
    "default_workload",
]

#: The workload every spec without an explicit ``workload`` field
#: resolves to — the paper's original CNN-cell space.
DEFAULT_WORKLOAD = "cnn-cell"

#: Prefix of learned-surrogate platform twins (mirrors
#: ``repro.hw.surrogate.SURROGATE_PREFIX``; duplicated rather than
#: imported so this module stays importable before ``repro.hw``).
_SURROGATE_PREFIX = "surrogate:"


class WorkloadError(ValueError):
    """A workload name could not be resolved, or a recipe is invalid."""


@dataclass(frozen=True)
class Workload:
    """One registered model family.

    ``encoding_factory(bundle)`` builds the controller encoding; table-
    backed workloads read it off the enumerated-space bundle when one
    is given (so study resumption reuses the bundle's exact space) and
    fall back to their default encoding otherwise.
    """

    name: str
    description: str
    encoding_factory: Callable
    compile: Callable
    default_accuracy_source: str
    accuracy_sources: tuple[str, ...]
    platforms: tuple[str, ...]
    is_reference: bool = False

    def encoding(self, bundle=None):
        """The model-space encoding (from ``bundle`` when applicable)."""
        return self.encoding_factory(bundle)

    def supports_platform(self, platform_name: str) -> bool:
        """Whether a platform's latency model understands this IR.

        A learned surrogate twin schedules exactly the IRs its base
        platform does, so ``surrogate:<name>`` matches iff ``<name>``
        does.
        """
        if platform_name.startswith(_SURROGATE_PREFIX):
            platform_name = platform_name[len(_SURROGATE_PREFIX):]
        return platform_name in self.platforms

    def describe(self) -> dict:
        """JSON-ready summary (mirrors ``HardwarePlatform.describe``)."""
        encoding = self.encoding()
        return {
            "name": self.name,
            "description": self.description,
            "num_tokens": encoding.num_tokens,
            "vocab_sizes": list(encoding.vocab_sizes),
            "space_size": encoding.space_size,
            "default_accuracy_source": self.default_accuracy_source,
            "accuracy_sources": list(self.accuracy_sources),
            "platforms": list(self.platforms),
            "is_reference": self.is_reference,
        }


_WORKLOADS: dict[str, Workload] = {}


def register_workload(
    name: str,
    description: str,
    encoding_factory: Callable,
    compile: Callable,
    default_accuracy_source: str,
    accuracy_sources: tuple[str, ...],
    platforms: tuple[str, ...],
    is_reference: bool = False,
    overwrite: bool = False,
) -> Workload:
    """Register a workload under ``name``."""
    if name in _WORKLOADS and not overwrite:
        raise WorkloadError(f"workload {name!r} is already registered")
    if default_accuracy_source not in accuracy_sources:
        raise WorkloadError(
            f"workload {name!r}: default accuracy source "
            f"{default_accuracy_source!r} is not among its sources "
            f"{sorted(accuracy_sources)}"
        )
    if not platforms:
        raise WorkloadError(f"workload {name!r} names no compatible platform")
    workload = Workload(
        name=name,
        description=description,
        encoding_factory=encoding_factory,
        compile=compile,
        default_accuracy_source=default_accuracy_source,
        accuracy_sources=tuple(accuracy_sources),
        platforms=tuple(platforms),
        is_reference=is_reference,
    )
    _WORKLOADS[name] = workload
    return workload


def list_workloads() -> list[str]:
    """Registered workload names, sorted."""
    return sorted(_WORKLOADS)


def get_workload(name: str) -> Workload:
    if name not in _WORKLOADS:
        raise WorkloadError(
            f"unknown workload {name!r}; registered: "
            f"{', '.join(list_workloads())}"
        )
    return _WORKLOADS[name]


def default_workload() -> Workload:
    """The reference ``cnn-cell`` workload."""
    return get_workload(DEFAULT_WORKLOAD)
