"""Pluggable workloads: named model families for the codesign loop.

See :mod:`repro.workloads.registry` for the contract.  Importing this
package registers the built-in workloads (``cnn-cell``,
``transformer``) and their accuracy sources.
"""

from repro.workloads.registry import (
    DEFAULT_WORKLOAD,
    Workload,
    WorkloadError,
    default_workload,
    get_workload,
    list_workloads,
    register_workload,
)

# Built-in workload registrations (import order: reference first).
from repro.workloads.cnn_cell import CNN_CELL
from repro.workloads.transformer import (
    TRANSFORMER,
    TransformerEncoding,
    TransformerSpec,
    analytic_accuracy,
    compile_transformer_ops,
)

__all__ = [
    "DEFAULT_WORKLOAD",
    "Workload",
    "WorkloadError",
    "default_workload",
    "get_workload",
    "list_workloads",
    "register_workload",
    "CNN_CELL",
    "TRANSFORMER",
    "TransformerEncoding",
    "TransformerSpec",
    "analytic_accuracy",
    "compile_transformer_ops",
]
