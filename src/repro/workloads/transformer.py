"""The ``transformer`` workload: parametric encoder stacks as GEMM IRs.

The model half is a five-token parametric family (depth / heads /
hidden / FFN ratio / sequence length over
:data:`repro.hw.gemm.TRANSFORMER_PARAMETER_VALUES`), lowered by
:func:`repro.hw.gemm.transformer_gemm_ir` to the flat GEMM sequence
tiled-matmul platforms (``charm-u50``) schedule.  The spec and
encoding duck-type :class:`repro.nasbench.ModelSpec` and
:class:`repro.nasbench.CellEncoding`, so the whole search stack —
joint space, evaluator memos, searchers, archives — runs unchanged.

Accuracy comes from the ``transformer-analytic`` source: a
deterministic closed-form score with the qualitative shape of a GLUE
curve (saturating in parameter count, mildly rewarding context length,
penalising extreme head widths).  Like :class:`Cifar10Surrogate` for
open-space CNN runs, it is a stand-in for a trained predictor — the
point of this workload is exercising the *hardware* side past
enumerable spaces, not transformer accuracy modelling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Sequence

import numpy as np

from repro.core.evaluator import (
    AccuracySourceError,
    CodesignEvaluator,
    register_accuracy_source,
)
from repro.hw.gemm import (
    TRANSFORMER_PARAMETER_VALUES,
    GemmIR,
    transformer_gemm_ir,
)
from repro.nasbench.model_spec import InvalidSpecError
from repro.workloads.registry import register_workload

__all__ = [
    "TransformerSpec",
    "TransformerEncoding",
    "compile_transformer_ops",
    "analytic_accuracy",
    "TRANSFORMER",
]

#: Token order — one controller token per entry.
PARAMETER_NAMES: tuple[str, ...] = tuple(TRANSFORMER_PARAMETER_VALUES)


@dataclass(frozen=True)
class TransformerSpec:
    """An immutable transformer configuration (duck-typed ModelSpec).

    ``matrix``/``ops``/``valid``/``spec_hash`` mirror the surface the
    evaluator and search loop consume: ``matrix`` is a 1x5 int64 array
    of the raw parameters (its ``tobytes()`` keys the batch-path
    content memo), ``ops`` a constant kind tag, and the hash a
    readable token — transformer configs have no isomorphism to
    canonicalize away.
    """

    depth: int
    heads: int
    hidden: int
    ffn_ratio: int
    seq_len: int
    matrix: np.ndarray = field(init=False, repr=False, compare=False)
    ops: tuple[str, ...] = field(init=False, repr=False, compare=False)
    valid: bool = field(init=False)
    invalid_reason: str = field(init=False, default="")

    def __post_init__(self) -> None:
        reason = ""
        for name in PARAMETER_NAMES:
            value = getattr(self, name)
            if value not in TRANSFORMER_PARAMETER_VALUES[name]:
                reason = (
                    f"{name}={value} not in domain "
                    f"{TRANSFORMER_PARAMETER_VALUES[name]}"
                )
                break
        if not reason and self.hidden % self.heads != 0:
            reason = (
                f"hidden ({self.hidden}) not divisible by heads ({self.heads})"
            )
        object.__setattr__(self, "valid", not reason)
        object.__setattr__(self, "invalid_reason", reason)
        object.__setattr__(
            self,
            "matrix",
            np.asarray(
                [[getattr(self, name) for name in PARAMETER_NAMES]],
                dtype=np.int64,
            ),
        )
        object.__setattr__(self, "ops", ("transformer",))

    # ------------------------------------------------------------------
    @property
    def params(self) -> dict[str, int]:
        """The raw parameters, keyword-ready for the IR factory."""
        return {name: getattr(self, name) for name in PARAMETER_NAMES}

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads

    def spec_hash(self) -> str:
        if not self.valid:
            raise InvalidSpecError(
                f"invalid spec has no hash: {self.invalid_reason}"
            )
        return (
            f"tfm-d{self.depth}-h{self.heads}-w{self.hidden}"
            f"-f{self.ffn_ratio}-s{self.seq_len}"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {"workload": "transformer", **self.params}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TransformerSpec":
        return cls(**{name: int(data[name]) for name in PARAMETER_NAMES})

    def __str__(self) -> str:
        if not self.valid:
            return f"TransformerSpec(invalid: {self.invalid_reason})"
        return f"TransformerSpec({self.spec_hash()})"


@dataclass(frozen=True)
class TransformerEncoding:
    """Bijection between controller actions and transformer specs.

    Five categorical tokens, one per parameter in declaration order.
    Like :class:`repro.nasbench.CellEncoding`, decoding never fails on
    in-range actions: combinations violating ``hidden % heads == 0``
    come back with ``valid == False`` and earn the punishment reward.
    """

    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return PARAMETER_NAMES

    @property
    def num_tokens(self) -> int:
        return len(PARAMETER_NAMES)

    @property
    def vocab_sizes(self) -> list[int]:
        return [len(TRANSFORMER_PARAMETER_VALUES[n]) for n in PARAMETER_NAMES]

    @property
    def space_size(self) -> int:
        """Raw (pre-validity) size of the action space."""
        size = 1
        for v in self.vocab_sizes:
            size *= v
        return size

    # ------------------------------------------------------------------
    def decode(self, actions: Sequence[int]) -> TransformerSpec:
        actions = list(actions)
        if len(actions) != self.num_tokens:
            raise ValueError(
                f"expected {self.num_tokens} actions, got {len(actions)}"
            )
        for a, vocab in zip(actions, self.vocab_sizes):
            if not 0 <= a < vocab:
                raise ValueError(f"action {a} out of range for vocab {vocab}")
        return TransformerSpec(
            **{
                name: TRANSFORMER_PARAMETER_VALUES[name][a]
                for name, a in zip(PARAMETER_NAMES, actions)
            }
        )

    def encode(self, spec: TransformerSpec) -> list[int]:
        if not spec.valid:
            raise ValueError("cannot encode an invalid spec")
        return [
            TRANSFORMER_PARAMETER_VALUES[name].index(getattr(spec, name))
            for name in PARAMETER_NAMES
        ]

    def random_actions(self, rng: np.random.Generator) -> list[int]:
        return [int(rng.integers(0, v)) for v in self.vocab_sizes]


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

@lru_cache(maxsize=None)
def _compiled_ir(depth: int, heads: int, hidden: int,
                 ffn_ratio: int, seq_len: int) -> GemmIR:
    return transformer_gemm_ir(depth, heads, hidden, ffn_ratio, seq_len)


def compile_transformer_ops(spec: TransformerSpec, skeleton=None) -> GemmIR:
    """Lower a spec to its GEMM IR (memoized on the raw parameters).

    Signature-compatible with
    :func:`repro.nasbench.compile.compile_cell_ops` so the evaluator
    can hold either behind one ``compile_fn`` slot; ``skeleton`` is a
    CNN-macro concept and is ignored here.
    """
    if not spec.valid:
        raise InvalidSpecError(
            f"cannot compile invalid spec: {spec.invalid_reason}"
        )
    return _compiled_ir(
        spec.depth, spec.heads, spec.hidden, spec.ffn_ratio, spec.seq_len
    )


# ---------------------------------------------------------------------------
# The transformer-analytic accuracy source
# ---------------------------------------------------------------------------

#: Saturation anchors of the analytic score (percent accuracy).
_FLOOR = 62.0
_CEILING = 91.0
#: Weight count (millions) of the largest canonical point (bert-base);
#: normalizes the capacity term to ~1.0 there.
_CAPACITY_NORM_M = 12 * 768 * 768 * 12 / 1e6


def analytic_accuracy(spec: TransformerSpec) -> float | None:
    """Deterministic GLUE-shaped score of a transformer spec.

    Saturating in parameter count, log-linear in context length up to
    512 tokens, and penalized quadratically (in log space) for head
    widths far from 64 — enough structure that accuracy genuinely
    trades against hardware cost during search.
    """
    if not spec.valid:
        return None
    weights_m = (
        spec.depth * spec.hidden * spec.hidden * (4 + 2 * spec.ffn_ratio)
    ) / 1e6
    capacity = math.log1p(weights_m) / math.log1p(_CAPACITY_NORM_M)
    context = math.log2(spec.seq_len / 64.0) / 3.0
    balance = 1.0 / (1.0 + 0.08 * math.log2(spec.head_dim / 64.0) ** 2)
    quality = (0.8 * capacity + 0.2 * context) * balance
    return _FLOOR + (_CEILING - _FLOOR) * (1.0 - math.exp(-2.5 * quality))


def _build_transformer_analytic(
    reward_config, params, bundle=None, store=None, platform=None
):
    if params:
        raise AccuracySourceError(
            "accuracy source 'transformer-analytic' takes no parameters; "
            f"got {sorted(params)}"
        )
    evaluator = CodesignEvaluator(
        analytic_accuracy, reward_config, platform=platform
    )
    evaluator.compile_fn = compile_transformer_ops
    evaluator.source_info = {"source": "transformer-analytic"}
    return evaluator


register_accuracy_source(
    "transformer-analytic", _build_transformer_analytic
)


TRANSFORMER = register_workload(
    "transformer",
    description=(
        "parametric BERT-style encoder stacks lowered to GEMM sequences "
        "for tiled-matmul platforms (pairs with charm-u50; analytic "
        "accuracy)"
    ),
    encoding_factory=lambda bundle=None: TransformerEncoding(),
    compile=compile_transformer_ops,
    default_accuracy_source="transformer-analytic",
    accuracy_sources=("transformer-analytic",),
    platforms=("charm-u50",),
)
