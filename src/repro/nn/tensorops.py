"""Low-level tensor helpers for the numpy NN stack (NCHW layout)."""

from __future__ import annotations

import numpy as np

__all__ = ["im2col", "col2im", "pad_same", "unpad_same"]


def pad_same(x: np.ndarray, kernel: int, value: float = 0.0) -> np.ndarray:
    """Zero-pad H/W so a stride-1 ``kernel`` conv preserves size."""
    p = kernel // 2
    if p == 0:
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (p, p), (p, p)), mode="constant", constant_values=value
    )


def unpad_same(dx: np.ndarray, kernel: int) -> np.ndarray:
    """Inverse of :func:`pad_same` for gradients."""
    p = kernel // 2
    if p == 0:
        return dx
    return dx[:, :, p:-p, p:-p]


def im2col(x: np.ndarray, kernel: int, stride: int = 1) -> np.ndarray:
    """Unfold padded ``x`` (B, C, H, W) into (B, C*k*k, OH*OW) columns."""
    b, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    # windows: (B, C, H-k+1, W-k+1, k, k) -> strided view
    windows = windows[:, :, ::stride, ::stride, :, :]
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(b, c * kernel * kernel, oh * ow)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
) -> np.ndarray:
    """Fold (B, C*k*k, OH*OW) columns back into gradients of ``x``."""
    b, c, h, w = x_shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    dx = np.zeros(x_shape, dtype=cols.dtype)
    cols = cols.reshape(b, c, kernel, kernel, oh, ow)
    for ki in range(kernel):
        for kj in range(kernel):
            dx[:, :, ki: ki + stride * oh: stride, kj: kj + stride * ow: stride] += (
                cols[:, :, ki, kj]
            )
    return dx
