"""Synthetic CIFAR-like dataset (the offline stand-in for CIFAR).

Real CIFAR images are unavailable offline, so examples/tests exercise
the genuine training pipeline on a learnable synthetic classification
problem: each class is a smooth random pattern (a sum of low-frequency
2D sinusoids) and samples are noisy draws around their class pattern.
A small CNN separates the classes after a few epochs, which is all the
training-substrate tests need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["ImageDataset", "synthetic_cifar"]


@dataclass
class ImageDataset:
    """A labelled image set, NCHW float32 in roughly [-1, 1]."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if len(self.images) != len(self.labels):
            raise ValueError("images and labels must align")

    def __len__(self) -> int:
        return len(self.images)

    def batches(self, batch_size: int, rng: np.random.Generator | None = None):
        """Yield (images, labels) minibatches, shuffled when rng given."""
        index = np.arange(len(self))
        if rng is not None:
            rng.shuffle(index)
        for start in range(0, len(self), batch_size):
            chunk = index[start: start + batch_size]
            yield self.images[chunk], self.labels[chunk]


def _class_patterns(
    n_classes: int, channels: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    yy, xx = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
    patterns = np.zeros((n_classes, channels, size, size))
    for cls in range(n_classes):
        for ch in range(channels):
            total = np.zeros((size, size))
            for _ in range(3):
                fy, fx = rng.uniform(0.5, 2.5, size=2)
                phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
                total += np.sin(2 * np.pi * fy * yy / size + phase_y) * np.cos(
                    2 * np.pi * fx * xx / size + phase_x
                )
            patterns[cls, ch] = total / 3.0
    return patterns


def synthetic_cifar(
    n_train: int = 512,
    n_test: int = 128,
    n_classes: int = 10,
    size: int = 32,
    channels: int = 3,
    noise_std: float = 0.35,
    seed: int | np.random.Generator | None = None,
) -> tuple[ImageDataset, ImageDataset]:
    """Build (train, test) splits of the synthetic problem."""
    rng = make_rng(seed)
    patterns = _class_patterns(n_classes, channels, size, rng)

    def make(n: int) -> ImageDataset:
        labels = rng.integers(0, n_classes, size=n)
        images = patterns[labels] + rng.normal(0, noise_std, size=(n, channels, size, size))
        return ImageDataset(images.astype(np.float64), labels.astype(np.int64))

    return make(n_train), make(n_test)
