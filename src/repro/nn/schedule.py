"""Learning-rate schedules (the paper trains with cosine decay)."""

from __future__ import annotations

import numpy as np

__all__ = ["CosineDecay", "ConstantLR"]


class ConstantLR:
    """Fixed learning rate."""

    def __init__(self, lr: float) -> None:
        self.lr = lr

    def __call__(self, step: int) -> float:
        return self.lr


class CosineDecay:
    """Cosine annealing from ``initial_lr`` to ``final_lr``."""

    def __init__(self, initial_lr: float, total_steps: int, final_lr: float = 0.0) -> None:
        if total_steps < 1:
            raise ValueError("total_steps must be positive")
        self.initial_lr = initial_lr
        self.final_lr = final_lr
        self.total_steps = total_steps

    def __call__(self, step: int) -> float:
        progress = min(max(step, 0), self.total_steps) / self.total_steps
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.final_lr + (self.initial_lr - self.final_lr) * cosine
