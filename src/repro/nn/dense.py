"""Fully connected classifier head."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer

__all__ = ["Dense"]


class Dense(Layer):
    """Affine layer: (B, in) -> (B, out)."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        bound = np.sqrt(1.0 / in_features)
        self.params = {
            "weight": rng.uniform(-bound, bound, size=(in_features, out_features)),
            "bias": np.zeros(out_features),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.params["weight"] + self.params["bias"]

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        self.grads["weight"] += self._x.T @ dout
        self.grads["bias"] += dout.sum(axis=0)
        return [dout @ self.params["weight"].T]
