"""Numpy NN substrate: layers, IR-driven networks, training loop."""

from repro.nn.augment import augment_batch
from repro.nn.builder import build_network
from repro.nn.conv import Conv2D
from repro.nn.data import ImageDataset, synthetic_cifar
from repro.nn.dense import Dense
from repro.nn.layers import Add, Concat, Flatten, GlobalAvgPool, Layer, ReLU, Truncate
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.network import IRNetwork
from repro.nn.norm import BatchNorm2D
from repro.nn.optim import SGDMomentum
from repro.nn.pool import MaxPool2x2, MaxPool3x3Same
from repro.nn.schedule import ConstantLR, CosineDecay
from repro.nn.trainer import TrainConfig, Trainer, TrainHistory

__all__ = [
    "augment_batch",
    "build_network",
    "Conv2D",
    "ImageDataset",
    "synthetic_cifar",
    "Dense",
    "Add",
    "Concat",
    "Flatten",
    "GlobalAvgPool",
    "Layer",
    "ReLU",
    "Truncate",
    "SoftmaxCrossEntropy",
    "IRNetwork",
    "BatchNorm2D",
    "SGDMomentum",
    "MaxPool2x2",
    "MaxPool3x3Same",
    "ConstantLR",
    "CosineDecay",
    "TrainConfig",
    "Trainer",
    "TrainHistory",
]
