"""Layer base class and the simple point-wise layers."""

from __future__ import annotations

import numpy as np

__all__ = ["Layer", "ReLU", "Add", "Concat", "Truncate", "GlobalAvgPool", "Flatten"]


class Layer:
    """A differentiable node.

    ``forward`` consumes one array per dependency and caches whatever
    the backward pass needs; ``backward`` returns one gradient array
    per input, in the same order.  Parameters/gradients are dicts of
    numpy arrays; stateless layers leave them empty.
    """

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.training = True

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        raise NotImplementedError

    def zero_grads(self) -> None:
        for key in self.grads:
            self.grads[key][...] = 0.0

    def num_params(self) -> int:
        return sum(p.size for p in self.params.values())


class ReLU(Layer):
    """Rectified linear unit."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        return [dout * self._mask]


class Truncate(Layer):
    """Channel truncation (NASBench's free interior-edge projection)."""

    def __init__(self, channels: int) -> None:
        super().__init__()
        self.channels = channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] < self.channels:
            raise ValueError(
                f"cannot truncate {x.shape[1]} channels up to {self.channels}"
            )
        self._in_channels = x.shape[1]
        return x[:, : self.channels]

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        if self._in_channels == self.channels:
            return [dout]
        pad = np.zeros(
            (dout.shape[0], self._in_channels - self.channels, *dout.shape[2:]),
            dtype=dout.dtype,
        )
        return [np.concatenate([dout, pad], axis=1)]


class Add(Layer):
    """Element-wise sum with channel truncation of each input."""

    def __init__(self, channels: int) -> None:
        super().__init__()
        self.channels = channels

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        self._in_channels = [x.shape[1] for x in inputs]
        total = np.zeros_like(inputs[0][:, : self.channels])
        for x in inputs:
            total = total + x[:, : self.channels]
        return total

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        grads = []
        for c_in in self._in_channels:
            if c_in == self.channels:
                grads.append(dout)
            else:
                pad = np.zeros(
                    (dout.shape[0], c_in - self.channels, *dout.shape[2:]),
                    dtype=dout.dtype,
                )
                grads.append(np.concatenate([dout, pad], axis=1))
        return grads


class Concat(Layer):
    """Channel concatenation (the cell-output merge)."""

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        self._splits = [x.shape[1] for x in inputs]
        return np.concatenate(inputs, axis=1)

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        grads = []
        start = 0
        for c in self._splits:
            grads.append(dout[:, start: start + c])
            start += c
        return grads


class GlobalAvgPool(Layer):
    """Mean over the spatial dimensions: (B, C, H, W) -> (B, C)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        b, c, h, w = self._shape
        dx = np.broadcast_to(dout[:, :, None, None], self._shape) / (h * w)
        return [np.ascontiguousarray(dx)]


class Flatten(Layer):
    """(B, ...) -> (B, features)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        return [dout.reshape(self._shape)]
