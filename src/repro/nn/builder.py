"""Build a runnable numpy network from a cell spec + skeleton."""

from __future__ import annotations

import numpy as np

from repro.nasbench.compile import compile_network
from repro.nasbench.model_spec import ModelSpec
from repro.nasbench.skeleton import SkeletonConfig
from repro.nn.network import IRNetwork
from repro.utils.rng import make_rng

__all__ = ["build_network"]


def build_network(
    spec: ModelSpec,
    skeleton: SkeletonConfig,
    seed: int | np.random.Generator | None = None,
) -> IRNetwork:
    """Instantiate the exact network the hardware model schedules.

    Raises :class:`repro.nasbench.InvalidSpecError` for invalid specs,
    mirroring the evaluator's treatment of unbuildable cells.
    """
    ir = compile_network(spec, skeleton)
    return IRNetwork(ir, make_rng(seed))
