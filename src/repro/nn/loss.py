"""Softmax cross-entropy loss."""

from __future__ import annotations

import numpy as np

from repro.rl.functional import log_softmax, softmax

__all__ = ["SoftmaxCrossEntropy"]


class SoftmaxCrossEntropy:
    """Mean cross-entropy over a batch of integer labels."""

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        self._probs = softmax(logits, axis=1)
        self._labels = labels
        log_probs = log_softmax(logits, axis=1)
        return float(-log_probs[np.arange(len(labels)), labels].mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        grad = self._probs.copy()
        grad[np.arange(len(self._labels)), self._labels] -= 1.0
        return grad / len(self._labels)

    @staticmethod
    def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
        return float((logits.argmax(axis=1) == labels).mean())
