"""Standard CIFAR augmentation: pad + random crop, horizontal flip."""

from __future__ import annotations

import numpy as np

__all__ = ["augment_batch"]


def augment_batch(
    images: np.ndarray,
    rng: np.random.Generator,
    pad: int = 4,
    flip_probability: float = 0.5,
) -> np.ndarray:
    """Paper Section IV-A: padding, random crop and flipping.

    ``images`` is (B, C, H, W); returns a new array.
    """
    b, c, h, w = images.shape
    padded = np.pad(
        images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
    )
    out = np.empty_like(images)
    offsets_y = rng.integers(0, 2 * pad + 1, size=b)
    offsets_x = rng.integers(0, 2 * pad + 1, size=b)
    flips = rng.random(b) < flip_probability
    for i in range(b):
        crop = padded[i, :, offsets_y[i]: offsets_y[i] + h, offsets_x[i]: offsets_x[i] + w]
        out[i] = crop[:, :, ::-1] if flips[i] else crop
    return out
