"""2D convolution via im2col (NCHW, 'same' padding, no bias).

Biases are omitted because every convolution in the NASBench cell is
followed by batch normalization, which absorbs them — matching the
parameter count of :attr:`repro.nasbench.CompiledOp.params`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer
from repro.nn.tensorops import col2im, im2col, pad_same, unpad_same

__all__ = ["Conv2D"]


class Conv2D(Layer):
    """Stride-1 'same' convolution (the only kind NASBench cells use)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if kernel % 2 == 0:
            raise ValueError("Conv2D supports odd kernels only (same padding)")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        fan_in = in_channels * kernel * kernel
        # He initialization: the cells are ReLU networks.
        std = np.sqrt(2.0 / fan_in)
        self.params = {
            "weight": rng.normal(0.0, std, size=(out_channels, fan_in)),
        }
        self.grads = {"weight": np.zeros_like(self.params["weight"])}

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {x.shape[1]}"
            )
        b, _, h, w = x.shape
        x_padded = pad_same(x, self.kernel)
        self._x_padded_shape = x_padded.shape
        cols = im2col(x_padded, self.kernel)
        self._cols = cols
        out = np.einsum("fk,bkp->bfp", self.params["weight"], cols)
        return out.reshape(b, self.out_channels, h, w)

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        b, f, h, w = dout.shape
        dout_flat = dout.reshape(b, f, h * w)
        self.grads["weight"] += np.einsum("bfp,bkp->fk", dout_flat, self._cols)
        dcols = np.einsum("fk,bfp->bkp", self.params["weight"], dout_flat)
        dx_padded = col2im(dcols, self._x_padded_shape, self.kernel)
        return [unpad_same(dx_padded, self.kernel)]
