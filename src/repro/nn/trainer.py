"""Training loop for IR networks (the paper's per-sample inner loop).

Matches Section IV-A's recipe in miniature: SGD with momentum, initial
learning rate 0.1 with cosine decay, weight decay 1e-4, and standard
augmentation — scaled down to synthetic data and small skeletons so a
full train fits in seconds of CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.augment import augment_batch
from repro.nn.data import ImageDataset
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.network import IRNetwork
from repro.nn.optim import SGDMomentum
from repro.nn.schedule import ConstantLR, CosineDecay
from repro.utils.rng import make_rng

__all__ = ["TrainConfig", "TrainHistory", "Trainer"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters mirroring the paper's recipe (Section IV-A)."""

    epochs: int = 4
    batch_size: int = 32
    learning_rate: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 1e-4
    cosine_decay: bool = True
    augment: bool = True


@dataclass
class TrainHistory:
    """Per-epoch statistics."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)


class Trainer:
    """Train an :class:`IRNetwork` on an :class:`ImageDataset`."""

    def __init__(
        self,
        network: IRNetwork,
        config: TrainConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.network = network
        self.config = config or TrainConfig()
        self.rng = make_rng(seed)
        self.loss = SoftmaxCrossEntropy()
        self.optimizer = SGDMomentum(
            network,
            lr=self.config.learning_rate,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )

    def fit(self, train: ImageDataset, test: ImageDataset | None = None) -> TrainHistory:
        cfg = self.config
        steps_per_epoch = max(1, (len(train) + cfg.batch_size - 1) // cfg.batch_size)
        schedule = (
            CosineDecay(cfg.learning_rate, cfg.epochs * steps_per_epoch)
            if cfg.cosine_decay
            else ConstantLR(cfg.learning_rate)
        )
        history = TrainHistory()
        step = 0
        for _ in range(cfg.epochs):
            self.network.set_training(True)
            losses = []
            accuracies = []
            for images, labels in train.batches(cfg.batch_size, self.rng):
                if cfg.augment:
                    images = augment_batch(images, self.rng)
                self.optimizer.lr = schedule(step)
                self.optimizer.zero_grads()
                logits = self.network.forward(images)
                losses.append(self.loss.forward(logits, labels))
                accuracies.append(self.loss.accuracy(logits, labels))
                self.network.backward(self.loss.backward())
                self.optimizer.step()
                step += 1
            history.train_loss.append(float(np.mean(losses)))
            history.train_accuracy.append(float(np.mean(accuracies)))
            if test is not None:
                history.test_accuracy.append(self.evaluate(test))
        return history

    def evaluate(self, dataset: ImageDataset, batch_size: int = 64) -> float:
        """Accuracy (fraction) on ``dataset`` in evaluation mode."""
        self.network.set_training(False)
        correct = 0
        for images, labels in dataset.batches(batch_size):
            logits = self.network.forward(images)
            correct += int((logits.argmax(axis=1) == labels).sum())
        self.network.set_training(True)
        return correct / len(dataset)
