"""Batch normalization over (B, H, W) for NCHW feature maps."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer

__all__ = ["BatchNorm2D"]


class BatchNorm2D(Layer):
    """Standard batch norm with running statistics for evaluation."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.params = {
            "gamma": np.ones(channels),
            "beta": np.zeros(channels),
        }
        self.grads = {
            "gamma": np.zeros(channels),
            "beta": np.zeros(channels),
        }
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {x.shape[1]}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean = self.running_mean
            var = self.running_var
        self._x_hat = (x - mean[None, :, None, None]) / np.sqrt(
            var[None, :, None, None] + self.eps
        )
        self._var = var
        self._n = x.shape[0] * x.shape[2] * x.shape[3]
        return (
            self.params["gamma"][None, :, None, None] * self._x_hat
            + self.params["beta"][None, :, None, None]
        )

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        gamma = self.params["gamma"]
        x_hat = self._x_hat
        self.grads["gamma"] += (dout * x_hat).sum(axis=(0, 2, 3))
        self.grads["beta"] += dout.sum(axis=(0, 2, 3))
        dx_hat = dout * gamma[None, :, None, None]
        if not self.training:
            dx = dx_hat / np.sqrt(self._var[None, :, None, None] + self.eps)
            return [dx]
        n = self._n
        inv_std = 1.0 / np.sqrt(self._var[None, :, None, None] + self.eps)
        sum_dx_hat = dx_hat.sum(axis=(0, 2, 3), keepdims=True)
        sum_dx_hat_xhat = (dx_hat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        dx = (inv_std / n) * (n * dx_hat - sum_dx_hat - x_hat * sum_dx_hat_xhat)
        return [dx]
