"""Max pooling: 3x3 stride-1 'same' (cell op) and 2x2 stride-2
(skeleton downsample)."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer
from repro.nn.tensorops import pad_same

__all__ = ["MaxPool3x3Same", "MaxPool2x2"]


class MaxPool3x3Same(Layer):
    """3x3, stride 1, 'same' padding — the NASBench ``maxpool3x3`` op."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        padded = pad_same(x, 3, value=-np.inf)
        windows = np.lib.stride_tricks.sliding_window_view(padded, (3, 3), axis=(2, 3))
        # windows: (B, C, H, W, 3, 3)
        flat = windows.reshape(*windows.shape[:4], 9)
        self._argmax = flat.argmax(axis=-1)
        self._x_shape = x.shape
        return flat.max(axis=-1)

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        b, c, h, w = self._x_shape
        dx_padded = np.zeros((b, c, h + 2, w + 2), dtype=dout.dtype)
        ki, kj = np.divmod(self._argmax, 3)
        bi, ci, hi, wi = np.indices(dout.shape, sparse=False)
        np.add.at(dx_padded, (bi, ci, hi + ki, wi + kj), dout)
        return [dx_padded[:, :, 1:-1, 1:-1]]


class MaxPool2x2(Layer):
    """2x2, stride 2 — the skeleton's downsample between stacks."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, c, h, w = x.shape
        if h % 2 or w % 2:
            raise ValueError("MaxPool2x2 needs even spatial dimensions")
        blocks = x.reshape(b, c, h // 2, 2, w // 2, 2).transpose(0, 1, 2, 4, 3, 5)
        flat = blocks.reshape(b, c, h // 2, w // 2, 4)
        self._argmax = flat.argmax(axis=-1)
        self._x_shape = x.shape
        return flat.max(axis=-1)

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        b, c, h, w = self._x_shape
        dx = np.zeros((b, c, h // 2, w // 2, 4), dtype=dout.dtype)
        bi, ci, hi, wi = np.indices(dout.shape, sparse=False)
        dx[bi, ci, hi, wi, self._argmax] = dout
        dx = dx.reshape(b, c, h // 2, w // 2, 2, 2).transpose(0, 1, 2, 4, 3, 5)
        return [dx.reshape(b, c, h, w)]
