"""A runnable network built directly from a compiled :class:`NetworkIR`.

Each IR op becomes a node — a small pipeline of layers (e.g. truncate ->
conv -> batch-norm -> relu).  The network therefore executes *exactly*
the graph the hardware model schedules, with NASBench's truncation /
projection / add / concat semantics.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nasbench import ops as O
from repro.nasbench.compile import NetworkIR
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.layers import Add, Concat, GlobalAvgPool, Layer, ReLU, Truncate
from repro.nn.norm import BatchNorm2D
from repro.nn.pool import MaxPool2x2, MaxPool3x3Same

__all__ = ["IRNetwork"]


class _Node:
    """One IR op: an ordered pipeline of layers."""

    def __init__(self, layers: list[Layer], multi_input: bool) -> None:
        self.layers = layers
        self.multi_input = multi_input

    def forward(self, inputs: list[np.ndarray]) -> np.ndarray:
        if self.multi_input:
            out = self.layers[0].forward(*inputs)
            rest = self.layers[1:]
        else:
            out = inputs[0]
            rest = self.layers
        for layer in rest:
            out = layer.forward(out)
        return out

    def backward(self, dout: np.ndarray) -> list[np.ndarray]:
        for layer in reversed(self.layers[1:] if self.multi_input else self.layers):
            dout = layer.backward(dout)[0]
        if self.multi_input:
            return self.layers[0].backward(dout)
        return [dout]


def _conv_block(in_ch: int, out_ch: int, kernel: int, rng: np.random.Generator) -> list[Layer]:
    return [
        Truncate(in_ch),
        Conv2D(in_ch, out_ch, kernel, rng),
        BatchNorm2D(out_ch),
        ReLU(),
    ]


class IRNetwork:
    """Forward/backward over the IR's DAG."""

    def __init__(self, ir: NetworkIR, rng: np.random.Generator) -> None:
        self.ir = ir
        self.nodes: list[_Node] = []
        for op in ir.ops:
            if op.kind in (O.KIND_STEM, O.KIND_CONV3X3):
                node = _Node(_conv_block(op.in_channels, op.out_channels, 3, rng), False)
            elif op.kind in (O.KIND_CONV1X1, O.KIND_PROJ1X1):
                node = _Node(_conv_block(op.in_channels, op.out_channels, 1, rng), False)
            elif op.kind == O.KIND_MAXPOOL3X3:
                node = _Node([Truncate(op.in_channels), MaxPool3x3Same()], False)
            elif op.kind == O.KIND_DOWNSAMPLE:
                node = _Node([MaxPool2x2()], False)
            elif op.kind == O.KIND_ADD:
                node = _Node([Add(op.in_channels)], True)
            elif op.kind == O.KIND_CONCAT:
                node = _Node([Concat()], True)
            elif op.kind == O.KIND_GAP:
                node = _Node([GlobalAvgPool()], False)
            elif op.kind == O.KIND_DENSE:
                node = _Node([Dense(op.in_channels, op.out_channels, rng)], False)
            else:  # pragma: no cover - compile emits only known kinds
                raise ValueError(f"unknown op kind {op.kind}")
            self.nodes.append(node)

    # ------------------------------------------------------------------
    def set_training(self, training: bool) -> None:
        for node in self.nodes:
            for layer in node.layers:
                layer.training = training

    def layers(self) -> Iterator[Layer]:
        for node in self.nodes:
            yield from node.layers

    def num_params(self) -> int:
        return sum(layer.num_params() for layer in self.layers())

    def zero_grads(self) -> None:
        for layer in self.layers():
            layer.zero_grads()

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the network; ``x`` is (B, C, H, W); returns logits."""
        outputs: list[np.ndarray | None] = [None] * len(self.nodes)
        for op, node in zip(self.ir.ops, self.nodes):
            inputs = [outputs[d] for d in op.deps] if op.deps else [x]
            outputs[op.index] = node.forward(inputs)  # type: ignore[arg-type]
        self._num_ops = len(self.nodes)
        return outputs[-1]  # type: ignore[return-value]

    def backward(self, dlogits: np.ndarray) -> np.ndarray:
        """Backprop from the classifier; returns grad w.r.t. the input."""
        douts: dict[int, np.ndarray] = {len(self.nodes) - 1: dlogits}
        dinput: np.ndarray | None = None
        for op, node in zip(reversed(self.ir.ops), reversed(self.nodes)):
            dout = douts.pop(op.index, None)
            if dout is None:
                continue
            dins = node.backward(dout)
            if op.deps:
                for dep, din in zip(op.deps, dins):
                    if dep in douts:
                        douts[dep] = douts[dep] + din
                    else:
                        douts[dep] = din
            else:
                dinput = dins[0] if dinput is None else dinput + dins[0]
        return dinput  # type: ignore[return-value]
