"""SGD with momentum and decoupled weight decay for the NN stack."""

from __future__ import annotations

import numpy as np

from repro.nn.network import IRNetwork

__all__ = ["SGDMomentum"]


class SGDMomentum:
    """The paper's training optimizer: SGD + momentum + weight decay.

    Weight decay is applied to convolution/dense weights only (not to
    batch-norm scales/shifts or biases), the standard convention.
    """

    def __init__(
        self,
        network: IRNetwork,
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.network = network
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, dict[str, np.ndarray]] = {}

    def step(self) -> None:
        """Apply one update from accumulated gradients."""
        for layer_id, layer in enumerate(self.network.layers()):
            if not layer.params:
                continue
            vel = self._velocity.setdefault(layer_id, {})
            for key, param in layer.params.items():
                grad = layer.grads[key]
                if self.weight_decay and key == "weight":
                    grad = grad + self.weight_decay * param
                v = vel.get(key)
                if v is None:
                    v = np.zeros_like(param)
                v = self.momentum * v + grad
                vel[key] = v
                param -= self.lr * v

    def zero_grads(self) -> None:
        self.network.zero_grads()
