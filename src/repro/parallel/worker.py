"""External cluster worker: ``python -m repro.parallel.worker``.

Joins a ``backend="cluster"`` run from anywhere that can see the run's
state files — another terminal, another container, another machine
sharing the state directory.  The worker needs nothing but the
ledger path: the coordinating run pinned its full
:class:`~repro.core.study.StudySpec` into the ledger (``run_grid``'s
``ledger_context``), so the worker rebuilds the exact same job bag
with :func:`repro.core.study.build_study` and enters the lease
claim loop (:func:`repro.parallel.cluster.run_worker`).

Elasticity is free: start as many workers as you like, whenever you
like; kill any of them whenever you like.  Claimed-but-unfinished
tasks re-appear after their lease heartbeat goes stale and are resumed
from their last checkpoint by whoever claims them next.  Results are
bit-identical regardless of how many workers ran, joined, or died.

Typical session (see ``docs/reproducing.md`` for the full walkthrough)::

    # terminal 1 — the coordinating run
    repro study run fig5 --set execution.backend=cluster \\
        --set execution.workers=2 \\
        --set execution.ledger=state/fig5.ledger \\
        --set execution.cache=state/evals.sqlite

    # terminals 2..N — extra workers, local or remote
    repro worker --ledger state/fig5.ledger --cache state/evals.sqlite

Custom strategies / accuracy sources / platforms registered by plugin
modules must be importable here too: pass ``--import mymodule`` (the
same hook ``repro serve`` uses).
"""

from __future__ import annotations

import argparse
import importlib
import os
import socket
import sys
import time

from repro.parallel.cache import EvalCache
from repro.parallel.cluster import run_worker
from repro.parallel.ledger import RunLedger

__all__ = ["main"]


def _build_parser(prog: str | None = None) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog or "python -m repro.parallel.worker",
        description=(
            "Join a cluster-backend run: claim ledger-leased (job, repeat) "
            "tasks, run them, and record their results."
        ),
    )
    parser.add_argument(
        "--ledger",
        required=True,
        help="run-ledger file of the coordinating run (its task_leases "
        "table is the cluster's coordination substrate)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="shared EvalCache file (default: the pinned spec's "
        "execution.cache, if any)",
    )
    parser.add_argument(
        "--import",
        dest="imports",
        action="append",
        default=[],
        metavar="MODULE",
        help="import MODULE before building jobs (registers plugin "
        "strategies/sources/platforms/backends); repeatable",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="lease-owner name (default: <hostname>-<pid>)",
    )
    parser.add_argument(
        "--wait",
        type=float,
        default=0.0,
        help="seconds to wait for the coordinating run to pin its "
        "configuration before giving up (default: fail immediately)",
    )
    parser.add_argument(
        "--stale-after",
        type=float,
        default=10.0,
        help="seconds without a heartbeat before another worker's lease "
        "is considered abandoned (default: 10; match the coordinator)",
    )
    parser.add_argument(
        "--heartbeat-every",
        type=float,
        default=1.0,
        help="seconds between liveness stamps on a held lease (default: 1)",
    )
    parser.add_argument(
        "--poll-every",
        type=float,
        default=0.2,
        help="idle sleep between claim attempts (default: 0.2)",
    )
    parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after recording this many tasks (default: stay until "
        "the whole run is done)",
    )
    return parser


def _load_pinned_config(ledger: RunLedger, wait: float) -> dict:
    deadline = time.time() + max(wait, 0.0)
    while True:
        config = ledger.run_config()
        if config is not None:
            return config
        if time.time() >= deadline:
            raise SystemExit(
                f"ledger {ledger.path} has no pinned run configuration yet "
                "— start the coordinating run first (it pins the config in "
                "begin_run), or pass --wait SECONDS to poll for it"
            )
        time.sleep(0.5)


def main(argv: list[str] | None = None, prog: str | None = None) -> int:
    args = _build_parser(prog).parse_args(argv)
    for module in args.imports:
        importlib.import_module(module)

    # Imported late so `--import` plugins are registered first and a
    # bare `--help` stays fast.
    from repro.core.study import StudySpec, build_study

    ledger = RunLedger(args.ledger)
    config = _load_pinned_config(ledger, args.wait)
    context = config.get("context") or {}
    spec_dict = context.get("study_spec")
    if not spec_dict:
        raise SystemExit(
            f"ledger {ledger.path} was not created by a spec-driven run "
            "(no study_spec in its pinned context) — external workers "
            "rebuild their jobs from the pinned StudySpec, so the "
            "coordinating run must go through run_study / `repro study "
            "run` / `repro submit`"
        )
    spec = StudySpec.from_dict(spec_dict)

    cache_path = args.cache if args.cache is not None else spec.execution.cache
    store = EvalCache(cache_path) if cache_path is not None else None

    study = build_study(spec, store=store)
    pinned_labels = set(config.get("labels") or [])
    built_labels = {job.label for job in study.jobs}
    if not pinned_labels <= built_labels:
        missing = sorted(pinned_labels - built_labels)
        raise SystemExit(
            f"rebuilt study does not cover the pinned job labels (missing "
            f"{missing}) — registry drift or a missing --import plugin?"
        )

    worker_id = args.worker_id or f"{socket.gethostname()}-{os.getpid()}"
    print(
        f"worker {worker_id}: joining {ledger.path} "
        f"({len(pinned_labels)} jobs x {config['num_repeats']} repeats)",
        flush=True,
    )
    recorded = run_worker(
        study.jobs,
        ledger,
        # The pinned numbers are authoritative: they are what begin_run
        # validated, and a worker whose environment (e.g. REPRO_SCALE)
        # resolves the spec differently must not diverge from them.
        num_steps=config["num_steps"],
        num_repeats=config["num_repeats"],
        master_seed=config["master_seed"],
        batch_size=config["batch_size"],
        checkpoint_every=spec.execution.checkpoint_every,
        cache=store,
        worker_id=worker_id,
        stale_after=args.stale_after,
        heartbeat_every=args.heartbeat_every,
        poll_every=args.poll_every,
        max_tasks=args.max_tasks,
    )
    if store is not None:
        store.close()
    ledger.close()
    print(f"worker {worker_id}: recorded {recorded} task(s); run complete or "
          "max-tasks reached", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
