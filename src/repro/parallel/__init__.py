"""Parallel execution engine: process fan-out + persistent eval cache.

Two orthogonal pieces that together make the repeat experiments run at
hardware speed without changing a single result:

* :mod:`repro.parallel.pool` — :func:`parallel_map`, a fork-based
  process-pool map for bags of independent seeded tasks;
* :mod:`repro.parallel.cache` — :class:`EvalCache`, an on-disk store of
  ``(scenario, spec_hash, config_key) -> (accuracy, latency_s,
  area_mm2)`` that evaluators consult before computing, and that
  workers merge back into on completion;
* :mod:`repro.parallel.ledger` — :class:`RunLedger`, the crash-safe
  run ledger: completed (job, repeat) results and mid-search strategy
  checkpoints, so interrupted grids resume bit-identically instead of
  restarting from step 0.

The repeat harness (:func:`repro.search.runner.run_repeats` /
``run_grid``) wires them together behind a ``backend`` switch
(``"serial"`` / ``"process"``) and a ``ledger`` argument; under a
fixed master seed both backends are result-for-result identical at any
worker count, interrupted or not.
"""

from repro.parallel.cache import CacheEntry, EvalCache
from repro.parallel.ledger import LedgerError, MemoryCheckpoint, RunLedger
from repro.parallel.pool import parallel_map, resolve_workers

__all__ = [
    "CacheEntry",
    "EvalCache",
    "LedgerError",
    "MemoryCheckpoint",
    "RunLedger",
    "parallel_map",
    "resolve_workers",
]
