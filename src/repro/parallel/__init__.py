"""Parallel execution engine: process fan-out + persistent eval cache.

Two orthogonal pieces that together make the repeat experiments run at
hardware speed without changing a single result:

* :mod:`repro.parallel.pool` — the pluggable
  :class:`ExecutionBackend` protocol + registry (``serial`` /
  ``process`` built in) and :func:`parallel_map`, a fork-based
  process-pool map for bags of independent seeded tasks;
* :mod:`repro.parallel.cluster` — the ``cluster`` backend: worker
  processes (spawnable on other machines sharing a state dir)
  coordinating through ledger-leased tasks with heartbeats and
  stale-lease re-issue; ``python -m repro.parallel.worker`` joins one;
* :mod:`repro.parallel.cache` — :class:`EvalCache`, an on-disk store of
  ``(scenario, spec_hash, config_key) -> (accuracy, latency_s,
  area_mm2)`` that evaluators consult before computing, and that
  workers merge back into on completion;
* :mod:`repro.parallel.ledger` — :class:`RunLedger`, the crash-safe
  run ledger: completed (job, repeat) results, mid-search strategy
  checkpoints, and the cluster's task-lease table, so interrupted
  grids resume bit-identically instead of restarting from step 0.

The repeat harness (:func:`repro.search.runner.run_repeats` /
``run_grid``) wires them together behind a registry-validated
``backend`` name and a ``ledger`` argument; under a fixed master seed
every backend is result-for-result identical at any worker count,
interrupted or not.
"""

from repro.parallel.cache import CacheEntry, EvalCache
from repro.parallel.ledger import LedgerError, MemoryCheckpoint, RunLedger
from repro.parallel.pool import (
    BackendError,
    ExecutionBackend,
    build_backend,
    get_backend,
    list_backends,
    parallel_map,
    register_backend,
    resolve_workers,
)

__all__ = [
    "BackendError",
    "CacheEntry",
    "EvalCache",
    "ExecutionBackend",
    "LedgerError",
    "MemoryCheckpoint",
    "RunLedger",
    "build_backend",
    "get_backend",
    "list_backends",
    "parallel_map",
    "register_backend",
    "resolve_workers",
]
