"""Parallel execution engine: process fan-out + persistent eval cache.

Two orthogonal pieces that together make the repeat experiments run at
hardware speed without changing a single result:

* :mod:`repro.parallel.pool` — :func:`parallel_map`, a fork-based
  process-pool map for bags of independent seeded tasks;
* :mod:`repro.parallel.cache` — :class:`EvalCache`, an on-disk store of
  ``(scenario, spec_hash, config_key) -> (accuracy, latency_s,
  area_mm2)`` that evaluators consult before computing, and that
  workers merge back into on completion.

The repeat harness (:func:`repro.search.runner.run_repeats` /
``run_grid``) wires both together behind a ``backend`` switch
(``"serial"`` / ``"process"``); under a fixed master seed both backends
are result-for-result identical at any worker count.
"""

from repro.parallel.cache import CacheEntry, EvalCache
from repro.parallel.pool import parallel_map, resolve_workers

__all__ = ["CacheEntry", "EvalCache", "parallel_map", "resolve_workers"]
