"""Crash-safe run ledger: checkpoint/resume for the search stack.

The paper's headline grids (Fig. 5/6, Table 2) repeat every
(strategy, scenario) experiment many times; at production scale a
sweep holds thousands of independent searches and a crash 90% through
must not cost the whole run.  :class:`RunLedger` is the persistence
layer behind ``run_grid(..., ledger=...)``:

* every (job label, repeat) task has a row in ``tasks`` — ``pending``
  until its search finishes, then ``done`` with the full serialized
  :class:`~repro.search.base.SearchResult` (archive + extras);
* an in-flight search checkpoints its strategy state every N ask/tell
  batches into ``checkpoints`` (RNG stream, archive, populations,
  policy weights, optimizer moments — whatever the strategy's
  ``state_dict`` returns);
* ``meta`` pins the run configuration (steps, repeats, master seed,
  batch size, job labels) so a ledger can never silently mix results
  from incompatible runs;
* ``studies`` is the serving layer's job queue (:mod:`repro.server`):
  submitted StudySpecs with a leased/heartbeat lifecycle, so a killed
  server's in-flight studies are re-leased — and resumed from their
  per-study ledgers — by the next server to open the same queue file;
* ``task_leases`` is the cluster backend's coordination table
  (:mod:`repro.parallel.cluster`): per-(label, repeat) leases with the
  same claim/heartbeat/stale-reissue lifecycle as ``studies``, but at
  task granularity — many worker processes (possibly on different
  machines sharing the ledger file) each atomically claim the next
  runnable task, heartbeat while searching it, and record its result;
  a SIGKILLed worker's leases go stale and are re-claimed, resuming
  from the task's last checkpoint.

On resume, ``run_grid`` loads ``done`` tasks instead of re-running
them and restarts interrupted tasks from their last checkpoint;
because evaluation is pure, the replayed batches reproduce exactly
what the crashed process computed and the resumed grid is
bit-identical to an uninterrupted one (see
``tests/integration/test_kill_resume.py``).

Every write is its own committed sqlite transaction, so a ``kill -9``
can lose at most the work since the last checkpoint.  Connections are
guarded by process id: a ledger object captured into a forked worker
transparently opens its own connection instead of reusing the
parent's (sqlite connections are not fork-safe), which lets serial
and process backends share one code path.  Concurrent writers (many
workers, one parent) serialize on sqlite's file lock via
``busy_timeout``; tasks never contend on the same row.

Serialization is tagged JSON: numpy arrays travel as base64-encoded
raw bytes (bit-exact), and the library's value objects (specs,
configs, metrics, archives, results) via their canonical dict forms.
"""

from __future__ import annotations

import base64
import json
import os
import sqlite3
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "LedgerCheckpoint",
    "LedgerError",
    "MemoryCheckpoint",
    "RunLedger",
    "STUDY_STATES",
    "TERMINAL_STUDY_STATES",
    "decode_state",
    "encode_state",
]

#: Matches the EvalCache: generous, because every write is one small
#: transaction and contention only comes from checkpoint bursts.
_BUSY_TIMEOUT_MS = 30_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS tasks (
    label  TEXT NOT NULL,
    repeat INTEGER NOT NULL,
    status TEXT NOT NULL DEFAULT 'pending',
    result TEXT,
    PRIMARY KEY (label, repeat)
);
CREATE TABLE IF NOT EXISTS checkpoints (
    label      TEXT NOT NULL,
    repeat     INTEGER NOT NULL,
    steps_done INTEGER NOT NULL,
    state      TEXT NOT NULL,
    PRIMARY KEY (label, repeat)
);
CREATE TABLE IF NOT EXISTS studies (
    study_id     TEXT PRIMARY KEY,
    spec         TEXT NOT NULL,
    state        TEXT NOT NULL DEFAULT 'queued',
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    lease_pid    INTEGER,
    heartbeat    REAL,
    result       TEXT,
    error        TEXT
);
CREATE TABLE IF NOT EXISTS task_leases (
    label     TEXT NOT NULL,
    repeat    INTEGER NOT NULL,
    state     TEXT NOT NULL DEFAULT 'pending',
    worker    TEXT,
    lease_pid INTEGER,
    heartbeat REAL,
    claims    INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (label, repeat)
);
"""

#: Study-queue lifecycle (see the queue methods on :class:`RunLedger`):
#: ``queued`` -> ``running`` (leased by a worker) -> one of the
#: terminal states.  A ``running`` study whose lease heartbeat goes
#: stale is claimable again — that is the whole crash-recovery story:
#: a SIGKILLed server leaves its in-flight studies ``running``, the
#: next server (same queue file) re-leases them, and the per-study run
#: ledger resumes the actual search from its checkpoints.
STUDY_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STUDY_STATES = ("done", "failed", "cancelled")


class LedgerError(RuntimeError):
    """A ledger cannot serve the requested run (mismatch, misuse)."""


# ---------------------------------------------------------------------------
# Tagged JSON state serialization
# ---------------------------------------------------------------------------
#
# The value-object imports live inside the codec functions: the
# evaluator layer imports ``repro.parallel`` (for EvalCache) while this
# module serializes the evaluator layer's types, so importing them at
# module scope would be circular.  ``sys.modules`` makes the per-call
# import free after the first.

def encode_state(obj: Any) -> Any:
    """Turn a state value into a JSON-ready tagged structure.

    Bit-exact for floats (JSON's shortest-repr round-trips IEEE-754
    doubles) and numpy arrays (raw little-endian bytes, base64).
    Handles the search stack's value objects plus tuples and dicts
    with non-string keys; rejects anything else loudly rather than
    persisting a lossy approximation.
    """
    from repro.accelerator.config import AcceleratorConfig
    from repro.core.archive import ArchiveEntry, SearchArchive
    from repro.core.metrics import Metrics
    from repro.nasbench.model_spec import ModelSpec
    from repro.search.base import SearchResult

    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return {
            "__t__": "ndarray",
            "dtype": obj.dtype.str,
            "shape": list(obj.shape),
            "data": base64.b64encode(np.ascontiguousarray(obj).tobytes()).decode(),
        }
    if isinstance(obj, ModelSpec):
        return {"__t__": "spec", "spec": obj.to_dict()}
    if isinstance(obj, AcceleratorConfig):
        return {"__t__": "config", "config": obj.to_dict()}
    if isinstance(obj, Metrics):
        # Fields go through encode_state too: a custom accuracy source
        # may hand back numpy scalars, which json.dumps rejects raw.
        return {
            "__t__": "metrics",
            "accuracy": encode_state(obj.accuracy),
            "latency_s": encode_state(obj.latency_s),
            "area_mm2": encode_state(obj.area_mm2),
        }
    if isinstance(obj, ArchiveEntry):
        return {
            "__t__": "entry",
            "step": encode_state(obj.step),
            "spec": encode_state(obj.spec),
            "config": encode_state(obj.config),
            "metrics": encode_state(obj.metrics),
            "reward": encode_state(obj.reward),
            "feasible": encode_state(obj.feasible),
            "valid": encode_state(obj.valid),
            "phase": obj.phase,
        }
    if isinstance(obj, SearchArchive):
        return {
            "__t__": "archive",
            "entries": [encode_state(e) for e in obj.entries],
        }
    if isinstance(obj, SearchResult):
        return {
            "__t__": "result",
            "strategy": obj.strategy,
            "scenario": obj.scenario,
            "archive": encode_state(obj.archive),
            "extras": encode_state(obj.extras),
        }
    if isinstance(obj, tuple):
        return {"__t__": "tuple", "items": [encode_state(v) for v in obj]}
    if isinstance(obj, list):
        return [encode_state(v) for v in obj]
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and "__t__" not in obj:
            return {k: encode_state(v) for k, v in obj.items()}
        # Non-string keys (e.g. per-rung archives keyed by threshold)
        # or a literal "__t__" key: keep keys as tagged values.
        return {
            "__t__": "dict",
            "items": [[encode_state(k), encode_state(v)] for k, v in obj.items()],
        }
    raise TypeError(f"cannot serialize {type(obj).__name__} into a ledger")


def decode_state(obj: Any) -> Any:
    """Inverse of :func:`encode_state`."""
    from repro.accelerator.config import AcceleratorConfig
    from repro.core.archive import ArchiveEntry, SearchArchive
    from repro.core.metrics import Metrics
    from repro.nasbench.model_spec import ModelSpec
    from repro.search.base import SearchResult

    if isinstance(obj, list):
        return [decode_state(v) for v in obj]
    if not isinstance(obj, dict):
        return obj
    tag = obj.get("__t__")
    if tag is None:
        return {k: decode_state(v) for k, v in obj.items()}
    if tag == "ndarray":
        data = base64.b64decode(obj["data"])
        return np.frombuffer(data, dtype=np.dtype(obj["dtype"])).reshape(
            obj["shape"]
        ).copy()
    if tag == "spec":
        return ModelSpec.from_dict(obj["spec"])
    if tag == "config":
        return AcceleratorConfig.from_dict(obj["config"])
    if tag == "metrics":
        return Metrics(
            accuracy=obj["accuracy"],
            latency_s=obj["latency_s"],
            area_mm2=obj["area_mm2"],
        )
    if tag == "entry":
        return ArchiveEntry(
            step=obj["step"],
            spec=decode_state(obj["spec"]),
            config=decode_state(obj["config"]),
            metrics=decode_state(obj["metrics"]),
            reward=obj["reward"],
            feasible=obj["feasible"],
            valid=obj["valid"],
            phase=obj["phase"],
        )
    if tag == "archive":
        return SearchArchive(entries=[decode_state(e) for e in obj["entries"]])
    if tag == "result":
        return SearchResult(
            strategy=obj["strategy"],
            scenario=obj["scenario"],
            archive=decode_state(obj["archive"]),
            extras=decode_state(obj["extras"]),
        )
    if tag == "tuple":
        return tuple(decode_state(v) for v in obj["items"])
    if tag == "dict":
        return {decode_state(k): decode_state(v) for k, v in obj["items"]}
    raise ValueError(f"unknown state tag {tag!r}")


def _dumps(obj: Any) -> str:
    return json.dumps(encode_state(obj), separators=(",", ":"))


def _loads(text: str) -> Any:
    return decode_state(json.loads(text))


# ---------------------------------------------------------------------------
# The ledger
# ---------------------------------------------------------------------------

class RunLedger:
    """Sqlite-backed record of a grid run's tasks and checkpoints.

    ``path=None`` keeps the ledger in memory — handy in tests and for
    serial runs that only want same-process checkpointing, but it
    cannot cross a fork (the process backend requires a file path).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._pid = os.getpid()
        self._conn = self._open()

    # -- lifecycle ---------------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        if self.path is None:
            conn = sqlite3.connect(":memory:")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.path)
            conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        conn.executescript(_SCHEMA)
        conn.commit()
        return conn

    def _db(self) -> sqlite3.Connection:
        """The connection, reopened transparently after a fork.

        Sqlite connections are not fork-safe: a forked worker that
        inherits the parent's connection shares its file descriptor
        and transaction state.  Guarding every access on the creating
        pid lets one ledger object be captured into worker closures
        and still give every process a private connection.
        """
        if os.getpid() != self._pid:
            if self.path is None:
                raise LedgerError(
                    "an in-memory ledger cannot cross a fork; give the "
                    "ledger a file path to use it with the process backend"
                )
            # Abandon (never close) the inherited connection object —
            # closing it could flush parent transaction state.
            self._conn = self._open()
            self._pid = os.getpid()
        return self._conn

    def close(self) -> None:
        if os.getpid() == self._pid:
            self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- run configuration -------------------------------------------------
    def begin_run(self, config: dict) -> None:
        """Pin (or validate) the run configuration this ledger serves.

        The first ``begin_run`` stores ``config``; later calls must
        present an identical one — resuming a ledger under different
        steps/seeds/batch sizes would stitch together incompatible
        results, so it raises :class:`LedgerError` instead.
        """
        text = json.dumps(config, sort_keys=True, separators=(",", ":"))
        db = self._db()
        row = db.execute(
            "SELECT value FROM meta WHERE key='run_config'"
        ).fetchone()
        if row is None:
            db.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('run_config', ?)",
                (text,),
            )
            db.commit()
            return
        if row[0] != text:
            raise LedgerError(
                "ledger was created for a different run configuration:\n"
                f"  ledger : {row[0]}\n  request: {text}\n"
                "use a fresh ledger path (or rerun with the original "
                "steps/repeats/seed/batch-size/jobs)"
            )

    def run_config(self) -> dict | None:
        row = self._db().execute(
            "SELECT value FROM meta WHERE key='run_config'"
        ).fetchone()
        return json.loads(row[0]) if row is not None else None

    # -- task results ------------------------------------------------------
    def load_result(self, label: str, repeat: int) -> SearchResult | None:
        """The completed result of one task, or ``None`` if not done."""
        row = self._db().execute(
            "SELECT result FROM tasks WHERE label=? AND repeat=? AND status='done'",
            (label, repeat),
        ).fetchone()
        return _loads(row[0]) if row is not None else None

    def record_done(self, label: str, repeat: int, result: SearchResult) -> None:
        """Persist a finished task and drop its checkpoint atomically."""
        db = self._db()
        db.execute(
            "INSERT OR REPLACE INTO tasks (label, repeat, status, result)"
            " VALUES (?, ?, 'done', ?)",
            (label, repeat, _dumps(result)),
        )
        db.execute(
            "DELETE FROM checkpoints WHERE label=? AND repeat=?", (label, repeat)
        )
        db.commit()

    # -- checkpoints -------------------------------------------------------
    def save_checkpoint(self, label: str, repeat: int, state: dict) -> None:
        self._db().execute(
            "INSERT OR REPLACE INTO checkpoints (label, repeat, steps_done, state)"
            " VALUES (?, ?, ?, ?)",
            (label, repeat, int(state.get("steps_done", 0)), _dumps(state)),
        )
        self._db().commit()

    def load_checkpoint(self, label: str, repeat: int) -> dict | None:
        row = self._db().execute(
            "SELECT state FROM checkpoints WHERE label=? AND repeat=?",
            (label, repeat),
        ).fetchone()
        return _loads(row[0]) if row is not None else None

    def checkpoint(self, label: str, repeat: int) -> "LedgerCheckpoint":
        """A :class:`~repro.search.base.Checkpoint` bound to one task."""
        return LedgerCheckpoint(self, label, repeat)

    # -- study queue -------------------------------------------------------
    #
    # The serving layer (:mod:`repro.server`) keeps its whole queue in
    # the ledger so queue state shares the crash-safety story of task
    # results: every transition is one committed transaction, and a
    # killed server loses nothing but its in-memory worker pool.
    # Rows hold the submitted StudySpec as JSON; the actual search
    # state lives in a per-study run ledger (tasks/checkpoints above).

    def submit_study(
        self, study_id: str, spec: dict, now: float
    ) -> None:
        """Enqueue one study (``spec`` is a ``StudySpec.to_dict()``)."""
        db = self._db()
        try:
            db.execute(
                "INSERT INTO studies (study_id, spec, state, submitted_at)"
                " VALUES (?, ?, 'queued', ?)",
                (study_id, json.dumps(spec, separators=(",", ":")), now),
            )
        except sqlite3.IntegrityError:
            raise LedgerError(f"study {study_id!r} is already queued") from None
        db.commit()

    def study(self, study_id: str) -> dict | None:
        """One study's queue row as a dict (spec parsed), or ``None``."""
        row = self._db().execute(
            "SELECT study_id, spec, state, submitted_at, started_at,"
            " finished_at, lease_pid, heartbeat, result, error"
            " FROM studies WHERE study_id=?",
            (study_id,),
        ).fetchone()
        return self._study_row(row) if row is not None else None

    def studies(self) -> list[dict]:
        """Every queue row, oldest submission first."""
        rows = self._db().execute(
            "SELECT study_id, spec, state, submitted_at, started_at,"
            " finished_at, lease_pid, heartbeat, result, error"
            " FROM studies ORDER BY submitted_at, study_id"
        ).fetchall()
        return [self._study_row(row) for row in rows]

    @staticmethod
    def _study_row(row) -> dict:
        return {
            "id": row[0],
            "spec": json.loads(row[1]),
            "state": row[2],
            "submitted_at": row[3],
            "started_at": row[4],
            "finished_at": row[5],
            "lease_pid": row[6],
            "heartbeat": row[7],
            "result": json.loads(row[8]) if row[8] else None,
            "error": row[9],
        }

    def claim_study(
        self, pid: int, now: float, stale_after: float
    ) -> str | None:
        """Atomically lease the next runnable study; ``None`` if idle.

        Runnable means ``queued``, or ``running`` with a lease
        heartbeat older than ``stale_after`` seconds — i.e. abandoned
        by a crashed server and due for resumption.  The lease is
        taken under ``BEGIN IMMEDIATE`` so concurrent workers (threads
        or whole servers sharing one queue file) never claim the same
        study twice.
        """
        db = self._db()
        db.execute("BEGIN IMMEDIATE")
        try:
            row = db.execute(
                "SELECT study_id FROM studies WHERE state='queued'"
                " OR (state='running' AND (heartbeat IS NULL OR heartbeat < ?))"
                " ORDER BY submitted_at, study_id LIMIT 1",
                (now - stale_after,),
            ).fetchone()
            if row is None:
                db.execute("ROLLBACK")
                return None
            db.execute(
                "UPDATE studies SET state='running', lease_pid=?,"
                " heartbeat=?, started_at=COALESCE(started_at, ?)"
                " WHERE study_id=?",
                (pid, now, now, row[0]),
            )
            db.execute("COMMIT")
        except BaseException:
            db.execute("ROLLBACK")
            raise
        return row[0]

    def heartbeat_study(
        self, study_id: str, now: float, pid: int | None = None
    ) -> None:
        """Refresh a leased study's liveness stamp.

        ``pid`` (when given) re-points ``lease_pid`` at the process
        actually executing the study — the server leases under its own
        pid but delegates to a runner subprocess, and cancellation /
        the durability tests need the runner's process group, not the
        server's.
        """
        db = self._db()
        if pid is None:
            db.execute(
                "UPDATE studies SET heartbeat=?"
                " WHERE study_id=? AND state='running'",
                (now, study_id),
            )
        else:
            db.execute(
                "UPDATE studies SET heartbeat=?, lease_pid=?"
                " WHERE study_id=? AND state='running'",
                (now, pid, study_id),
            )
        db.commit()

    def finish_study(self, study_id: str, result: dict, now: float) -> None:
        """Mark a running study ``done`` with its result summary."""
        self._finish(study_id, "done", now, result=result)

    def fail_study(self, study_id: str, error: str, now: float) -> None:
        """Mark a running study ``failed`` with a diagnostic."""
        self._finish(study_id, "failed", now, error=error)

    def _finish(
        self,
        study_id: str,
        state: str,
        now: float,
        result: dict | None = None,
        error: str | None = None,
    ) -> None:
        db = self._db()
        changed = db.execute(
            "UPDATE studies SET state=?, finished_at=?, result=?, error=?"
            " WHERE study_id=? AND state='running'",
            (
                state,
                now,
                json.dumps(result, separators=(",", ":")) if result is not None else None,
                error,
                study_id,
            ),
        ).rowcount
        db.commit()
        if not changed:
            row = self.study(study_id)
            raise LedgerError(
                f"cannot mark study {study_id!r} {state}: "
                + ("unknown study" if row is None else f"state is {row['state']!r}")
            )

    def cancel_study(self, study_id: str, now: float) -> str | None:
        """Cancel a ``queued``/``running`` study; returns its prior state.

        Terminal studies are left untouched (``None`` is returned) —
        cancellation must never overwrite a concurrently recorded
        ``done``/``failed`` outcome.  Killing the worker actually
        running the study is the server's job; the queue only flips
        the state.
        """
        db = self._db()
        db.execute("BEGIN IMMEDIATE")
        try:
            row = db.execute(
                "SELECT state FROM studies WHERE study_id=?"
                " AND state IN ('queued', 'running')",
                (study_id,),
            ).fetchone()
            if row is None:
                db.execute("ROLLBACK")
                return None
            db.execute(
                "UPDATE studies SET state='cancelled', finished_at=?"
                " WHERE study_id=?",
                (now, study_id),
            )
            db.execute("COMMIT")
        except BaseException:
            db.execute("ROLLBACK")
            raise
        return row[0]

    # -- cluster task leases -----------------------------------------------
    #
    # The cluster backend (:mod:`repro.parallel.cluster`) promotes the
    # ledger from checkpoint store to coordination substrate: every
    # (label, repeat) task gets a lease row, worker processes claim
    # the next runnable one under ``BEGIN IMMEDIATE`` (never two
    # claimants), heartbeat while searching, and record results
    # through :meth:`record_done_leased` — which refuses stragglers
    # whose lease was re-issued, so no task is recorded twice.

    def seed_task_leases(self, tasks: list[tuple[str, int]]) -> None:
        """Ensure a lease row exists for every (label, repeat) task.

        Idempotent: existing rows (live leases of an in-flight run, or
        ``done`` markers of a finished one) are left untouched, and
        rows whose task already completed — e.g. under a *different*
        backend before a resume — are marked ``done`` so the cluster's
        progress accounting converges.
        """
        db = self._db()
        db.execute("BEGIN IMMEDIATE")
        try:
            db.executemany(
                "INSERT OR IGNORE INTO task_leases (label, repeat) VALUES (?, ?)",
                [(label, int(repeat)) for label, repeat in tasks],
            )
            db.execute(
                "UPDATE task_leases SET state='done' WHERE state!='done'"
                " AND EXISTS (SELECT 1 FROM tasks t WHERE t.label=task_leases.label"
                " AND t.repeat=task_leases.repeat AND t.status='done')"
            )
            db.execute("COMMIT")
        except BaseException:
            db.execute("ROLLBACK")
            raise

    def claim_task(
        self, worker: str, pid: int, now: float, stale_after: float
    ) -> tuple[str, int] | None:
        """Atomically lease the next runnable task; ``None`` if none.

        Runnable means ``pending``, or ``leased`` with a heartbeat
        older than ``stale_after`` seconds (abandoned by a crashed or
        stalled worker, due for re-issue).  Tasks already ``done`` in
        the ``tasks`` table are never claimable.  Deterministic claim
        order (label, then repeat) keeps cluster scheduling easy to
        reason about, though results never depend on it.
        """
        db = self._db()
        db.execute("BEGIN IMMEDIATE")
        try:
            row = db.execute(
                "SELECT label, repeat FROM task_leases"
                " WHERE (state='pending' OR (state='leased'"
                "   AND (heartbeat IS NULL OR heartbeat < ?)))"
                " AND NOT EXISTS (SELECT 1 FROM tasks t"
                "   WHERE t.label=task_leases.label"
                "   AND t.repeat=task_leases.repeat AND t.status='done')"
                " ORDER BY label, repeat LIMIT 1",
                (now - stale_after,),
            ).fetchone()
            if row is None:
                db.execute("ROLLBACK")
                return None
            db.execute(
                "UPDATE task_leases SET state='leased', worker=?, lease_pid=?,"
                " heartbeat=?, claims=claims+1 WHERE label=? AND repeat=?",
                (worker, pid, now, row[0], row[1]),
            )
            db.execute("COMMIT")
        except BaseException:
            db.execute("ROLLBACK")
            raise
        return (row[0], int(row[1]))

    def heartbeat_task(
        self, label: str, repeat: int, worker: str, now: float
    ) -> bool:
        """Refresh a held lease's liveness stamp.

        Returns ``False`` when the lease is no longer ours (re-issued
        after going stale) — the worker should abandon the task; the
        new holder owns it now, and :meth:`record_done_leased` would
        refuse our result anyway.
        """
        db = self._db()
        changed = db.execute(
            "UPDATE task_leases SET heartbeat=?"
            " WHERE label=? AND repeat=? AND worker=? AND state='leased'",
            (now, label, int(repeat), worker),
        ).rowcount
        db.commit()
        return bool(changed)

    def record_done_leased(
        self, label: str, repeat: int, worker: str, result: "SearchResult"
    ) -> bool:
        """Persist a leased task's result iff the lease is still ours.

        One transaction checks lease ownership, writes the ``tasks``
        row, drops the task's checkpoint, and marks the lease ``done``.
        A straggler whose lease was re-issued (its heartbeat went
        stale and another worker claimed the task) gets ``False`` and
        must discard its result — the current holder will record the
        bit-identical one — so no (label, repeat) is ever recorded by
        two workers.
        """
        db = self._db()
        db.execute("BEGIN IMMEDIATE")
        try:
            row = db.execute(
                "SELECT worker FROM task_leases"
                " WHERE label=? AND repeat=? AND state='leased'",
                (label, int(repeat)),
            ).fetchone()
            if row is None or row[0] != worker:
                db.execute("ROLLBACK")
                return False
            db.execute(
                "INSERT OR REPLACE INTO tasks (label, repeat, status, result)"
                " VALUES (?, ?, 'done', ?)",
                (label, int(repeat), _dumps(result)),
            )
            db.execute(
                "DELETE FROM checkpoints WHERE label=? AND repeat=?",
                (label, int(repeat)),
            )
            db.execute(
                "UPDATE task_leases SET state='done' WHERE label=? AND repeat=?",
                (label, int(repeat)),
            )
            db.execute("COMMIT")
        except BaseException:
            db.execute("ROLLBACK")
            raise
        return True

    def cluster_progress(self) -> dict[str, int]:
        """Lease-state counts: total / pending / leased / done."""
        counts = {"pending": 0, "leased": 0, "done": 0}
        for state, count in self._db().execute(
            "SELECT state, COUNT(*) FROM task_leases GROUP BY state"
        ):
            counts[state] = int(count)
        counts["total"] = sum(counts.values())
        return counts

    def task_lease_rows(self) -> list[dict]:
        """Every lease row as a dict, (label, repeat) order."""
        rows = self._db().execute(
            "SELECT label, repeat, state, worker, lease_pid, heartbeat, claims"
            " FROM task_leases ORDER BY label, repeat"
        ).fetchall()
        return [
            {
                "label": row[0],
                "repeat": int(row[1]),
                "state": row[2],
                "worker": row[3],
                "lease_pid": row[4],
                "heartbeat": row[5],
                "claims": int(row[6]),
            }
            for row in rows
        ]

    # -- execution records -------------------------------------------------
    def record_execution(self, entry: dict) -> None:
        """Append one backend-execution record to the run's history.

        Entries come from :meth:`ExecutionBackend.describe_execution
        <repro.parallel.pool.ExecutionBackend.describe_execution>` —
        the requested backend name plus what *effectively* ran (the
        process backend degrades to serial where ``fork`` is
        unavailable).  A resumed or served study therefore reports
        which backend actually executed each of its runs, not just
        what its spec asked for.
        """
        db = self._db()
        db.execute("BEGIN IMMEDIATE")
        try:
            row = db.execute(
                "SELECT value FROM meta WHERE key='executions'"
            ).fetchone()
            entries = json.loads(row[0]) if row is not None else []
            entries.append(entry)
            db.execute(
                "INSERT OR REPLACE INTO meta (key, value)"
                " VALUES ('executions', ?)",
                (json.dumps(entries, separators=(",", ":")),),
            )
            db.execute("COMMIT")
        except BaseException:
            db.execute("ROLLBACK")
            raise

    def executions(self) -> list[dict]:
        """Every recorded backend execution, oldest first."""
        row = self._db().execute(
            "SELECT value FROM meta WHERE key='executions'"
        ).fetchone()
        return json.loads(row[0]) if row is not None else []

    # -- reporting ---------------------------------------------------------
    def task_statuses(self) -> dict[str, dict[str, int]]:
        """Per-label progress: finished repeats and in-flight checkpoints.

        The per-job progress a study server reports.  ``tasks`` rows
        only exist once a repeat finishes, so per-label *totals* come
        from the pinned run configuration (``run_config()['labels']``
        x ``num_repeats``), not from here.
        """
        db = self._db()
        out: dict[str, dict[str, int]] = {}
        for label, done in db.execute(
            "SELECT label, COUNT(*) FROM tasks WHERE status='done' GROUP BY label"
        ):
            out[label] = {"done": int(done), "checkpointed": 0, "checkpointed_steps": 0}
        for label, count, steps in db.execute(
            "SELECT label, COUNT(*), COALESCE(SUM(steps_done), 0)"
            " FROM checkpoints GROUP BY label"
        ):
            entry = out.setdefault(
                label, {"done": 0, "checkpointed": 0, "checkpointed_steps": 0}
            )
            entry["checkpointed"] = int(count)
            entry["checkpointed_steps"] = int(steps)
        return out

    def done_results(self, label: str) -> list["SearchResult"]:
        """Every completed result under one job label, repeat order."""
        rows = self._db().execute(
            "SELECT result FROM tasks WHERE label=? AND status='done'"
            " ORDER BY repeat",
            (label,),
        ).fetchall()
        return [_loads(row[0]) for row in rows]

    def progress(self) -> dict:
        """Counts for resuming humans: done / checkpointed / steps."""
        db = self._db()
        done = db.execute(
            "SELECT COUNT(*) FROM tasks WHERE status='done'"
        ).fetchone()[0]
        checkpointed, steps = db.execute(
            "SELECT COUNT(*), COALESCE(SUM(steps_done), 0) FROM checkpoints"
        ).fetchone()
        return {
            "done": int(done),
            "checkpointed": int(checkpointed),
            "checkpointed_steps": int(steps),
        }


class LedgerCheckpoint:
    """Checkpoint handle binding a ledger to one (label, repeat) task.

    Implements the (duck-typed) :class:`repro.search.base.Checkpoint`
    interface.
    """

    def __init__(self, ledger: RunLedger, label: str, repeat: int) -> None:
        self.ledger = ledger
        self.label = label
        self.repeat = repeat

    def load(self) -> dict | None:
        return self.ledger.load_checkpoint(self.label, self.repeat)

    def save(self, state: dict) -> None:
        self.ledger.save_checkpoint(self.label, self.repeat, state)


class MemoryCheckpoint:
    """In-process checkpoint that snapshots via the ledger serializer.

    Serializing on ``save`` gives the same snapshot/aliasing semantics
    as the sqlite-backed handle (the strategy keeps mutating its state
    after a save), which makes it the reference checkpoint for tests.
    """

    def __init__(self) -> None:
        self._blob: str | None = None
        self.saves = 0

    def load(self) -> dict | None:
        return _loads(self._blob) if self._blob is not None else None

    def save(self, state: dict) -> None:
        self._blob = _dumps(state)
        self.saves += 1
