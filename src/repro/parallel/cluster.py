"""Ledger-leased elastic cluster backend.

The ``cluster`` :class:`~repro.parallel.pool.ExecutionBackend` scales
a grid beyond one process pool: any number of worker processes —
forked locally by the backend, or started on other machines with
``python -m repro.parallel.worker`` (``repro worker``) against a
shared state directory — cooperate through the run ledger's
``task_leases`` table:

* every pending (label, repeat) task gets a lease row;
* workers atomically claim the next runnable task (``BEGIN
  IMMEDIATE`` — never two claimants), heartbeat while searching it,
  and record the result through
  :meth:`~repro.parallel.ledger.RunLedger.record_done_leased`;
* a crashed or stalled worker's lease heartbeat goes stale and the
  task is re-issued — resuming from its last checkpoint, so the work
  already persisted is replayed, not recomputed;
* a straggler that finishes after losing its lease is refused at
  record time, so no task is ever recorded twice;
* workers may join and leave at any point (elasticity): joining means
  opening the ledger and claiming; leaving means simply exiting, with
  any held lease re-issued after ``stale_after`` seconds.

Bit-identity: per-repeat seeds depend only on the master seed and the
repeat index, evaluation is pure, and checkpoints resume exactly, so
*which* worker runs a task — or how many times a task is re-issued —
never changes its result.  ``backend="cluster"`` reproduces the
serial goldens float for float (see
``tests/integration/test_cluster_kill.py``).

Eval-cache merge-back: each worker attaches its own *writable*
:class:`~repro.parallel.cache.EvalCache` connection to the shared
store (concurrent writers are supported — rows are pure, writes
serialize on sqlite's file lock) and flushes its delta when a task
completes, so a joining worker warm-starts from everything the
cluster has already evaluated.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
import warnings
from pathlib import Path

from repro.parallel.cache import EvalCache
from repro.parallel.ledger import LedgerError, RunLedger
from repro.parallel.pool import (
    ExecutionBackend,
    _mark_worker,
    fork_available,
    register_backend,
    resolve_workers,
)
from repro.utils.rng import hash_seed

__all__ = ["ClusterBackend", "run_worker"]


def _heartbeat_loop(
    path, label: str, repeat: int, worker_id: str, every: float, stop: threading.Event
) -> None:
    # Own ledger (and sqlite connection) per heartbeat thread:
    # connections are neither thread- nor fork-safe, and the worker's
    # main thread is busy inside strategy.run.
    ledger = RunLedger(path)
    try:
        while not stop.wait(every):
            if not ledger.heartbeat_task(label, repeat, worker_id, time.time()):
                # Lease re-issued (we stalled past stale_after): the
                # new holder owns the task now and record_done_leased
                # will refuse our result.  Nothing left to keep alive.
                return
    finally:
        ledger.close()


def run_worker(
    jobs,
    ledger: RunLedger | str | Path,
    *,
    num_steps: int,
    num_repeats: int,
    master_seed: int = 0,
    batch_size: int = 1,
    checkpoint_every: int = 10,
    cache: EvalCache | str | Path | None = None,
    worker_id: str | None = None,
    stale_after: float = 10.0,
    heartbeat_every: float = 1.0,
    poll_every: float = 0.2,
    max_tasks: int | None = None,
) -> int:
    """Claim-and-run loop of one cluster worker; returns tasks recorded.

    ``jobs`` is the grid's :class:`~repro.search.runner.RepeatJob`
    list (an external worker rebuilds it from the ledger-pinned
    StudySpec — see :mod:`repro.parallel.worker`); ``ledger`` must be
    file-backed, since the lease table *is* the cluster.  The loop
    exits once every lease is ``done`` (or after ``max_tasks``
    recorded tasks, for tests and bounded-contribution workers).

    The run parameters must match the coordinating run's — they are
    what :meth:`RunLedger.begin_run` pins, and the caller is expected
    to have validated against ``ledger.run_config()``.
    """
    if not isinstance(ledger, RunLedger):
        ledger = RunLedger(ledger)
    if ledger.path is None:
        raise LedgerError(
            "a cluster worker requires a file-backed ledger — the "
            "task_leases table is the coordination substrate"
        )
    if worker_id is None:
        worker_id = f"{socket.gethostname()}-{os.getpid()}"
    by_label = {job.label: job for job in jobs}
    # Idempotent: makes join order irrelevant (a worker may beat the
    # coordinator to the ledger) and marks already-done tasks.
    ledger.seed_task_leases(
        [(job.label, repeat) for job in jobs for repeat in range(num_repeats)]
    )

    # The shared store is attached writable — workers are concurrent
    # writers by design — with one connection per store path for the
    # whole worker lifetime.  An owner-mismatched EvalCache object
    # (inherited through fork) contributes only its path.
    own_cache: EvalCache | None = None
    cache_path = None
    if isinstance(cache, EvalCache):
        if cache.owner_pid == os.getpid():
            own_cache = cache
        else:
            cache_path = cache.path
    elif cache is not None:
        cache_path = Path(cache)

    recorded = 0
    try:
        while True:
            claim = ledger.claim_task(
                worker_id, os.getpid(), time.time(), stale_after
            )
            if claim is None:
                # Re-sync lease states first: a task recorded outside
                # the lease protocol (a serial resume of the same
                # ledger) leaves its lease un-done, which would stall
                # the progress check below forever.
                ledger.seed_task_leases([])
                progress = ledger.cluster_progress()
                if progress["total"] == 0 or progress["done"] >= progress["total"]:
                    break
                time.sleep(poll_every)
                continue
            label, repeat = claim
            job = by_label.get(label)
            if job is None:
                raise LedgerError(
                    f"claimed a lease for unknown job label {label!r}; this "
                    "worker's jobs do not match the run that seeded the "
                    f"ledger (known: {sorted(by_label)})"
                )
            evaluator = job.evaluator_factory()
            inherited = evaluator.eval_cache
            if inherited is not None and inherited.owner_pid != os.getpid():
                # The factory closed over an evaluator whose cache (and
                # live sqlite connection) came through fork — detach it
                # and reopen by path below.
                evaluator.eval_cache = None
            if evaluator.eval_cache is None:
                store_path = cache_path
                if store_path is None and own_cache is not None:
                    evaluator.attach_eval_cache(
                        own_cache, scenario=job.cache_scenario
                    )
                else:
                    if store_path is None and inherited is not None:
                        store_path = inherited.path  # keep warm-starts
                    if store_path is not None:
                        if (
                            own_cache is None
                            or own_cache.path is None
                            or str(own_cache.path) != str(store_path)
                        ):
                            own_cache = EvalCache(store_path)
                        evaluator.attach_eval_cache(
                            own_cache, scenario=job.cache_scenario
                        )
            worker_cache = evaluator.eval_cache
            stop = threading.Event()
            beat = threading.Thread(
                target=_heartbeat_loop,
                args=(ledger.path, label, repeat, worker_id, heartbeat_every, stop),
                daemon=True,
            )
            beat.start()
            try:
                strategy = job.strategy_factory(
                    hash_seed("repeat", master_seed, repeat)
                )
                result = strategy.run(
                    evaluator,
                    num_steps,
                    batch_size=batch_size,
                    checkpoint=ledger.checkpoint(label, repeat),
                    checkpoint_every=checkpoint_every,
                )
            finally:
                stop.set()
                beat.join()
            if worker_cache is not None:
                # Delta merge-back at task completion: new rows become
                # visible to every other worker (and the coordinator).
                worker_cache.flush()
            if ledger.record_done_leased(label, repeat, worker_id, result):
                recorded += 1
            # A refused record means we were a straggler: the lease was
            # re-issued and the current holder records the bit-identical
            # result.  Either way, move on to the next claim.
            if max_tasks is not None and recorded >= max_tasks:
                break
    finally:
        if own_cache is not None and own_cache is not cache:
            own_cache.close()
    return recorded


class ClusterBackend(ExecutionBackend):
    """Grid execution over ledger-leased cooperating worker processes.

    ``run_tasks`` seeds lease rows for the pending tasks, forks
    ``workers`` local claim loops (where ``fork`` exists), then mops
    up any remainder in-process — so the run completes even if every
    local worker dies, and external ``repro worker`` processes that
    share the ledger file join the same lease pool.  Declarative
    params (``execution.backend_params`` in a study spec):

    ``stale_after``
        Seconds without a heartbeat before a lease is re-issued.
    ``heartbeat_every``
        Seconds between a worker's liveness stamps on its held lease.
    ``poll_every``
        Idle sleep between claim attempts when nothing is runnable.
    """

    name = "cluster"

    def __init__(
        self,
        stale_after: float = 10.0,
        heartbeat_every: float = 1.0,
        poll_every: float = 0.2,
    ) -> None:
        if stale_after <= 0:
            raise ValueError(f"stale_after must be > 0, got {stale_after}")
        if heartbeat_every <= 0:
            raise ValueError(f"heartbeat_every must be > 0, got {heartbeat_every}")
        if heartbeat_every >= stale_after:
            raise ValueError(
                f"heartbeat_every ({heartbeat_every}) must be smaller than "
                f"stale_after ({stale_after}) or live leases look stale"
            )
        if poll_every <= 0:
            raise ValueError(f"poll_every must be > 0, got {poll_every}")
        self.stale_after = float(stale_after)
        self.heartbeat_every = float(heartbeat_every)
        self.poll_every = float(poll_every)

    def _local_workers(self, grid) -> int:
        if not fork_available() or len(grid.pending) <= 1:
            return 0
        return min(resolve_workers(grid.workers), len(grid.pending))

    def describe_execution(self, grid) -> dict:
        description = super().describe_execution(grid)
        description["workers"] = min(
            resolve_workers(grid.workers), max(len(grid.pending), 1)
        )
        description["local_workers"] = self._local_workers(grid)
        return description

    def _worker_kwargs(self, grid) -> dict:
        return {
            "num_steps": grid.num_steps,
            "num_repeats": grid.num_repeats,
            "master_seed": grid.master_seed,
            "batch_size": grid.batch_size,
            "checkpoint_every": grid.checkpoint_every,
            "cache": grid.cache,
            "stale_after": self.stale_after,
            "heartbeat_every": self.heartbeat_every,
            "poll_every": self.poll_every,
        }

    def _child_main(self, grid, worker_id: str) -> None:
        # Forked child: closures (jobs, the latency matrix behind their
        # factories) arrived copy-on-write.  Nested parallel_map calls
        # must degrade to serial instead of forking pools of their own.
        _mark_worker()
        run_worker(grid.jobs, grid.ledger, worker_id=worker_id, **self._worker_kwargs(grid))

    def run_tasks(self, grid) -> dict:
        ledger = grid.ledger
        if ledger is None or ledger.path is None:
            raise ValueError(
                "the cluster backend requires a file-backed ledger — "
                "workers coordinate through its task_leases table; pass "
                "ledger=<path> (execution.ledger in a study spec)"
            )
        cache = grid.cache
        if cache is not None and cache.path is None:
            warnings.warn(
                "cluster backend cannot share a path-less (in-memory) "
                "EvalCache with workers; evaluations will not be cached "
                "— give the cache a file path",
                RuntimeWarning,
                stacklevel=2,
            )
        if cache is not None:
            cache.flush()  # workers must see everything known so far
        ledger.seed_task_leases([(grid.labels[j], r) for j, r in grid.pending])

        children = []
        for index in range(self._local_workers(grid)):
            ctx = multiprocessing.get_context("fork")
            child = ctx.Process(
                target=self._child_main,
                args=(grid, f"local-{index}-{os.getpid()}"),
            )
            child.start()
            children.append(child)
        for child in children:
            child.join()
        # Mop-up claim loop in-process: finishes anything the local
        # workers left behind (all killed, fork unavailable, or a
        # straggling external worker's stale lease) and is a no-op on
        # a fully recorded run.
        run_worker(
            grid.jobs,
            ledger,
            worker_id=f"coordinator-{os.getpid()}",
            **self._worker_kwargs(grid),
        )
        if cache is not None:
            # Flush boundaries drop memoized misses, so the coordinator
            # now observes every row the workers wrote to the store.
            cache.flush()

        fresh = {}
        for task in grid.pending:
            label = grid.labels[task[0]]
            result = ledger.load_result(label, task[1])
            if result is None:
                raise LedgerError(
                    f"cluster run ended with task ({label!r}, {task[1]}) "
                    "unrecorded — the lease table converged without its "
                    "result, which should be impossible; re-run to resume"
                )
            fresh[task] = result
        return fresh


register_backend(ClusterBackend)
