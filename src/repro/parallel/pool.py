"""Process-pool fan-out for embarrassingly parallel experiment work.

The repeat experiments (Fig. 5/6, Tables 2-3) are bags of fully
independent searches: every (strategy, scenario, repeat) task owns its
seed and shares only read-only inputs (the enumerated space bundle and
the evaluation cache).  :func:`parallel_map` runs such a bag across a
process pool and returns results in input order.

The pool uses the ``fork`` start method so task closures — strategy and
evaluator factories capturing the multi-hundred-MB latency matrix — are
inherited by workers copy-on-write instead of being pickled.  Only the
(small, picklable) task descriptions and results cross the process
boundary.  Where ``fork`` is unavailable the map degrades to the serial
path, which is always behaviorally identical: determinism comes from
per-task seeds, never from execution order.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Callable, Sequence, TypeVar

__all__ = ["parallel_map", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")

#: Set pre-fork so workers can find the (fn, items) closure without
#: pickling it; reset to ``None`` once the pool is done.
_FORK_PAYLOAD: tuple[Callable, Sequence] | None = None

#: True inside pool workers — nested parallel_map calls run serially
#: instead of forking a pool-per-worker bomb.
_IN_WORKER = False


def resolve_workers(workers: int | None) -> int:
    """Default worker count: all *usable* CPUs, at least 1."""
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return workers
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _call_payload(index: int):
    fn, items = _FORK_PAYLOAD
    return fn(items[index])


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int | None = None,
    backend: str = "process",
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across a process pool.

    ``backend`` is ``"serial"`` or ``"process"``.  The process backend
    falls back to serial when it cannot help (one item, one worker,
    already inside a worker) or cannot fork; results are identical
    either way and always ordered like ``items``.
    """
    if backend not in ("serial", "process"):
        raise ValueError(f"backend must be 'serial' or 'process', got {backend!r}")
    items = list(items)
    workers = min(resolve_workers(workers), max(len(items), 1))
    if backend == "serial" or workers <= 1 or len(items) <= 1 or _IN_WORKER:
        return [fn(item) for item in items]
    if "fork" not in multiprocessing.get_all_start_methods():
        warnings.warn(
            "process backend needs the 'fork' start method; running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(item) for item in items]

    global _FORK_PAYLOAD
    if _FORK_PAYLOAD is not None:  # re-entrant call in the parent
        return [fn(item) for item in items]
    _FORK_PAYLOAD = (fn, items)
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=workers, initializer=_mark_worker) as pool:
            return pool.map(_call_payload, range(len(items)), chunksize=1)
    finally:
        _FORK_PAYLOAD = None
