"""Pluggable execution backends for embarrassingly parallel work.

The repeat experiments (Fig. 5/6, Tables 2-3) are bags of fully
independent searches: every (strategy, scenario, repeat) task owns its
seed and shares only read-only inputs (the enumerated space bundle and
the evaluation cache).  This module defines *how* such a bag executes:

* :class:`ExecutionBackend` — the protocol every backend implements
  (``map`` over a bag of callables, ``run_tasks`` over a prepared
  :class:`~repro.search.runner.GridRun`);
* a registry (:func:`register_backend` / :func:`get_backend` /
  :func:`list_backends` / :func:`build_backend`) mirroring the
  strategy / hardware / accuracy-source registries, so backend names
  are validated in exactly one place and third-party backends join
  the same table;
* the two built-in single-host backends: :class:`SerialBackend` (the
  historical in-process loop) and :class:`ProcessBackend` (a
  fork-based process pool).  The ``cluster`` backend — multiple
  worker *processes*, possibly on different machines, coordinating
  through a shared :class:`~repro.parallel.ledger.RunLedger` — lives
  in :mod:`repro.parallel.cluster` and registers itself on import.

:func:`parallel_map` is the historical map entry point, now routed
through the registry.  The process pool uses the ``fork`` start method
so task closures — strategy and evaluator factories capturing the
multi-hundred-MB latency matrix — are inherited by workers
copy-on-write instead of being pickled.  Only the (small, picklable)
task descriptions and results cross the process boundary.  Where
``fork`` is unavailable the map degrades to the serial path, which is
always behaviorally identical: determinism comes from per-task seeds,
never from execution order.
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
import warnings
from typing import Callable, Sequence, TypeVar

__all__ = [
    "BackendError",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "register_backend",
    "get_backend",
    "list_backends",
    "build_backend",
    "validate_backend_params",
    "fork_available",
    "parallel_map",
    "resolve_workers",
]

T = TypeVar("T")
R = TypeVar("R")

#: Set pre-fork so workers can find the (fn, items) closure without
#: pickling it; reset to ``None`` once the pool is done.
_FORK_PAYLOAD: tuple[Callable, Sequence] | None = None

#: True inside pool workers — nested parallel_map calls run serially
#: instead of forking a pool-per-worker bomb.
_IN_WORKER = False


def resolve_workers(workers: int | None) -> int:
    """Default worker count: all *usable* CPUs, at least 1."""
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return workers
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def _call_payload(index: int):
    fn, items = _FORK_PAYLOAD
    return fn(items[index])


class BackendError(ValueError):
    """A backend name or its declarative params could not be resolved."""


class ExecutionBackend:
    """How a bag of independent seeded tasks executes.

    Subclasses set :attr:`name` and implement :meth:`run_tasks` (drive
    a prepared grid of (job, repeat) searches); backends that can also
    serve plain function maps override :meth:`map`.  Construction
    parameters become the backend's declarative params — a
    :class:`~repro.core.study.StudySpec` names a backend as
    ``execution.backend`` plus ``execution.backend_params`` and the
    study builder resolves it through :func:`build_backend`.

    Determinism contract: a backend schedules *which process runs
    which task*, never what a task computes.  Per-repeat seeds depend
    only on the master seed and the repeat index, so every backend
    must produce bit-identical results for the same grid.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    def map(self, fn: Callable[[T], R], items: Sequence[T], workers: int | None = None) -> list[R]:
        """Map ``fn`` over ``items``, returning results in input order."""
        raise BackendError(
            f"backend {self.name!r} cannot serve parallel_map (it "
            "coordinates grid tasks, not plain function maps); "
            "map-capable backends: serial, process"
        )

    def run_tasks(self, grid) -> dict:
        """Run ``grid``'s pending (job, repeat) tasks; task -> result.

        ``grid`` is a :class:`repro.search.runner.GridRun`: the
        prepared task bag plus the serial/worker execution closures a
        backend composes (``run_one``, ``run_in_worker``,
        ``merge_worker_payloads``).
        """
        raise NotImplementedError

    def describe_execution(self, grid) -> dict:
        """Ledger-recordable summary of how ``grid`` will execute.

        ``requested`` is the backend's registered name; ``effective``
        is what will actually run the tasks (e.g. the process backend
        degrades to ``serial`` where ``fork`` is unavailable).  The
        run ledger records this per run so resumed or served studies
        can report which backend really executed them.
        """
        return {"requested": self.name, "effective": self.name}


class SerialBackend(ExecutionBackend):
    """The historical in-process loop: tasks run one by one, in order."""

    name = "serial"

    def map(self, fn, items, workers=None):
        return [fn(item) for item in items]

    def run_tasks(self, grid) -> dict:
        return {task: grid.run_one(task) for task in grid.pending}


class ProcessBackend(ExecutionBackend):
    """Fork-based process pool spreading tasks across local CPUs."""

    name = "process"

    def _effective(self, n_items: int, workers: int | None) -> str:
        workers = min(resolve_workers(workers), max(n_items, 1))
        if workers <= 1 or n_items <= 1 or _IN_WORKER or not fork_available():
            return "serial"
        return "process"

    def map(self, fn, items, workers=None):
        items = list(items)
        workers = min(resolve_workers(workers), max(len(items), 1))
        if workers <= 1 or len(items) <= 1 or _IN_WORKER:
            return [fn(item) for item in items]
        if not fork_available():
            warnings.warn(
                "process backend needs the 'fork' start method; running serially",
                RuntimeWarning,
                stacklevel=3,
            )
            return [fn(item) for item in items]

        global _FORK_PAYLOAD
        if _FORK_PAYLOAD is not None:  # re-entrant call in the parent
            return [fn(item) for item in items]
        _FORK_PAYLOAD = (fn, items)
        try:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=workers, initializer=_mark_worker) as pool:
                return pool.map(_call_payload, range(len(items)), chunksize=1)
        finally:
            _FORK_PAYLOAD = None

    def run_tasks(self, grid) -> dict:
        grid.prepare_for_workers()
        payloads = self.map(grid.run_in_worker, grid.pending, workers=grid.workers)
        return grid.merge_worker_payloads(payloads)

    def describe_execution(self, grid) -> dict:
        description = super().describe_execution(grid)
        description["effective"] = self._effective(len(grid.pending), grid.workers)
        description["workers"] = min(
            resolve_workers(grid.workers), max(len(grid.pending), 1)
        )
        return description


#: Backend modules imported lazily on first lookup so each can
#: register itself without import cycles (cluster pulls in the ledger).
_BUILTIN_MODULES = ("repro.parallel.cluster",)

_REGISTRY: dict[str, type[ExecutionBackend]] = {}


def _ensure_builtins() -> None:
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def register_backend(
    cls: type[ExecutionBackend] | None = None,
    name: str | None = None,
    overwrite: bool = False,
):
    """Register a backend class under ``name`` (default ``cls.name``).

    Usable directly (``register_backend(MyBackend)``) or as a class
    decorator.  Registering a *different* class under a taken name
    raises unless ``overwrite`` is set; re-registering the same class
    is a no-op, so modules can register at import time safely.
    """

    def _register(backend_cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
        key = name or backend_cls.name
        if not key:
            raise BackendError(
                f"backend class {backend_cls.__name__} has no name; set the "
                "`name` class attribute or pass name= to register_backend"
            )
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not backend_cls and not overwrite:
            raise BackendError(
                f"backend name {key!r} is already registered to "
                f"{existing.__name__}; pass overwrite=True to replace it"
            )
        _REGISTRY[key] = backend_cls
        return backend_cls

    return _register if cls is None else _register(cls)


def list_backends() -> list[str]:
    """Registered backend names, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def get_backend(name: str) -> type[ExecutionBackend]:
    """The backend class registered under ``name``."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def validate_backend_params(name: str, params: dict | None) -> None:
    """Check ``params`` names against the backend's constructor.

    Raises :class:`BackendError` naming the backend and the unknown
    field(s); value errors are left to construction time.
    """
    cls = get_backend(name)
    if not params:
        return
    if not isinstance(params, dict):
        raise BackendError(
            f"backend {name!r}: backend_params must be a mapping, "
            f"got {type(params).__name__}"
        )
    if cls.__init__ is object.__init__:
        # No constructor at all (e.g. serial/process): params can only
        # be a mistake — object.__init__'s *args/**kwargs would
        # otherwise make everything look acceptable here and then
        # explode at construction time.
        raise BackendError(
            f"backend {name!r} takes no parameters, got {sorted(params)}"
        )
    signature = inspect.signature(cls.__init__)
    names = set(signature.parameters) - {"self"}
    if any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in signature.parameters.values()
    ):
        return
    unknown = sorted(set(params) - names)
    if unknown:
        raise BackendError(
            f"backend {name!r} got unknown parameter(s) {unknown}; "
            f"allowed: {sorted(names)}"
        )


def build_backend(name: str, params: dict | None = None) -> ExecutionBackend:
    """Construct a registered backend from its flat parameter mapping."""
    validate_backend_params(name, params)
    cls = get_backend(name)
    try:
        return cls(**(params or {}))
    except BackendError:
        raise
    except (TypeError, ValueError) as err:
        raise BackendError(f"backend {name!r}: {err}") from err


register_backend(SerialBackend)
register_backend(ProcessBackend)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int | None = None,
    backend: str = "process",
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across a process pool.

    ``backend`` names a registered :class:`ExecutionBackend` (see
    :func:`list_backends`).  The process backend falls back to serial
    when it cannot help (one item, one worker, already inside a
    worker) or cannot fork; results are identical either way and
    always ordered like ``items``.
    """
    backend_obj = get_backend(backend)()
    return backend_obj.map(fn, list(items), workers=workers)
