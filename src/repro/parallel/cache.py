"""Shared, persistent evaluation cache (the warm-start store).

Searches revisit (cell, accelerator) pairs constantly — within a run,
across the 10 paper repeats, and across re-runs of the same experiment.
The in-memory dicts inside :class:`repro.core.CodesignEvaluator` only
help within one process lifetime; :class:`EvalCache` extends that
memoization to disk so repeats, worker processes, and whole re-runs
share one pool of already-evaluated points.

The store is a single sqlite file keyed by
``(scenario, spec_hash, config_key)`` holding the deterministic metric
triple ``(accuracy, latency_s, area_mm2)`` plus an optional JSON
``extra`` payload (used by :class:`repro.training.CachedTrainer` to
persist GPU-hour ledgers).  Because every metric in the library is a
pure function of the key, caching can never change results — only how
fast they are produced.

Concurrency model: writers buffer rows in memory and persist them in
one transaction on :meth:`flush`.  Worker processes open the store
``read_only`` and ship their buffered rows back to the parent (via
:meth:`drain_pending`), which merges them — so within one run there is
a single writer per file and no cross-process locking is needed.
Independent runs may still share one store: every row is an ``INSERT
OR REPLACE`` of a pure function of its key, and flush transactions
serialize on sqlite's file lock (``busy_timeout``), so concurrent
writers can interleave but never lose or corrupt each other's rows
(see ``tests/parallel/test_cache_concurrency.py``).  Misses are
memoized only until the next :meth:`flush`/:meth:`merge` — positive
rows are immutable facts, but "absent" is a statement about a moment
in time, and a long-lived run must eventually observe rows its
neighbours write.

A corrupted or unreadable store is never fatal: it is moved aside and
the cache restarts cold (see ``recovered``).
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["CacheEntry", "EvalCache"]

#: How long a blocked connection waits on sqlite's file lock before
#: raising — generous, because flushes are rare and transactional.
_BUSY_TIMEOUT_MS = 30_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS evals (
    scenario   TEXT NOT NULL,
    spec_hash  TEXT NOT NULL,
    config_key TEXT NOT NULL,
    accuracy   REAL,
    latency_s  REAL,
    area_mm2   REAL,
    extra      TEXT,
    PRIMARY KEY (scenario, spec_hash, config_key)
)
"""


@dataclass(frozen=True)
class CacheEntry:
    """One cached evaluation: key triple + metric triple (+ extras).

    ``accuracy is None`` records "this pair is not evaluable" (e.g. a
    cell outside the NASBench database) — a negative result worth
    caching, since searches repropose such cells too.
    """

    scenario: str
    spec_hash: str
    config_key: str
    accuracy: float | None
    latency_s: float | None
    area_mm2: float | None
    extra: dict | None = None

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.scenario, self.spec_hash, self.config_key)


class EvalCache:
    """Sqlite-backed evaluation store with buffered writes.

    ``path=None`` keeps the store purely in memory (useful in tests and
    as a serial-mode default); otherwise the parent directory is
    created on demand.  ``read_only=True`` disables :meth:`flush` so a
    worker process can consult the store and buffer new rows without
    ever writing the file (see :meth:`drain_pending`).
    """

    def __init__(self, path: str | Path | None = None, read_only: bool = False) -> None:
        self.path = Path(path) if path is not None else None
        self.read_only = read_only
        #: Pid of the process that opened the connection.  Sqlite
        #: handles are not fork-safe, so a cache observed in a process
        #: other than ``owner_pid`` was inherited through fork and must
        #: not be used (see run_grid's worker-side detach guard).
        self.owner_pid = os.getpid()
        self.hits = 0
        self.misses = 0
        self.recovered = False
        self._pending: dict[tuple[str, str, str], CacheEntry] = {}
        self._loaded: dict[tuple[str, str, str], CacheEntry | None] = {}
        self._conn = self._open()

    # -- lifecycle ---------------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        if self.path is None:
            conn = sqlite3.connect(":memory:")
            conn.execute(_SCHEMA)
            return conn
        if self.read_only:
            # A read-only view must never touch the file — not even to
            # create the schema or quarantine a corrupt store (many
            # workers may open concurrently).  Missing/corrupt/foreign
            # files just serve cold from memory; the writable owner
            # recovers the file.
            try:
                conn = sqlite3.connect(f"file:{self.path}?mode=ro", uri=True)
                conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
                conn.execute("SELECT COUNT(*) FROM evals").fetchone()
                return conn
            except sqlite3.Error:
                self.recovered = True
                conn = sqlite3.connect(":memory:")
                conn.execute(_SCHEMA)
                return conn
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = None
        try:
            conn = sqlite3.connect(self.path)
            # Concurrent writers (several independent runs sharing one
            # store) serialize on sqlite's file lock instead of failing
            # with "database is locked".
            conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
            conn.execute(_SCHEMA)
            conn.execute("SELECT COUNT(*) FROM evals").fetchone()
            return conn
        except sqlite3.OperationalError:
            # Locked / unopenable is an environment problem, not
            # corruption — never quarantine a healthy concurrent store.
            raise
        except sqlite3.DatabaseError:
            # Corrupted (or not actually sqlite): fall back to cold.
            if conn is not None:
                conn.close()
            self.recovered = True
            quarantine = self.path.with_suffix(self.path.suffix + ".corrupt")
            quarantine.unlink(missing_ok=True)
            self.path.rename(quarantine)
            conn = sqlite3.connect(self.path)
            conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
            conn.execute(_SCHEMA)
            return conn

    def close(self) -> None:
        """Flush buffered rows, then release the connection.

        Without the flush, ``with EvalCache(path) as c: c.put(...)``
        silently dropped every row still buffered in ``_pending`` —
        the context manager read as "durably persisted" but closing
        discarded the buffer.  Only the writable owner flushes: a
        ``read_only`` view must never write (drain it instead), and a
        fork-inherited cache must not touch the parent's connection at
        all (closing it could roll back the parent's in-flight
        transaction), so a non-owner ``close`` abandons the handle
        exactly like :meth:`__del__` does.
        """
        if os.getpid() != self.owner_pid:
            return
        try:
            if not self.read_only:
                self.flush()
        finally:
            self._conn.close()

    def __del__(self) -> None:
        # Release the file descriptor as soon as the cache itself is
        # unreachable (i.e. promptly, via refcounting).  Without this,
        # sqlite connections linger in reference cycles until the
        # cycle collector runs, and a long-lived worker churning
        # through task-local caches accumulates open fds.
        try:
            if os.getpid() != self.owner_pid:
                # Fork-inherited connection: abandon, never close — a
                # close could roll back the parent's in-flight
                # transaction on the shared database file.
                return
            self._conn.close()
        except Exception:
            pass  # never raise from a finalizer (shutdown, half-init)

    def __enter__(self) -> "EvalCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reads -------------------------------------------------------------
    def get(self, scenario: str, spec_hash: str, config_key: str) -> CacheEntry | None:
        """Look up one key; ``None`` on miss.  Hot keys are memoized."""
        key = (scenario, spec_hash, config_key)
        if key in self._pending:
            self.hits += 1
            return self._pending[key]
        if key in self._loaded:
            entry = self._loaded[key]
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
            return entry
        row = self._conn.execute(
            "SELECT accuracy, latency_s, area_mm2, extra FROM evals"
            " WHERE scenario=? AND spec_hash=? AND config_key=?",
            key,
        ).fetchone()
        if row is None:
            self._loaded[key] = None
            self.misses += 1
            return None
        entry = CacheEntry(
            scenario,
            spec_hash,
            config_key,
            accuracy=row[0],
            latency_s=row[1],
            area_mm2=row[2],
            extra=json.loads(row[3]) if row[3] else None,
        )
        self._loaded[key] = entry
        self.hits += 1
        return entry

    def __len__(self) -> int:
        """Rows persisted on disk (pending buffered rows not counted)."""
        return int(self._conn.execute("SELECT COUNT(*) FROM evals").fetchone()[0])

    @property
    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "pending": len(self._pending),
            "persisted": len(self),
        }

    # -- writes ------------------------------------------------------------
    def put(self, entry: CacheEntry) -> None:
        """Buffer one row (persisted on the next :meth:`flush`)."""
        self._pending[entry.key] = entry

    def put_many(self, entries: Iterable[CacheEntry]) -> None:
        for entry in entries:
            self.put(entry)

    def drain_pending(self) -> list[CacheEntry]:
        """Return-and-clear the buffered rows (worker → parent handoff)."""
        entries = list(self._pending.values())
        self._pending.clear()
        self._loaded.update({e.key: e for e in entries})
        return entries

    def _forget_misses(self) -> None:
        """Drop memoized misses so later ``get``\\ s re-query the store.

        Positive memos are pure functions of their key and can never go
        stale; a miss, however, only says the row was absent *at lookup
        time* — an independent run sharing the store may well have
        written it since.  Without this, a long-lived parent memoizes
        its first miss forever and never observes concurrent writers.
        """
        self._loaded = {k: v for k, v in self._loaded.items() if v is not None}

    def flush(self) -> int:
        """Persist buffered rows in one transaction; returns row count.

        Also invalidates memoized misses — flush boundaries are where a
        run synchronizes with the store, so they are the natural point
        to start observing rows concurrent runs have written since.

        A ``read_only`` cache keeps its buffer (drain it instead).
        """
        self._forget_misses()
        if self.read_only or not self._pending:
            return 0
        entries = self.drain_pending()
        self._conn.executemany(
            "INSERT OR REPLACE INTO evals"
            " (scenario, spec_hash, config_key, accuracy, latency_s, area_mm2, extra)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    e.scenario,
                    e.spec_hash,
                    e.config_key,
                    e.accuracy,
                    e.latency_s,
                    e.area_mm2,
                    json.dumps(e.extra) if e.extra is not None else None,
                )
                for e in entries
            ],
        )
        self._conn.commit()
        return len(entries)

    def merge(self, entries: Sequence[CacheEntry]) -> int:
        """Absorb rows produced elsewhere (a worker's delta) and flush."""
        self.put_many(entries)
        return self.flush()
