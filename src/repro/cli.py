"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro run table1
    python -m repro run fig4 --out results/fig4.md
    python -m repro run fig7 --scale default --seed 1
    python -m repro run fig5+6 --scale paper --workers 8 --cache-dir .cache/repro
    python -m repro run fig5 --scenario "perf-area>=16" --batch-size 16
    python -m repro run fig5+6 --scenario-file my_scenarios.json
    python -m repro run fig5+6 --scale paper --ledger results/fig56.ledger
    python -m repro resume fig5+6 --scale paper --ledger results/fig56.ledger
    python -m repro run fig5+6 --backend cluster --workers 4 --ledger state/f.ledger
    python -m repro worker --ledger state/f.ledger --cache state/evals.sqlite
    python -m repro run all --scale smoke
    python -m repro study list
    python -m repro study show fig5
    python -m repro study run fig5 --set execution.batch_size=16
    python -m repro study run examples/study_fig5.json --set execution.num_steps=5
    python -m repro hw list
    python -m repro hw show dac2020-scaled
    python -m repro workload list
    python -m repro workload show transformer
    python -m repro study run bert-u50 --surrogate --exact-fraction 0.1
    python -m repro run fig5 --hardware embedded-lite
    python -m repro study run smoke --hardware dac2020-scaled --set 'hardware.params.clock_mhz=300'
    python -m repro study run hw-sweep
    python -m repro serve --state-dir results/server --port 8321
    python -m repro submit smoke --set execution.num_steps=5 --watch
    python -m repro status st-1f2e3d4c5b6a
    python -m repro watch st-1f2e3d4c5b6a --out results/served.md
    python -m repro cancel st-1f2e3d4c5b6a

``repro study`` drives the declarative experiment API
(:mod:`repro.core.study`): ``show`` prints a preset (or spec file) as
JSON, ``run`` materializes it through the strategy / accuracy-source /
hardware-platform registries and runs the grid.  ``repro hw`` inspects
the hardware-platform registry (:mod:`repro.hw`); ``repro workload``
inspects the workload registry (:mod:`repro.workloads`) and
``--workload NAME`` swaps a spec's model family the same way
``--hardware`` swaps its platform.  ``--hardware NAME``
swaps the platform the search-study experiments (and fig7) evaluate
on — evaluations from different platforms never share cache rows.  ``--set path=value`` overrides single
spec fields (dotted paths into the JSON structure, values parsed as
JSON with a plain-string fallback); a spec whose ``execution.ledger``
names a file is crash-safe, and resuming it with *any* edited spec is
refused because the ledger pins ``spec.to_dict()``.

``repro serve`` runs the study server (:mod:`repro.server`): an
HTTP/JSON API over a ledger-backed study queue, with every study
executed crash-safely against its own run ledger.  ``repro
submit|status|watch|cancel`` are its clients — ``submit`` resolves
specs exactly like ``study run`` (same ``--set``/``--hardware``/
``--tensorize``) and ``watch`` prints the same report, so a served
study and a local run are directly comparable.  The server address
comes from ``--server``, ``REPRO_SERVER``, or the default
``http://127.0.0.1:8321``.

Each experiment prints the same rows the paper reports (markdown) and
can optionally write them to a file.  ``--workers N`` (N > 1) fans the
repeat experiments out across a process pool; ``--cache-dir`` persists
every evaluation to ``<dir>/eval_cache.sqlite`` so re-runs warm-start.
Neither flag changes search results — determinism comes from ``--seed``
alone.  ``--backend NAME`` picks the execution backend explicitly from
the registry (``serial`` / ``process`` / ``cluster`` built in); the
``cluster`` backend additionally lets external ``repro worker``
processes — on this machine or any machine sharing the state files —
join the run elastically, with identical results at any worker count.  ``--scenario`` / ``--scenario-file`` run the search study under
registry or JSON-declared scenarios instead of the paper's three (see
``docs/reproducing.md``); ``--batch-size B`` evaluates B proposals per
ask/tell step (B=1 reproduces the per-point loop bit for bit, larger B
is several times faster under per-strategy batch semantics).  One
caveat: fig7's "simulated GPU-hours" line reports only the training
cost *newly paid* by the current run, so a warm ``--cache-dir`` re-run
legitimately shows fewer (typically 0) GPU-hours.

``--ledger FILE`` makes the search-study experiments crash-safe:
finished (scenario, strategy, repeat) searches are persisted to FILE
as they complete and in-flight searches checkpoint every
``--checkpoint-every`` batches, so after a crash ``repro resume`` (the
same command with ``run`` replaced) skips completed repeats and
restarts interrupted ones from their checkpoints — producing exactly
the rows an uninterrupted run would have printed.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.core.scenarios import ScenarioError, resolve_scenarios
from repro.core.study import (
    StudyError,
    outcome_summary,
    parse_assignments,
    run_study,
)
from repro.experiments.ablations import ablation_markdown, run_all_ablations
from repro.experiments.common import Scale, eval_cache_path, load_bundle
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.presets import list_presets, resolve_spec
from repro.experiments.search_study import _run_search_study
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.validation import run_validation
from repro.hw import (
    HardwarePlatformError,
    build_platform,
    get_platform,
    list_platforms,
)
from repro.parallel import EvalCache, RunLedger, list_backends

__all__ = ["main", "RunContext", "EXPERIMENTS"]


@dataclass
class RunContext:
    """Everything an experiment runner needs from the command line."""

    scale: Scale
    seed: int
    workers: int | None = None
    eval_cache: EvalCache | None = None
    scenarios: dict | None = None
    batch_size: int = 1
    ledger: RunLedger | None = None
    checkpoint_every: int = 10
    hardware: str | None = None
    tensorize: bool = False
    surrogate: bool = False
    exact_fraction: float = 0.25
    backend_name: str | None = None
    _study: object = None

    @property
    def backend(self) -> str:
        """The requested --backend, else derived from --workers."""
        if self.backend_name is not None:
            return self.backend_name
        return "process" if (self.workers or 1) > 1 else "serial"

    def study(self):
        """The Fig. 5/6 search study, computed once per invocation.

        ``run all`` regenerates fig5, fig6, and fig5+6 from one grid
        run instead of three identical ones.
        """
        if self._study is None:
            self._study = _run_search_study(
                load_bundle(),
                self.scale,
                scenarios=self.scenarios,
                master_seed=self.seed,
                backend=self.backend,
                workers=self.workers,
                eval_cache=self.eval_cache,
                batch_size=self.batch_size,
                ledger=self.ledger,
                checkpoint_every=self.checkpoint_every,
                hardware=self.hardware,
                tensorize=self.tensorize,
                surrogate=self.surrogate,
                exact_fraction=self.exact_fraction,
            )
        return self._study


def _run_table1(ctx: RunContext) -> str:
    return run_table1().to_markdown()


def _run_validation(ctx: RunContext) -> str:
    return run_validation(seed=ctx.seed or 7).to_markdown()


def _run_fig4(ctx: RunContext) -> str:
    return run_fig4(load_bundle()).to_markdown()


def _run_fig5(ctx: RunContext) -> str:
    return run_fig5(study=ctx.study()).to_markdown()


def _run_fig6(ctx: RunContext) -> str:
    return run_fig6(study=ctx.study()).to_markdown()


def _run_fig56(ctx: RunContext) -> str:
    study = ctx.study()
    return (
        run_fig5(study=study).to_markdown()
        + "\n\n"
        + run_fig6(study=study).to_markdown()
    )


def _run_fig7(ctx: RunContext) -> str:
    fig7 = run_fig7(
        scale=ctx.scale,
        seed=ctx.seed,
        train_store=ctx.eval_cache,
        platform=build_platform(ctx.hardware) if ctx.hardware else None,
    )
    return "\n\n".join(
        [fig7.to_markdown(), run_table2(fig7).to_markdown(), run_table3(fig7).to_markdown()]
    )


def _run_ablations(ctx: RunContext) -> str:
    return ablation_markdown(run_all_ablations(load_bundle(), ctx.scale))


#: Experiment name -> runner returning a markdown report.
EXPERIMENTS: dict[str, Callable[[RunContext], str]] = {
    "table1": _run_table1,
    "validation": _run_validation,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig5+6": _run_fig56,
    "fig7": _run_fig7,
    "ablations": _run_ablations,
}

#: Experiments driven by the Fig. 5/6 search study — the only ones
#: --scenario / --scenario-file / --batch-size apply to.
STUDY_EXPERIMENTS = ("fig5", "fig6", "fig5+6")

#: Experiments that evaluate on a hardware platform — the ones
#: --hardware applies to (the search study plus the fig7 flow).
HARDWARE_EXPERIMENTS = STUDY_EXPERIMENTS + ("fig7",)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Codesign-NAS reproduction: regenerate paper tables/figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    _add_run_arguments(run)
    resume = sub.add_parser(
        "resume",
        help="resume an interrupted --ledger run (same arguments as 'run'; "
        "completed repeats are loaded, interrupted ones restart from "
        "their last checkpoint)",
    )
    _add_run_arguments(resume)
    hw = sub.add_parser(
        "hw",
        help="hardware-platform registry: list registered platforms or "
        "show one platform's parameters and config space (see repro.hw)",
    )
    hw_sub = hw.add_subparsers(dest="hw_command", required=True)
    hw_sub.add_parser("list", help="list registered hardware platforms")
    hw_show = hw_sub.add_parser(
        "show", help="print one platform's description as JSON"
    )
    hw_show.add_argument(
        "platform",
        metavar="PLATFORM",
        help="a registered platform name (see 'repro hw list')",
    )
    hw_show.add_argument(
        "--set",
        action="append",
        default=[],
        dest="params",
        metavar="NAME=VALUE",
        help="build the platform with this parameter (repeatable; values "
        "parse as JSON, falling back to strings) — parametric "
        "platforms report their *effective* config-space size after "
        "budget caps, so e.g. --set max_pixel_par=16 shrinks it",
    )
    hw_validate = hw_sub.add_parser(
        "validate-surrogate",
        help="score a platform's fitted cost surrogate against the exact "
        "models on a fresh held-out sample; exits non-zero when the "
        "error budget is exceeded (see repro.hw.surrogate)",
    )
    hw_validate.add_argument(
        "platform",
        metavar="PLATFORM",
        help="a registered platform name, with or without the "
        "'surrogate:' prefix (see 'repro hw list')",
    )
    hw_validate.add_argument(
        "--samples",
        type=int,
        default=256,
        metavar="N",
        help="held-out configurations to score (default: 256)",
    )
    hw_validate.add_argument(
        "--seed",
        type=int,
        default=1,
        metavar="SEED",
        help="RNG seed of the held-out sample (default: 1; disjoint "
        "stream from the fit regardless of value)",
    )
    workload = sub.add_parser(
        "workload",
        help="workload registry: list registered workloads or show one "
        "workload's encoding, accuracy sources, and compatible "
        "platforms (see repro.workloads)",
    )
    workload_sub = workload.add_subparsers(dest="workload_command", required=True)
    workload_sub.add_parser("list", help="list registered workloads")
    workload_show = workload_sub.add_parser(
        "show", help="print one workload's description as JSON"
    )
    workload_show.add_argument(
        "workload",
        metavar="WORKLOAD",
        help="a registered workload name (see 'repro workload list')",
    )
    study = sub.add_parser(
        "study",
        help="declarative experiments: run/show StudySpec presets or "
        "JSON spec files (see repro.core.study)",
    )
    study_sub = study.add_subparsers(dest="study_command", required=True)
    study_sub.add_parser("list", help="list shipped study presets")
    for command, description in (
        ("show", "print the resolved spec as JSON (after --set overrides)"),
        ("run", "materialize the spec through the registries and run it"),
    ):
        sp = study_sub.add_parser(command, help=description)
        _add_spec_arguments(sp)
        if command == "run":
            sp.add_argument(
                "--scale",
                choices=("smoke", "default", "paper"),
                default=None,
                help="fills num_steps/num_repeats the spec leaves null "
                "(defaults to REPRO_SCALE or 'smoke')",
            )
            sp.add_argument(
                "--out", type=Path, default=None, help="write report to file"
            )
    _add_server_parsers(sub)
    # Listed for --help only: `repro worker ...` is intercepted in
    # main() and delegated to repro.parallel.worker's own parser.
    sub.add_parser(
        "worker",
        add_help=False,
        help="join a cluster-backend run as an extra worker: claim "
        "ledger-leased tasks until the run completes (see "
        "'repro worker --help' and python -m repro.parallel.worker)",
    )
    return parser


def _add_spec_arguments(sp: argparse.ArgumentParser) -> None:
    """The spec-selecting arguments 'study show/run' and 'submit' share."""
    sp.add_argument(
        "spec",
        metavar="PRESET|SPEC.json",
        help="a shipped preset name (see 'repro study list') or a "
        "JSON spec file path",
    )
    sp.add_argument(
        "--set",
        action="append",
        default=[],
        dest="overrides",
        metavar="PATH=VALUE",
        help="override one spec field by dotted path, e.g. "
        "--set execution.batch_size=16 (repeatable; values parse "
        "as JSON, falling back to strings)",
    )
    sp.add_argument(
        "--hardware",
        default=None,
        metavar="PLATFORM",
        help="replace the spec's hardware field with this registered "
        "platform (shorthand for overriding 'hardware'; applied "
        "before --set, so --set hardware.params.X=... can refine it)",
    )
    sp.add_argument(
        "--workload",
        default=None,
        metavar="WORKLOAD",
        help="replace the spec's workload field with this registered "
        "workload (shorthand for --set workload=NAME, applied before "
        "--set; the spec's accuracy source and platforms must be "
        "compatible — see 'repro workload list')",
    )
    sp.add_argument(
        "--tensorize",
        action="store_true",
        help="shorthand for --set execution.tensorize=true: answer "
        "batch evaluations from dense full-config-space tensors "
        "(bit-identical; per-platform 'tensorize' fields in the "
        "spec's hardware entries override it)",
    )
    sp.add_argument(
        "--surrogate",
        action="store_true",
        help="shorthand for --set execution.surrogate=true: two-tier "
        "search — strategies propose inflated batches, a learned cost "
        "surrogate ranks them, and only the top --exact-fraction "
        "slice is evaluated exactly (exact results are all that is "
        "told/cached/ledgered; see repro.hw.surrogate)",
    )
    sp.add_argument(
        "--exact-fraction",
        type=float,
        default=None,
        metavar="F",
        help="with --surrogate: fraction (0, 1] of each surrogate-ranked "
        "batch that earns an exact evaluation (default: the spec's "
        "execution.exact_fraction, 0.25)",
    )


def _add_server_arg(sp: argparse.ArgumentParser) -> None:
    sp.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="study server base URL (defaults to REPRO_SERVER or "
        "http://127.0.0.1:8321)",
    )


def _add_server_parsers(sub) -> None:
    """The serving side: 'serve' plus its 'submit|status|watch|cancel' clients."""
    serve = sub.add_parser(
        "serve",
        help="run the study server: an HTTP/JSON API over a ledger-backed "
        "study queue (see repro.server; POST specs with 'repro submit')",
    )
    serve.add_argument(
        "--state-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="server state root: queue ledger, per-study run ledgers, "
        "sharded eval caches (default <cache-dir>/server)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="bind port (0 picks an ephemeral one and prints it)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="concurrent studies (each runs in its own runner subprocess)",
    )
    serve.add_argument(
        "--scale",
        choices=("smoke", "default", "paper"),
        default=None,
        help="sizing preset for every served study (default REPRO_SCALE "
        "or 'smoke')",
    )
    serve.add_argument(
        "--import",
        action="append",
        default=[],
        dest="imports",
        metavar="MODULE",
        help="import MODULE inside every study runner before the spec is "
        "materialized (registers plugin accuracy sources, platforms, "
        "strategies; repeatable)",
    )
    serve.add_argument(
        "--stale-after",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="re-lease a running study whose heartbeat is older than this "
        "(how fast a restarted server resumes studies a killed one "
        "left behind)",
    )
    submit = sub.add_parser(
        "submit",
        help="submit a study spec to a running server; prints the study id",
    )
    _add_spec_arguments(submit)
    _add_server_arg(submit)
    submit.add_argument(
        "--watch",
        action="store_true",
        help="follow the submitted study to completion (same as "
        "'repro watch <id>')",
    )
    submit.add_argument(
        "--out",
        type=Path,
        default=None,
        help="with --watch, write the final report to a file",
    )
    status = sub.add_parser(
        "status",
        help="list the server's studies, or show one study's full status",
    )
    status.add_argument(
        "study",
        nargs="?",
        default=None,
        metavar="STUDY_ID",
        help="a study id (omit to list every study)",
    )
    _add_server_arg(status)
    watch = sub.add_parser(
        "watch",
        help="stream one study's progress until it finishes; prints the "
        "same report 'repro study run' would",
    )
    watch.add_argument("study", metavar="STUDY_ID")
    _add_server_arg(watch)
    watch.add_argument(
        "--out", type=Path, default=None, help="write the final report to a file"
    )
    cancel = sub.add_parser("cancel", help="cancel a queued or running study")
    cancel.add_argument("study", metavar="STUDY_ID")
    _add_server_arg(cancel)


def _add_run_arguments(run: argparse.ArgumentParser) -> None:
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument(
        "--scale",
        choices=("smoke", "default", "paper"),
        default=None,
        help="experiment sizing (defaults to REPRO_SCALE or 'smoke')",
    )
    run.add_argument("--seed", type=int, default=0, help="master seed")
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for repeat experiments (N>1 enables the "
        "process backend unless --backend says otherwise; results are "
        "identical at any N)",
    )
    run.add_argument(
        "--backend",
        choices=list_backends(),
        default=None,
        metavar="NAME",
        help="execution backend for the repeat experiments "
        f"({', '.join(list_backends())}; default: derived from "
        "--workers).  'cluster' coordinates through the --ledger file "
        "and accepts extra 'repro worker' processes joining mid-run; "
        "every backend produces identical results",
    )
    run.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="persist evaluations to DIR/eval_cache.sqlite so re-runs "
        "warm-start (never changes search results; fig7's GPU-hour "
        "ledger only counts newly-paid training)",
    )
    run.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="run the search study under this registry scenario instead "
        "of the paper's three (repeatable; see "
        "repro.core.scenarios.list_scenarios, plus the parametric "
        "'perf-area>=N' family)",
    )
    run.add_argument(
        "--scenario-file",
        type=Path,
        default=None,
        metavar="SPEC.json",
        help="add every scenario declared in a JSON spec file to the "
        "search study (one spec object or a list; see "
        "docs/reproducing.md for the format)",
    )
    run.add_argument(
        "--hardware",
        default=None,
        metavar="PLATFORM",
        help="evaluate on this registered hardware platform instead of the "
        "reference dac2020 (see 'repro hw list'; applies to "
        "fig5/fig6/fig5+6/fig7 — platform evaluations never share "
        "cache rows with other platforms)",
    )
    run.add_argument(
        "--tensorize",
        action="store_true",
        help="answer batch evaluations from dense full-config-space "
        "tensors (bit-identical to the memoized path — differentially "
        "tested per platform; platforms too large to enumerate fall "
        "back silently; applies to the search-study experiments)",
    )
    run.add_argument(
        "--surrogate",
        action="store_true",
        help="two-tier search: strategies propose inflated batches, a "
        "learned cost surrogate ranks them, and only the top "
        "--exact-fraction slice is evaluated exactly (exact results "
        "are all that is told/cached/ledgered; applies to the "
        "search-study experiments; see repro.hw.surrogate)",
    )
    run.add_argument(
        "--exact-fraction",
        type=float,
        default=None,
        metavar="F",
        help="with --surrogate: fraction (0, 1] of each surrogate-ranked "
        "batch that earns an exact evaluation (default: 0.25)",
    )
    run.add_argument(
        "--batch-size",
        type=int,
        default=1,
        metavar="B",
        help="ask/tell batch size: strategies propose B points per step "
        "and evaluate them in one batch (1 = bit-identical to the "
        "historic per-point loop; >1 uses rollout/generation batches)",
    )
    run.add_argument(
        "--ledger",
        type=Path,
        default=None,
        metavar="FILE",
        help="crash-safe run ledger (sqlite): persist finished search-study "
        "repeats and mid-search checkpoints to FILE so an interrupted "
        "run can be picked up with 'repro resume'",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        metavar="N",
        help="with --ledger, checkpoint each in-flight search every N "
        "ask/tell batches (lower = finer resume granularity, more "
        "ledger writes)",
    )
    run.add_argument("--out", type=Path, default=None, help="write report to file")


def _resolve_scale(name: str | None) -> Scale:
    """An explicit --scale choice, or the REPRO_SCALE/'smoke' default."""
    if name is None:
        return Scale.from_env(default="smoke")
    return Scale.named(name)


def _summary_markdown(name: str | None, summary: dict) -> str:
    """Render a study's JSON outcome summary as the report markdown.

    The one renderer behind both ``repro study run`` (local result)
    and ``repro watch`` (the summary a server stored), so the two
    surfaces print byte-identical reports for identical outcomes —
    which is exactly what the serving CI step diffs.
    """
    from repro.utils.tables import format_markdown

    lines = [f"## study {name}" if name else "## study"]
    for scenario, by_strategy in summary.items():
        lines.append("")
        lines.append(f"### {scenario}")
        rows = []
        for strategy, cell in by_strategy.items():
            mean = cell["mean_best_reward"]
            rows.append(
                (
                    strategy,
                    round(float("nan") if mean is None else mean, 4),
                    round(cell["hit_rate"], 2),
                    cell["repeats"],
                )
            )
        lines.append(
            format_markdown(
                ["strategy", "mean_best_reward", "feasible_hit_rate", "repeats"],
                rows,
            )
        )
    return "\n".join(lines)


def _study_markdown(result) -> str:
    """Per-scenario summary rows of a spec-driven study run."""
    spec = result.extras.get("spec")
    return _summary_markdown(
        spec.name if spec is not None else None, outcome_summary(result)
    )


def _parse_hw_params(pairs: list[str], parser: argparse.ArgumentParser) -> dict:
    """Flat NAME=VALUE platform params (values JSON, falling back to str)."""
    import json

    params = {}
    for pair in pairs:
        name, sep, raw = pair.partition("=")
        if not sep or not name:
            parser.error(f"--set expects NAME=VALUE, got {pair!r}")
        try:
            params[name] = json.loads(raw)
        except json.JSONDecodeError:
            params[name] = raw
    return params


def _main_hw(args, parser: argparse.ArgumentParser) -> int:
    import json

    if args.hw_command == "list":
        from repro.hw.tensorized import TENSORIZE_MAX_CONFIGS

        sizes: dict[str, int] = {}
        for name in list_platforms():
            base = name.removeprefix("surrogate:")
            if base not in sizes:
                sizes[base] = build_platform(base).config_space().size
            size = sizes[base]
            note = (
                f"size={size}"
                if size <= TENSORIZE_MAX_CONFIGS
                else f"size={_sci(size)}, not enumerable"
            )
            print(f"{name:<24} {note}")
        return 0
    if args.hw_command == "validate-surrogate":
        from repro.hw import validate_surrogate

        try:
            report = validate_surrogate(
                args.platform, n_samples=args.samples, seed=args.seed
            )
        except HardwarePlatformError as err:
            parser.error(str(err))
        print(json.dumps(report, indent=2))
        if not report["budget"]["passed"]:
            failing = [
                metric
                for metric, verdict in report["budget"]["metrics"].items()
                if not verdict["passed"]
            ]
            print(
                f"error budget exceeded for: {', '.join(failing)}",
                file=sys.stderr,
            )
            return 1
        return 0
    try:
        entry = get_platform(args.platform)
        platform = build_platform(args.platform, _parse_hw_params(args.params, parser))
    except HardwarePlatformError as err:
        parser.error(str(err))
    description = dict(platform.describe())
    if entry.description:
        description["description"] = entry.description
    print(json.dumps(description, indent=2))
    return 0


def _sci(size: int) -> str:
    """Compact scientific size token, e.g. 393216 -> '3.9e5'."""
    exponent = len(str(size)) - 1
    return f"{size / 10 ** exponent:.1f}e{exponent}"


def _main_workload(args, parser: argparse.ArgumentParser) -> int:
    import json

    from repro.workloads import WorkloadError, get_workload, list_workloads

    if args.workload_command == "list":
        for name in list_workloads():
            print(name)
        return 0
    try:
        workload = get_workload(args.workload)
    except WorkloadError as err:
        parser.error(str(err))
    print(json.dumps(workload.describe(), indent=2))
    return 0


def _resolve_cli_spec(args, parser: argparse.ArgumentParser):
    """Resolve PRESET|SPEC.json + --hardware/--tensorize/--set to a spec."""
    try:
        spec = resolve_spec(args.spec)
        if args.hardware is not None:
            spec = spec.with_overrides({"hardware": {"name": args.hardware}})
        if args.workload is not None:
            spec = spec.with_overrides({"workload": args.workload})
        if args.tensorize:
            spec = spec.with_overrides({"execution.tensorize": True})
        if args.exact_fraction is not None and not args.surrogate:
            parser.error("--exact-fraction requires --surrogate (it only "
                         "shapes the two-tier filtering batches)")
        if args.surrogate:
            spec = spec.with_overrides({"execution.surrogate": True})
        if args.exact_fraction is not None:
            spec = spec.with_overrides(
                {"execution.exact_fraction": args.exact_fraction}
            )
        overrides = parse_assignments(args.overrides)
        if overrides:
            spec = spec.with_overrides(overrides)
    except StudyError as err:
        parser.error(str(err))
    return spec


def _main_study(args, parser: argparse.ArgumentParser) -> int:
    if args.study_command == "list":
        for name in list_presets():
            print(name)
        return 0
    spec = _resolve_cli_spec(args, parser)
    if args.study_command == "show":
        print(spec.to_json())
        return 0
    scale = _resolve_scale(getattr(args, "scale", None))
    print(
        f"== study {spec.name} (scale={scale.name}) ==",
        file=sys.stderr,
    )
    try:
        result = run_study(spec, scale=scale)
    except StudyError as err:
        parser.error(str(err))
    report = _study_markdown(result)
    print(report)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report + "\n")
        print(f"\nwritten to {args.out}", file=sys.stderr)
    return 0


def _client(args, parser: argparse.ArgumentParser):
    """A StudyClient for --server / REPRO_SERVER / the default URL."""
    import os

    from repro.server import DEFAULT_SERVER, StudyClient

    url = args.server or os.environ.get("REPRO_SERVER") or DEFAULT_SERVER
    return StudyClient(url)


def _main_serve(args, parser: argparse.ArgumentParser) -> int:
    from repro.experiments.common import default_cache_dir
    from repro.server import StudyServer

    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    state_dir = args.state_dir or (default_cache_dir() / "server")
    try:
        server = StudyServer(
            state_dir,
            host=args.host,
            port=args.port,
            workers=args.workers,
            scale=args.scale,
            imports=tuple(args.imports),
            stale_after=args.stale_after,
        )
    except OSError as err:
        parser.error(f"cannot bind {args.host}:{args.port}: {err}")
    # Stdout on purpose: scripts (and the CI smoke step) bind port 0
    # and parse the ephemeral port from this line.
    print(f"serving on {server.url} (state: {server.queue.state_dir})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (queued/running studies resume on next boot)",
              file=sys.stderr)
        server.queue.stop()
        server.httpd.server_close()
    return 0


def _watch_study(client, study_id: str, out: Path | None) -> int:
    """Follow one study to its end; print the final report. 0 iff done."""
    from repro.server import ServerError

    doc = None
    try:
        for doc in client.events(study_id):
            progress = doc.get("progress") or {}
            done = progress.get("done_repeats", 0)
            total = progress.get("total_repeats")
            print(
                f"{doc['id']}: {doc['state']}"
                + (f" — {done}/{total} repeats" if total else ""),
                file=sys.stderr,
            )
    except ServerError as err:
        # Stream dropped (server restarted?) — fall back to polling.
        print(f"event stream lost ({err}); polling instead", file=sys.stderr)
        doc = client.wait(study_id)
    if doc is None or doc["state"] != "done":
        state = doc["state"] if doc else "unknown"
        error = (doc or {}).get("error")
        print(f"study {study_id} ended {state}"
              + (f": {error}" if error else ""), file=sys.stderr)
        return 1
    result = doc.get("result") or {}
    report = _summary_markdown(result.get("name"), result.get("outcomes") or {})
    print(report)
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n")
        print(f"\nwritten to {out}", file=sys.stderr)
    return 0


def _main_server_client(args, parser: argparse.ArgumentParser) -> int:
    from repro.server import ServerError

    client = _client(args, parser)
    try:
        if args.command == "submit":
            spec = _resolve_cli_spec(args, parser)
            study_id = client.submit(spec.to_dict())["id"]
            print(study_id)
            if args.watch:
                return _watch_study(client, study_id, args.out)
            return 0
        if args.command == "status":
            import json

            if args.study is None:
                for doc in client.studies():
                    print(
                        f"{doc['id']}  {doc['state']:<9}  "
                        f"{doc.get('name') or '?'}"
                    )
                return 0
            print(json.dumps(client.status(args.study), indent=2))
            return 0
        if args.command == "watch":
            return _watch_study(client, args.study, args.out)
        if args.command == "cancel":
            doc = client.cancel(args.study)
            print(f"{doc['id']}: cancelled (was {doc['was']})")
            return 0
    except ServerError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled server command {args.command!r}")


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["worker"]:
        # The worker owns its argument surface (it is also reachable as
        # `python -m repro.parallel.worker`); hand the rest through.
        from repro.parallel.worker import main as worker_main

        return worker_main(argv[1:], prog="repro worker")
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "hw":
        return _main_hw(args, parser)
    if args.command == "workload":
        return _main_workload(args, parser)
    if args.command == "study":
        return _main_study(args, parser)
    if args.command == "serve":
        return _main_serve(args, parser)
    if args.command in ("submit", "status", "watch", "cancel"):
        return _main_server_client(args, parser)
    if getattr(args, "workers", None) is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if getattr(args, "batch_size", 1) < 1:
        parser.error(f"--batch-size must be >= 1, got {args.batch_size}")
    if getattr(args, "checkpoint_every", 1) < 1:
        parser.error(f"--checkpoint-every must be >= 1, got {args.checkpoint_every}")
    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.command == "resume":
        if args.ledger is None:
            parser.error("resume requires --ledger FILE (the ledger of the "
                         "interrupted run)")
        if not args.ledger.exists():
            parser.error(f"no ledger at {args.ledger} — nothing to resume "
                         "(start the run with 'repro run ... --ledger')")

    # --scenario / --scenario-file / --batch-size / --ledger only drive
    # the search-study experiments; reject runs where they would
    # silently change nothing (results-changing flags must never no-op).
    study_flags = []
    if args.scenario or args.scenario_file:
        study_flags.append("--scenario/--scenario-file")
    if args.batch_size != 1:
        study_flags.append("--batch-size")
    if args.ledger is not None:
        study_flags.append("--ledger")
    if args.tensorize:
        study_flags.append("--tensorize")
    if getattr(args, "exact_fraction", None) is not None and not args.surrogate:
        parser.error("--exact-fraction requires --surrogate (it only shapes "
                     "the two-tier filtering batches)")
    if args.surrogate:
        study_flags.append("--surrogate")
        if not 0.0 < (args.exact_fraction or 0.25) <= 1.0:
            parser.error(
                f"--exact-fraction must be in (0, 1], got {args.exact_fraction}"
            )
    if args.backend is not None:
        study_flags.append("--backend")
        if args.backend == "cluster" and args.ledger is None:
            parser.error(
                "--backend cluster requires --ledger FILE: workers "
                "coordinate through the ledger's task-lease table"
            )
    if study_flags:
        selected = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        uses_study = [name for name in selected if name in STUDY_EXPERIMENTS]
        if not uses_study:
            parser.error(
                f"{' and '.join(study_flags)} only affect the search-study "
                f"experiments ({', '.join(STUDY_EXPERIMENTS)}); "
                f"'{args.experiment}' would ignore them"
            )
        ignored = [name for name in selected if name not in STUDY_EXPERIMENTS]
        if ignored:
            print(
                f"note: {' and '.join(study_flags)} affect only "
                f"{', '.join(uses_study)}; {', '.join(ignored)} run unchanged",
                file=sys.stderr,
            )
    if args.hardware is not None:
        try:
            get_platform(args.hardware)
        except HardwarePlatformError as err:
            parser.error(str(err))
        selected = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        uses_hw = [name for name in selected if name in HARDWARE_EXPERIMENTS]
        if not uses_hw:
            parser.error(
                f"--hardware only affects the platform-evaluating "
                f"experiments ({', '.join(HARDWARE_EXPERIMENTS)}); "
                f"'{args.experiment}' would ignore it"
            )
        ignored = [name for name in selected if name not in HARDWARE_EXPERIMENTS]
        if ignored:
            print(
                f"note: --hardware affects only {', '.join(uses_hw)}; "
                f"{', '.join(ignored)} run unchanged",
                file=sys.stderr,
            )

    scenarios = None
    if args.scenario or args.scenario_file:
        try:
            scenarios = resolve_scenarios(args.scenario, args.scenario_file)
        except ScenarioError as err:
            parser.error(str(err))

    scale = _resolve_scale(args.scale)

    ctx = RunContext(
        scale=scale,
        seed=args.seed,
        workers=args.workers,
        eval_cache=(
            EvalCache(eval_cache_path(args.cache_dir))
            if args.cache_dir is not None
            else None
        ),
        scenarios=scenarios,
        batch_size=args.batch_size,
        ledger=RunLedger(args.ledger) if args.ledger is not None else None,
        checkpoint_every=args.checkpoint_every,
        hardware=args.hardware,
        tensorize=args.tensorize,
        surrogate=args.surrogate,
        exact_fraction=(
            args.exact_fraction if args.exact_fraction is not None else 0.25
        ),
        backend_name=args.backend,
    )
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    reports = []
    for name in names:
        print(f"== {name} (scale={scale.name}) ==", file=sys.stderr)
        reports.append(f"## {name}\n\n{EXPERIMENTS[name](ctx)}")
    if ctx.eval_cache is not None:
        ctx.eval_cache.flush()
        stats = ctx.eval_cache.stats
        print(
            f"eval cache: {stats['persisted']} rows, "
            f"{100.0 * stats['hit_rate']:.0f}% hit rate this run",
            file=sys.stderr,
        )
    if ctx.ledger is not None:
        progress = ctx.ledger.progress()
        print(
            f"ledger: {progress['done']} repeats done, "
            f"{progress['checkpointed']} checkpointed in flight",
            file=sys.stderr,
        )
        for entry in ctx.ledger.executions():
            if entry.get("effective") != entry.get("requested"):
                print(
                    f"note: backend '{entry.get('requested')}' fell back to "
                    f"'{entry.get('effective')}' (recorded in the ledger)",
                    file=sys.stderr,
                )
    report = "\n\n".join(reports)
    print(report)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report + "\n")
        print(f"\nwritten to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
