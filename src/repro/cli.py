"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro list
    python -m repro run table1
    python -m repro run fig4 --out results/fig4.md
    python -m repro run fig7 --scale default --seed 1
    python -m repro run all --scale smoke

Each experiment prints the same rows the paper reports (markdown) and
can optionally write them to a file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from repro.experiments.ablations import ablation_markdown, run_all_ablations
from repro.experiments.common import Scale, load_bundle
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.search_study import run_search_study
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.validation import run_validation

__all__ = ["main", "EXPERIMENTS"]


def _run_table1(scale: Scale, seed: int) -> str:
    return run_table1().to_markdown()


def _run_validation(scale: Scale, seed: int) -> str:
    return run_validation(seed=seed or 7).to_markdown()


def _run_fig4(scale: Scale, seed: int) -> str:
    return run_fig4(load_bundle()).to_markdown()


def _run_fig5(scale: Scale, seed: int) -> str:
    study = run_search_study(load_bundle(), scale, master_seed=seed)
    return run_fig5(study=study).to_markdown()


def _run_fig6(scale: Scale, seed: int) -> str:
    study = run_search_study(load_bundle(), scale, master_seed=seed)
    return run_fig6(study=study).to_markdown()


def _run_fig56(scale: Scale, seed: int) -> str:
    study = run_search_study(load_bundle(), scale, master_seed=seed)
    return (
        run_fig5(study=study).to_markdown()
        + "\n\n"
        + run_fig6(study=study).to_markdown()
    )


def _run_fig7(scale: Scale, seed: int) -> str:
    fig7 = run_fig7(scale=scale, seed=seed)
    return "\n\n".join(
        [fig7.to_markdown(), run_table2(fig7).to_markdown(), run_table3(fig7).to_markdown()]
    )


def _run_ablations(scale: Scale, seed: int) -> str:
    return ablation_markdown(run_all_ablations(load_bundle(), scale))


#: Experiment name -> runner returning a markdown report.
EXPERIMENTS: dict[str, Callable[[Scale, int], str]] = {
    "table1": _run_table1,
    "validation": _run_validation,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig5+6": _run_fig56,
    "fig7": _run_fig7,
    "ablations": _run_ablations,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Codesign-NAS reproduction: regenerate paper tables/figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument(
        "--scale",
        choices=("smoke", "default", "paper"),
        default=None,
        help="experiment sizing (defaults to REPRO_SCALE or 'smoke')",
    )
    run.add_argument("--seed", type=int, default=0, help="master seed")
    run.add_argument("--out", type=Path, default=None, help="write report to file")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    if args.scale is not None:
        scale = {
            "smoke": Scale("smoke", 300, 1, 0.1),
            "default": Scale("default", 1500, 3, 0.25),
            "paper": Scale("paper", 10000, 10, 1.0),
        }[args.scale]
    else:
        scale = Scale.from_env(default="smoke")

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    reports = []
    for name in names:
        print(f"== {name} (scale={scale.name}) ==", file=sys.stderr)
        reports.append(f"## {name}\n\n{EXPERIMENTS[name](scale, args.seed)}")
    report = "\n\n".join(reports)
    print(report)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report + "\n")
        print(f"\nwritten to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
