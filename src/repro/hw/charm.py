"""The ``charm-u50`` platform: CHARM-style tiled-GEMM on an Alveo U50.

Models the CDSE ("CHARM design-space exploration") axes of CHARM
(Zhuang et al., FPGA'23-style diagonal accelerators, here simplified to
an output-stationary tiled systolic GEMM engine): per-accelerator tile
shape ``tile_m`` x ``tile_n`` x ``tile_k``, the number of replicated
accelerators sharing the device, and the operand ``bitwidth``.  A
configuration is *valid* when it fits the U50 budgets — DSP slices,
BRAM18K blocks for double-buffered A/B tiles, URAM for 32-bit
accumulator tiles, and HBM pseudo-channels (each accelerator owns a
fixed number of channels per operand stream, wider data needs more).

The config space (393,216 points) deliberately exceeds
``TENSORIZE_MAX_CONFIGS``: this is the first shipped platform whose
surrogate must be fitted from *sampled* configurations and whose
two-tier ``--surrogate`` search is the only affordable search mode.
Latency consumes :class:`repro.hw.gemm.GemmIR` ops natively (through
``gemm_dims``) and falls back to a ``(spatial, in_ch, out_ch)`` view
for CNN ops, so cross-workload validation keeps working.

Like every platform, the batched column-wise queries are the primary
interface and the scalar calls are one-row batches — bit-identical by
construction, property-tested via the registry.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.space import AcceleratorSpace
from repro.hw.gemm import (
    GemmIR,
    canonical_transformer_irs,
    random_transformer_irs,
)
from repro.hw.platform import (
    HardwarePlatform,
    HardwarePlatformError,
    register_platform,
)
from repro.utils.rng import hash_seed, make_rng

__all__ = [
    "CharmConfig",
    "CharmSpace",
    "CharmU50Platform",
    "CHARM_PARAMETER_VALUES",
    "U50_BUDGETS",
]

#: Alveo U50 device budgets (public datasheet numbers).
U50_BUDGETS = {
    "dsp": 5952,
    "bram_18k": 2688,
    "uram": 320,
    "hbm_channels": 32,
}

#: Bytes per BRAM18K block / per URAM block.
_BRAM_BYTES = 18 * 1024 // 8
_URAM_BYTES = 36 * 1024

DEFAULT_CLOCK_MHZ = 300.0
DEFAULT_HBM_GBPS = 460.0

#: The CDSE tile axes.  Little-endian like every AcceleratorSpace:
#: ``tile_m`` varies fastest.  32 * 32 * 16 * 8 * 3 = 393,216 configs.
CHARM_PARAMETER_VALUES: dict[str, tuple] = {
    "tile_m": tuple(range(8, 257, 8)),
    "tile_n": tuple(range(8, 257, 8)),
    "tile_k": tuple(range(8, 129, 8)),
    "num_accels": tuple(range(1, 9)),
    "bitwidth": (8, 16, 32),
}


class CharmConfig:
    """One tiled-GEMM accelerator configuration (frozen, interned).

    Mirrors :class:`repro.accelerator.AcceleratorConfig`'s surface
    (attribute per parameter, ``to_dict``/``from_dict``, domain
    validation in the constructor) without dataclass machinery so the
    parameter list stays in one place (``CHARM_PARAMETER_VALUES``).
    """

    __slots__ = ("tile_m", "tile_n", "tile_k", "num_accels", "bitwidth")

    def __init__(self, tile_m: int, tile_n: int, tile_k: int,
                 num_accels: int, bitwidth: int) -> None:
        values = {
            "tile_m": tile_m,
            "tile_n": tile_n,
            "tile_k": tile_k,
            "num_accels": num_accels,
            "bitwidth": bitwidth,
        }
        for name, value in values.items():
            if value not in CHARM_PARAMETER_VALUES[name]:
                raise ValueError(
                    f"{name}={value!r} is not in the charm-u50 domain "
                    f"{CHARM_PARAMETER_VALUES[name]}"
                )
            object.__setattr__(self, name, int(value))

    def __setattr__(self, name, value):  # frozen, like AcceleratorConfig
        raise AttributeError("CharmConfig is immutable")

    def _astuple(self) -> tuple:
        return tuple(getattr(self, name) for name in CHARM_PARAMETER_VALUES)

    def __eq__(self, other) -> bool:
        if not isinstance(other, CharmConfig):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)}" for name in CHARM_PARAMETER_VALUES
        )
        return f"CharmConfig({fields})"

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in CHARM_PARAMETER_VALUES}

    @classmethod
    def from_dict(cls, data: dict) -> "CharmConfig":
        return cls(**{name: data[name] for name in CHARM_PARAMETER_VALUES})

    def short_name(self) -> str:
        return (
            f"t{self.tile_m}x{self.tile_n}x{self.tile_k}"
            f"-a{self.num_accels}-b{self.bitwidth}"
        )


class CharmSpace(AcceleratorSpace):
    """The charm-u50 mixed-radix space decoding to :class:`CharmConfig`."""

    config_class = CharmConfig

    def __init__(self, parameters: dict[str, tuple] | None = None) -> None:
        super().__init__(parameters=dict(parameters or CHARM_PARAMETER_VALUES))


def _as_float_cols(cols: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
    return tuple(
        np.asarray(cols[name], dtype=np.float64)
        for name in ("tile_m", "tile_n", "tile_k", "num_accels", "bitwidth")
    )


def _resource_columns(cols: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Per-config U50 resource usage, vectorized over config columns."""
    tm, tn, tk, na, bw = _as_float_cols(cols)
    # DSP48E2s per MAC scale with operand width: int8 packs two MACs per
    # DSP, int16 needs one, fp32 a 4-DSP cascade.
    dsp_factor = np.where(bw == 8, 0.5, np.where(bw == 16, 1.0, 4.0))
    dsps = np.ceil(tm * tn * dsp_factor) * na
    # Double-buffered A (tm x tk) and B (tk x tn) tiles in BRAM18K.
    brams = np.ceil((tm * tk + tk * tn) * (bw / 8.0) * 2.0 / _BRAM_BYTES) * na
    # The C tile accumulates at 32 bit in URAM, also double-buffered.
    urams = np.ceil(tm * tn * 4.0 * 2.0 / _URAM_BYTES) * na
    # HBM pseudo-channels per accelerator: two streams (A+B) at int8,
    # three at int16, six at fp32 (C spill + wider operands).
    cpa = np.where(bw == 8, 2.0, np.where(bw == 16, 3.0, 6.0))
    return {
        "dsps": dsps,
        "brams": brams,
        "urams": urams,
        "channels": na * cpa,
    }


def _tile_utilization(dim: float, tile: np.ndarray) -> np.ndarray:
    """Fraction of tile MACs doing useful work along one dimension."""
    return dim / (np.ceil(dim / tile) * tile)


def _op_dims(op) -> tuple[float, float, float]:
    dims = getattr(op, "gemm_dims", None)
    if dims is not None:
        return (float(dims[0]), float(dims[1]), float(dims[2]))
    # CNN fallback: an op is a (spatial x in_ch) x (in_ch x out_ch) GEMM.
    return (
        float(op.height * op.width),
        float(max(op.in_channels, 1)),
        float(max(op.out_channels, 1)),
    )


class CharmU50Platform(HardwarePlatform):
    """Analytic area/latency/validity models for the tiled-GEMM U50."""

    def __init__(self, params: dict | None = None,
                 clock_mhz: float = DEFAULT_CLOCK_MHZ,
                 hbm_gbps: float = DEFAULT_HBM_GBPS) -> None:
        self.name = "charm-u50"
        self.params = dict(params or {})
        self.clock_hz = float(clock_mhz) * 1e6
        self.hbm_bandwidth = float(hbm_gbps) * 1e9
        self._space = CharmSpace()

    # --- batched queries (the primary interface) --------------------------
    def batch_area_mm2(self, cols: dict[str, np.ndarray]) -> np.ndarray:
        res = _resource_columns(cols)
        # Die-area proxy: a fixed shell plus per-resource coefficients
        # (16 nm UltraScale+ cell-area estimates).  Finite and positive
        # for every point, including over-budget (invalid) ones.
        return (
            6.0
            + res["dsps"] * 0.00058
            + res["brams"] * 0.0026
            + res["urams"] * 0.0075
        )

    def batch_network_latency_s(self, ir, configs=None) -> np.ndarray:
        cols = self._as_columns(configs)
        tm, tn, tk, na, bw = _as_float_cols(cols)
        res = _resource_columns(cols)
        # int8 packs 2 MACs/DSP-cycle; fp32 sustains a quarter rate.
        pack = np.where(bw == 8, 2.0, np.where(bw == 16, 1.0, 0.25))
        macs_per_cycle = tm * tn * pack * na
        bytes_per_s = (
            self.hbm_bandwidth
            * np.minimum(res["channels"], float(U50_BUDGETS["hbm_channels"]))
            / float(U50_BUDGETS["hbm_channels"])
        )
        total = np.zeros_like(tm)
        for op in ir.ops:
            macs = float(op.macs)
            if macs > 0.0:
                m, k, n = _op_dims(op)
                util = (
                    _tile_utilization(m, tm)
                    * _tile_utilization(k, tk)
                    * _tile_utilization(n, tn)
                )
                compute_s = macs / (macs_per_cycle * util * self.clock_hz)
            else:
                compute_s = np.zeros_like(tm)
            op_bytes = float(op.input_bytes + op.weight_bytes + op.output_bytes)
            mem_s = op_bytes * (bw / 8.0) / bytes_per_s
            total = total + np.maximum(compute_s, mem_s)
        return total

    def batch_config_valid(self, cols: dict[str, np.ndarray]) -> np.ndarray:
        res = _resource_columns(cols)
        return (
            (res["dsps"] <= U50_BUDGETS["dsp"])
            & (res["brams"] <= U50_BUDGETS["bram_18k"])
            & (res["urams"] <= U50_BUDGETS["uram"])
            & (res["channels"] <= U50_BUDGETS["hbm_channels"])
        )

    # --- scalar queries are one-row batches (bit-identity for free) -------
    def _one_row(self, config) -> dict[str, np.ndarray]:
        return {
            name: np.asarray([getattr(config, name)])
            for name in self._space.names
        }

    def area_mm2(self, config) -> float:
        return float(self.batch_area_mm2(self._one_row(config))[0])

    def network_latency_s(self, ir, config) -> float:
        return float(self.batch_network_latency_s(ir, self._one_row(config))[0])

    def config_valid(self, config) -> bool:
        return bool(self.batch_config_valid(self._one_row(config))[0])

    def _as_columns(self, configs) -> dict[str, np.ndarray]:
        if configs is None:
            configs = self._space
        if hasattr(configs, "columns"):
            return configs.columns()
        if isinstance(configs, dict):
            return configs
        return {
            name: np.asarray([getattr(c, name) for c in configs])
            for name in self._space.names
        }

    # --- identity ---------------------------------------------------------
    def config_space(self) -> AcceleratorSpace:
        return self._space

    def describe(self) -> dict:
        out = super().describe()
        out.update(
            clock_mhz=self.clock_hz / 1e6,
            hbm_gbps=self.hbm_bandwidth / 1e9,
            budgets=dict(U50_BUDGETS),
        )
        return out

    # --- surrogate hooks --------------------------------------------------
    # The surrogate fitter dispatches feature extraction and training-
    # workload generation through these when present (falling back to
    # the CNN-cell defaults otherwise), so one fitter serves both
    # workload families.

    def surrogate_config_features(self, cols: dict[str, np.ndarray]) -> np.ndarray:
        tm, tn, tk, na, bw = _as_float_cols(cols)
        res = _resource_columns(cols)
        feats = [
            tm, tn, tk, na, bw,
            res["dsps"], res["brams"], res["urams"], res["channels"],
            np.log1p(res["dsps"]), np.log1p(res["brams"]),
            np.log1p(res["urams"]),
            tm * tn, tm * tn * tk,
        ]
        return np.column_stack(feats)

    def surrogate_latency_features(self, ir, cols: dict[str, np.ndarray]) -> np.ndarray:
        tm, tn, tk, na, bw = _as_float_cols(cols)
        res = _resource_columns(cols)
        pack = np.where(bw == 8, 2.0, np.where(bw == 16, 1.0, 0.25))
        macs_per_cycle = tm * tn * pack * na
        bytes_per_s = (
            self.hbm_bandwidth
            * np.minimum(res["channels"], float(U50_BUDGETS["hbm_channels"]))
            / float(U50_BUDGETS["hbm_channels"])
        )
        total_macs = 0.0
        total_bytes = 0.0
        util_time = np.zeros_like(tm)
        mixed_time = np.zeros_like(tm)
        util_sum = np.zeros_like(tm)
        gemm_ops = 0
        for op in ir.ops:
            macs = float(op.macs)
            op_bytes = float(op.input_bytes + op.weight_bytes + op.output_bytes)
            op_mem = op_bytes * (bw / 8.0) / bytes_per_s
            if macs > 0.0:
                m, k, n = _op_dims(op)
                util = (
                    _tile_utilization(m, tm)
                    * _tile_utilization(k, tk)
                    * _tile_utilization(n, tn)
                )
                op_compute = macs / (macs_per_cycle * util * self.clock_hz)
                util_time = util_time + op_compute
                util_sum = util_sum + util
                gemm_ops += 1
            else:
                op_compute = np.zeros_like(tm)
            mixed_time = mixed_time + np.maximum(op_compute, op_mem)
            total_macs += macs
            total_bytes += op_bytes
        ideal_compute = total_macs / (macs_per_cycle * self.clock_hz)
        mem_time = total_bytes * (bw / 8.0) / bytes_per_s
        mean_util = util_sum / max(gemm_ops, 1)
        feats = [
            tm, tn, tk, na, bw,
            macs_per_cycle, 1.0 / macs_per_cycle,
            ideal_compute, util_time, mem_time, mixed_time,
            np.maximum(util_time, mem_time), util_time + mem_time,
            np.log(util_time), np.log(mem_time), np.log(mixed_time),
            mean_util,
        ]
        return np.column_stack(feats)

    def surrogate_training_irs(self, skeleton, seed: int) -> list[GemmIR]:
        rng = make_rng(hash_seed("hw-surrogate-gemms", seed))
        return canonical_transformer_irs() + random_transformer_irs(rng, 3)

    def surrogate_probe_ir(self, skeleton) -> GemmIR:
        return canonical_transformer_irs()[0]

    def surrogate_validation_irs(self, rng, count: int) -> list[GemmIR]:
        return random_transformer_irs(rng, count)


# ---------------------------------------------------------------------------
# Registered recipe
# ---------------------------------------------------------------------------

def _build_charm(params: dict) -> CharmU50Platform:
    name = "charm-u50"
    if not isinstance(params, dict):
        raise HardwarePlatformError(
            f"hardware platform {name!r}: params must be a mapping, "
            f"got {type(params).__name__}"
        )
    allowed = {"clock_mhz", "hbm_gbps"}
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise HardwarePlatformError(
            f"hardware platform {name!r} got unknown parameter(s) "
            f"{unknown}; allowed: {sorted(allowed)}"
        )
    cfg = {"clock_mhz": DEFAULT_CLOCK_MHZ, "hbm_gbps": DEFAULT_HBM_GBPS, **params}
    for key in allowed:
        try:
            value = float(cfg[key])
        except (TypeError, ValueError):
            value = float("nan")
        if not value > 0:
            raise HardwarePlatformError(
                f"hardware platform {name!r}: {key} must be a positive "
                f"number, got {cfg[key]!r}"
            )
        cfg[key] = value
    return CharmU50Platform(
        params=params, clock_mhz=cfg["clock_mhz"], hbm_gbps=cfg["hbm_gbps"]
    )


register_platform(
    "charm-u50",
    _build_charm,
    description="CHARM-style tiled-GEMM accelerators on an Alveo U50: "
    "tile_m/tile_n/tile_k x num_accels x bitwidth under DSP/BRAM/URAM/"
    "HBM-channel budgets (393,216 configs — surrogate-only search)",
)
