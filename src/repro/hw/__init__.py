"""Pluggable hardware platforms for the codesign evaluator.

A :class:`HardwarePlatform` is the hardware half of ``E(s)``: area and
latency queries (scalar and batched column-wise), a configuration
space, and a cache-namespace identity — registered by name so studies,
the CLI, and the declarative spec path can swap accelerator families
without touching the evaluator (``repro hw list`` shows what ships).
"""

from repro.hw.dac2020 import DEFAULT_PLATFORM_NAME, Dac2020Platform
from repro.hw.platform import (
    HardwarePlatform,
    HardwarePlatformError,
    PlatformEntry,
    build_platform,
    default_platform,
    get_platform,
    list_platforms,
    platform_from_spec,
    register_platform,
)
from repro.hw.tensorized import (
    TENSORIZE_MAX_CONFIGS,
    TensorizedSpace,
    TensorizeError,
    enumerable,
    tensorized_space,
)

__all__ = [
    "DEFAULT_PLATFORM_NAME",
    "Dac2020Platform",
    "HardwarePlatform",
    "HardwarePlatformError",
    "PlatformEntry",
    "TENSORIZE_MAX_CONFIGS",
    "TensorizeError",
    "TensorizedSpace",
    "build_platform",
    "default_platform",
    "enumerable",
    "get_platform",
    "list_platforms",
    "platform_from_spec",
    "register_platform",
    "tensorized_space",
]
