"""Pluggable hardware platforms for the codesign evaluator.

A :class:`HardwarePlatform` is the hardware half of ``E(s)``: area and
latency queries (scalar and batched column-wise), a configuration
space, and a cache-namespace identity — registered by name so studies,
the CLI, and the declarative spec path can swap accelerator families
without touching the evaluator (``repro hw list`` shows what ships).
"""

from repro.hw.dac2020 import DEFAULT_PLATFORM_NAME, Dac2020Platform
from repro.hw.platform import (
    HardwarePlatform,
    HardwarePlatformError,
    PlatformEntry,
    build_platform,
    default_platform,
    get_platform,
    list_platforms,
    platform_from_spec,
    register_platform,
)

# charm must register before the surrogate module enumerates the
# registry to create its import-time `surrogate:<name>` twins.
from repro.hw.charm import CharmConfig, CharmSpace, CharmU50Platform
from repro.hw.gemm import GemmIR, GemmOp, transformer_gemm_ir
from repro.hw.surrogate import (
    DEFAULT_ERROR_BUDGET,
    SURROGATE_PREFIX,
    SurrogateModel,
    SurrogatePlatform,
    fit_surrogate,
    register_surrogate_platforms,
    surrogate_model_for,
    validate_surrogate,
)
from repro.hw.tensorized import (
    TENSORIZE_MAX_CONFIGS,
    TensorizedSpace,
    TensorizeError,
    enumerable,
    tensorized_space,
)

__all__ = [
    "DEFAULT_ERROR_BUDGET",
    "DEFAULT_PLATFORM_NAME",
    "CharmConfig",
    "CharmSpace",
    "CharmU50Platform",
    "Dac2020Platform",
    "GemmIR",
    "GemmOp",
    "HardwarePlatform",
    "HardwarePlatformError",
    "PlatformEntry",
    "SURROGATE_PREFIX",
    "SurrogateModel",
    "SurrogatePlatform",
    "TENSORIZE_MAX_CONFIGS",
    "TensorizeError",
    "TensorizedSpace",
    "build_platform",
    "default_platform",
    "enumerable",
    "fit_surrogate",
    "get_platform",
    "list_platforms",
    "platform_from_spec",
    "register_platform",
    "register_surrogate_platforms",
    "surrogate_model_for",
    "tensorized_space",
    "transformer_gemm_ir",
    "validate_surrogate",
]
