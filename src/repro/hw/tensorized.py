"""Full-space tensorized evaluation: dense per-platform metric arrays.

For config spaces small enough to enumerate outright (the paper's
``dac2020`` space is 8640 points, ``embedded-lite`` 288), paying
per-config Python overhead — dict-shaped configs, key derivation, LRU
probes — on every evaluation is pure waste: the whole space fits in a
few dense ndarrays.  A :class:`TensorizedSpace` enumerates a platform's
``config_space()`` once per (platform, skeleton) into:

* ``area_mm2`` — ``(size,)`` float64, one entry per flat config index,
  filled by one ``batch_area_mm2`` call;
* ``valid`` — ``(size,)`` bool from ``batch_config_valid`` (all-True
  for the shipped platforms, which have no structurally invalid
  configurations);
* lazy latency *rows* — one ``(size,)`` float64 seconds array per cell
  (keyed by ``spec_hash``), each filled by one vectorized
  ``batch_network_latency_s`` call.

Bit-exactness is inherited, not approximated: the platform contract
already guarantees ``batch_area_mm2``/``batch_network_latency_s`` agree
with their scalar counterparts bit for bit on every configuration
(property-tested in ``tests/hw/test_platforms.py``), and everything
here stores those batch outputs as float64 without any precision
round-trip.  ``tests/hw/test_tensorized_differential.py`` then proves
``tensor == scalar`` over the *entire* space for every registered
platform.

The arrays persist to disk under ``<cache>/tensorized/`` (same idiom as
the :func:`repro.experiments.common.load_bundle` cache), keyed by an
md5 of the platform's ``cache_namespace()`` — which pins every
result-affecting parameter — plus a digest of the skeleton the latency
rows were compiled against.  A warm load re-checks the stored area
vector against a fresh ``batch_area_mm2`` pass and silently drops the
cached latency rows if they disagree, so a drifted model can never
serve stale rows.

Platforms whose space exceeds :data:`TENSORIZE_MAX_CONFIGS` are not
enumerable; callers (see ``CodesignEvaluator``) fall back to the
memoized scalar path.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import asdict
from pathlib import Path
from typing import Callable

import numpy as np

from repro.hw.platform import HardwarePlatform
from repro.nasbench.skeleton import CIFAR10_SKELETON, SkeletonConfig
from repro.utils.lru import LRUCache

__all__ = [
    "TENSORIZE_MAX_CONFIGS",
    "TensorizeError",
    "TensorizedSpace",
    "enumerable",
    "tensorized_space",
    "skeleton_token",
]

#: Refuse to enumerate spaces beyond this many configurations — the
#: dense arrays (and one latency row per visited cell) would stop being
#: "a few MB"; the evaluator silently falls back to the memoized path.
TENSORIZE_MAX_CONFIGS = 262_144


class TensorizeError(ValueError):
    """A platform/space cannot be tensorized as requested."""


def enumerable(platform: HardwarePlatform) -> bool:
    """Whether ``platform``'s config space is small enough to tensorize."""
    return platform.config_space().size <= TENSORIZE_MAX_CONFIGS


def skeleton_token(skeleton: SkeletonConfig) -> str:
    """Short stable digest of a skeleton (latency rows depend on it)."""
    blob = json.dumps(asdict(skeleton), sort_keys=True, default=str)
    return hashlib.md5(blob.encode()).hexdigest()[:10]


def _default_cache_dir() -> Path:
    from repro.experiments.common import default_cache_dir

    return default_cache_dir() / "tensorized"


class TensorizedSpace:
    """Dense full-space metric tensors for one (platform, skeleton).

    ``area_mm2`` / ``valid`` are filled eagerly (one vectorized call
    each); latency rows are computed on first request per cell and
    bounded by ``max_rows`` (LRU — rows are pure, a re-request just
    recomputes).  ``index_of`` resolves a config to its flat index
    through an identity-keyed memo, so interned configs (see
    ``AcceleratorSpace.config_at``) never materialize a dict or tuple
    key on the hot path.
    """

    def __init__(
        self,
        platform: HardwarePlatform,
        skeleton: SkeletonConfig = CIFAR10_SKELETON,
        cache_dir: Path | None = None,
        use_disk_cache: bool = True,
        max_rows: int = 1024,
        max_disk_rows: int = 256,
        autosave_every: int = 32,
    ) -> None:
        self.platform = platform
        self.skeleton = skeleton
        self.space = platform.config_space()
        if self.space.size > TENSORIZE_MAX_CONFIGS:
            raise TensorizeError(
                f"platform {platform.name!r} enumerates {self.space.size} "
                f"configurations, beyond the tensorization cap of "
                f"{TENSORIZE_MAX_CONFIGS} — use the memoized evaluator path"
            )
        self.size = self.space.size
        self._cols = self.space.columns()
        self.area_mm2 = np.ascontiguousarray(
            platform.batch_area_mm2(self._cols), dtype=np.float64
        )
        self.valid = np.ascontiguousarray(
            platform.batch_config_valid(self._cols), dtype=bool
        )
        # spec_hash -> (size,) float64 latency seconds; LRU because one
        # row per visited cell adds up on long open-space searches.
        self._rows: LRUCache = LRUCache(max_rows)
        self._max_disk_rows = int(max_disk_rows)
        self._autosave_every = int(autosave_every)
        self._new_rows_since_save = 0
        self.loaded_rows = 0
        self.computed_rows = 0
        # id(config) -> (config, index); the strong ref makes the id
        # stable, the identity check guards against a lookalike object
        # at a recycled address.
        self._index_memo: dict[int, tuple] = {}
        self.use_disk_cache = bool(use_disk_cache)
        self.cache_dir = Path(cache_dir) if cache_dir else _default_cache_dir()
        self.cache_file = self.cache_dir / (
            f"tensor_h{self.size}"
            f"_{hashlib.md5(platform.cache_namespace().encode()).hexdigest()[:10]}"
            f"_{skeleton_token(skeleton)}.npz"
        )
        if self.use_disk_cache:
            self._load()

    # --- index codec --------------------------------------------------
    def index_of(self, config) -> int:
        """Flat index of ``config`` (identity-memoized)."""
        entry = self._index_memo.get(id(config))
        if entry is not None and entry[0] is config:
            return entry[1]
        index = self.space.index_of(config)
        if len(self._index_memo) > 4 * self.size:
            # Only non-interned configs can grow this past the space
            # size; a pathological caller minting fresh objects forever
            # must not leak memory.
            self._index_memo.clear()
        self._index_memo[id(config)] = (config, index)
        return index

    def config_at(self, index: int):
        return self.space.config_at(index)

    # --- latency rows -------------------------------------------------
    def latency_row(self, spec_hash: str, ir_factory: Callable) -> np.ndarray:
        """``(size,)`` float64 end-to-end seconds for one cell.

        ``ir_factory`` compiles the cell's IR; it is only called on a
        row miss.  Each element is bit-identical to the platform's
        scalar ``network_latency_s`` on the matching configuration.
        """
        row = self._rows.get(spec_hash)
        if row is None:
            row = np.ascontiguousarray(
                self.platform.batch_network_latency_s(ir_factory(), self._cols),
                dtype=np.float64,
            )
            self._rows[spec_hash] = row
            self.computed_rows += 1
            self._new_rows_since_save += 1
            if (
                self.use_disk_cache
                and self._new_rows_since_save >= self._autosave_every
            ):
                self.save()
        return row

    @property
    def num_latency_rows(self) -> int:
        return len(self._rows)

    # --- disk cache ---------------------------------------------------
    def _load(self) -> None:
        if not self.cache_file.exists():
            return
        try:
            with np.load(self.cache_file, allow_pickle=False) as data:
                area = data["area_mm2"]
                valid = data["valid"]
                latency_s = data["latency_s"]
                row_hashes = data["row_hashes"]
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            return  # unreadable cache: rebuild from scratch
        if area.shape != (self.size,) or valid.shape != (self.size,):
            return
        if not (
            np.array_equal(area, self.area_mm2)
            and np.array_equal(valid, self.valid)
        ):
            # The models drifted since the file was written (the
            # namespace key should prevent this, but a silently changed
            # model constant must not serve stale latency rows).
            return
        if latency_s.ndim != 2 or latency_s.shape[1] != self.size:
            return
        # Rows are stored most-recent-first (see save); replay them
        # stale-first so the LRU's recency matches the writer's — a
        # load into a smaller ``max_rows`` then evicts the *oldest*
        # stored rows, never the newest.
        for spec_hash, row in zip(row_hashes[::-1], latency_s[::-1]):
            self._rows[str(spec_hash)] = np.ascontiguousarray(
                row, dtype=np.float64
            )
        self.loaded_rows = len(self._rows)

    def save(self) -> Path:
        """Atomically persist the arrays (most recent rows first).

        ``row_hashes[0]`` is the most recently used row: the LRU
        iterates stale -> fresh, so the kept slice is reversed before
        writing.  (Persisting the slice in iteration order — as this
        method once did — stored the kept rows oldest-first, so any
        truncating consumer of the file dropped the *newest* rows
        first, the exact opposite of the retention policy.)

        The write is atomic: arrays go to a pid-suffixed ``.tmp*.npz``
        sibling first and ``os.replace`` swaps it in.  The ``finally``
        unlinks the tmp file when the replace never ran (e.g.
        ``np.savez_compressed`` died on a full disk mid-write) — a
        failed save must not leak partial archives next to the cache.
        """
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        # Snapshot via items(): an LRU __getitem__ would *refresh* each
        # row while iterating, silently reshuffling recency as a side
        # effect of saving.
        kept = (
            list(self._rows.items())[-self._max_disk_rows:]
            if self._max_disk_rows > 0
            else []
        )
        kept.reverse()
        hashes = [spec_hash for spec_hash, _ in kept]
        latency_s = (
            np.stack([row for _, row in kept])
            if kept
            else np.empty((0, self.size), dtype=np.float64)
        )
        tmp = self.cache_file.with_suffix(f".tmp{os.getpid()}.npz")
        try:
            np.savez_compressed(
                tmp,
                area_mm2=self.area_mm2,
                valid=self.valid,
                latency_s=latency_s,
                row_hashes=np.asarray(hashes, dtype=str),
            )
            os.replace(tmp, self.cache_file)
        finally:
            tmp.unlink(missing_ok=True)
        self._new_rows_since_save = 0
        return self.cache_file


#: (namespace, skeleton token, cache dir, disk flag) -> TensorizedSpace;
#: one enumeration per process serves every scenario's evaluator.
_TENSOR_MEMO: dict[tuple, TensorizedSpace] = {}


def tensorized_space(
    platform: HardwarePlatform,
    skeleton: SkeletonConfig = CIFAR10_SKELETON,
    cache_dir: Path | None = None,
    use_disk_cache: bool = True,
) -> TensorizedSpace:
    """Build (or reuse) the tensorized space for a (platform, skeleton).

    Memoized per process on the platform's ``cache_namespace()`` — the
    identity that pins every result-affecting parameter — so a study
    running many scenarios on one platform enumerates once.
    """
    resolved_dir = Path(cache_dir) if cache_dir else _default_cache_dir()
    key = (
        platform.cache_namespace(),
        skeleton_token(skeleton),
        str(resolved_dir),
        bool(use_disk_cache),
    )
    tensor = _TENSOR_MEMO.get(key)
    if tensor is None:
        tensor = TensorizedSpace(
            platform, skeleton, cache_dir=resolved_dir,
            use_disk_cache=use_disk_cache,
        )
        _TENSOR_MEMO[key] = tensor
    return tensor
