"""The hardware-platform API: protocol + registry.

The paper co-designs a CNN *and* its accelerator, but which accelerator
family — which area/latency models, over which configuration space — is
an axis of its own.  A :class:`HardwarePlatform` packages that axis
behind a small surface the evaluator consumes:

* ``area_mm2(config)`` / ``batch_area_mm2(cols)`` — silicon area of one
  configuration / of a whole column set at once (the batched
  column-wise query is the first-class interface; the scalar call must
  agree with it bit for bit, which the test suite checks per platform);
* ``network_latency_s(ir, config)`` /
  ``batch_network_latency_s(ir, cols)`` — end-to-end latency of a
  compiled network on one / on every configuration;
* ``config_space()`` — the platform's :class:`AcceleratorSpace`
  (platforms may restrict the searchable parameter domains, e.g. an
  embedded profile without wide engines);
* ``cache_namespace()`` — a stable identity pinning the platform name
  and every result-affecting parameter, so persistent eval-cache rows
  and run-ledger entries from different platforms never mix;
* ``to_dict()`` / the registry's ``from_params`` path — plain-JSON
  round-tripping, so a platform is nameable from a
  :class:`repro.core.study.StudySpec` or ``--set hardware.name=...``.

Platforms register by name — mirroring the accuracy-source registry in
:mod:`repro.core.evaluator` — and the rest of the stack (evaluator,
study specs, CLI, presets) resolves them through
:func:`build_platform`.  The shipped platforms live in
:mod:`repro.hw.dac2020`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.space import AcceleratorSpace
from repro.nasbench.compile import NetworkIR

__all__ = [
    "HardwarePlatform",
    "HardwarePlatformError",
    "PlatformEntry",
    "register_platform",
    "get_platform",
    "list_platforms",
    "build_platform",
    "platform_from_spec",
    "default_platform",
    "params_token",
]


class HardwarePlatformError(ValueError):
    """A platform name or its params could not be resolved."""


def params_token(params: dict | None) -> str:
    """A short stable digest of a params mapping ('' when empty).

    Appended to cache namespaces so *any* parameter difference keeps
    two platform configurations from sharing cached rows.
    """
    if not params:
        return ""
    blob = json.dumps(params, sort_keys=True, default=str)
    return "/p" + hashlib.md5(blob.encode()).hexdigest()[:10]


class HardwarePlatform:
    """Abstract hardware backend of the codesign evaluator.

    Subclasses model one accelerator family.  ``name`` is the
    registered identity, ``params`` the canonical (JSON-plain) mapping
    that reproduces the instance through the registry's build function.
    """

    name: str = "abstract"
    params: dict

    # --- metric queries ---------------------------------------------------
    def area_mm2(self, config: AcceleratorConfig) -> float:
        """Silicon area of one configuration (mm2)."""
        raise NotImplementedError

    def batch_area_mm2(self, cols: dict[str, np.ndarray]) -> np.ndarray:
        """Vectorized :meth:`area_mm2` over config columns.

        Must agree with the scalar call bit for bit on every
        configuration of :meth:`config_space` (property-tested for all
        registered platforms).
        """
        raise NotImplementedError

    def network_latency_s(self, ir: NetworkIR, config: AcceleratorConfig) -> float:
        """End-to-end latency of a compiled network (seconds)."""
        raise NotImplementedError

    def batch_network_latency_s(self, ir: NetworkIR, configs) -> np.ndarray:
        """Vectorized :meth:`network_latency_s` over config columns."""
        raise NotImplementedError

    def config_valid(self, config: AcceleratorConfig) -> bool:
        """Whether a configuration is realizable on this platform.

        The shipped platforms restrict their searchable domains through
        ``config_space()`` instead, so every enumerated configuration
        is valid (the default).  A platform with cross-parameter
        constraints (e.g. a shared DSP budget) overrides this; invalid
        configurations evaluate to ``None`` metrics and earn the
        scenario punishment, exactly like invalid cells.
        """
        return True

    def batch_config_valid(self, cols: dict[str, np.ndarray]) -> np.ndarray:
        """Vectorized :meth:`config_valid` over config columns.

        Must agree with the scalar call on every configuration of
        :meth:`config_space` (the tensorized evaluation path serves
        validity from this array).
        """
        n = len(next(iter(cols.values()))) if cols else 0
        return np.ones(n, dtype=bool)

    # --- identity ---------------------------------------------------------
    def config_space(self) -> AcceleratorSpace:
        """The configuration space this platform can realize."""
        raise NotImplementedError

    def cache_namespace(self) -> str:
        """Stable identity for cache/ledger namespacing.

        Pins the platform name plus every result-affecting parameter;
        two platforms that could disagree on any metric must return
        different namespaces.
        """
        return f"hw/{self.name}{params_token(self.params)}"

    @property
    def is_reference(self) -> bool:
        """True when results are bit-identical to the reference DAC'20
        models over the stock 8640-config space (which is what the
        precomputed bundle latency tables and historical cache rows
        were produced with)."""
        return False

    def to_dict(self) -> dict:
        """Plain-JSON description: ``{"name": ..., "params": ...}``."""
        return {"name": self.name, "params": dict(self.params)}

    def describe(self) -> dict:
        """Human-oriented summary for ``repro hw show``.

        ``config_space_size`` is a pure product of parameter-domain
        lengths — never an enumeration — so describing a
        non-enumerable platform is cheap; ``enumerable`` says whether
        the tensorized fast path could hold the full space (spaces
        past the cap are searched via sampled-fit surrogates instead).
        """
        from repro.hw.tensorized import TENSORIZE_MAX_CONFIGS

        space = self.config_space()
        return {
            "name": self.name,
            "params": dict(self.params),
            "cache_namespace": self.cache_namespace(),
            "config_space_size": space.size,
            "enumerable": space.size <= TENSORIZE_MAX_CONFIGS,
            "parameter_values": {
                key: list(values) for key, values in space.parameters.items()
            },
            "reference": self.is_reference,
        }


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PlatformEntry:
    """One registered hardware-platform recipe."""

    name: str
    build: Callable[[dict], HardwarePlatform]
    description: str = ""


_PLATFORMS: dict[str, PlatformEntry] = {}


def register_platform(
    name: str,
    build: Callable[[dict], HardwarePlatform],
    description: str = "",
    overwrite: bool = False,
) -> PlatformEntry:
    """Register a platform under ``name``.

    ``build`` maps a (possibly empty) params dict to a ready
    :class:`HardwarePlatform`; it must validate the params and raise
    :class:`HardwarePlatformError` on unknown names or bad values.
    """
    if name in _PLATFORMS and not overwrite:
        raise HardwarePlatformError(
            f"hardware platform {name!r} is already registered"
        )
    entry = PlatformEntry(name=name, build=build, description=description)
    _PLATFORMS[name] = entry
    return entry


def list_platforms() -> list[str]:
    """Registered platform names, sorted."""
    return sorted(_PLATFORMS)


def get_platform(name: str) -> PlatformEntry:
    """The registry entry for ``name`` (raises with the known names)."""
    if name not in _PLATFORMS:
        raise HardwarePlatformError(
            f"unknown hardware platform {name!r}; registered: "
            f"{', '.join(list_platforms())}"
        )
    return _PLATFORMS[name]


def build_platform(name: str, params: dict | None = None) -> HardwarePlatform:
    """Construct a registered platform from its params mapping."""
    return get_platform(name).build(dict(params or {}))


def platform_from_spec(data: dict) -> HardwarePlatform:
    """Build a platform from a ``{"name": ..., "params": ...}`` mapping."""
    if not isinstance(data, dict) or "name" not in data:
        raise HardwarePlatformError(
            f"a hardware spec is a mapping with a 'name' (and optional "
            f"'params'), got {data!r}"
        )
    # "label" and "tensorize" are HardwareSpec-level concerns (outcome
    # keying and the evaluation fast path); they never reach the builder.
    unknown = sorted(set(data) - {"name", "params", "label", "tensorize"})
    if unknown:
        raise HardwarePlatformError(
            f"hardware spec has unknown field(s) {unknown}"
        )
    return build_platform(data["name"], data.get("params"))


def default_platform() -> HardwarePlatform:
    """The reference platform every pre-existing experiment ran on."""
    return build_platform("dac2020")
