"""The shipped hardware platforms, all built on the DAC'20 models.

Three registered recipes:

``dac2020``
    The paper's CHaiDNN-style FPGA exactly as modelled by
    :class:`repro.accelerator.AreaModel` /
    :class:`repro.accelerator.LatencyModel` over the stock 8640-config
    space.  This is the *reference* platform: its results are
    bit-identical to the pre-platform-API evaluator, so existing
    goldens, cache rows, and precomputed latency tables stay valid.

``dac2020-scaled``
    A parametric family around the reference: fabric/AXI clocks,
    pipeline and DDR efficiencies, a silicon area scale (process-node
    proxy), and DSP/BRAM budget caps (``max_filter_par`` x
    ``max_pixel_par`` bounds the convolution DSP budget,
    ``max_buffer_depth`` the BRAM spent on on-chip buffers — capped
    parameters simply drop the over-budget domain values).

``embedded-lite``
    A fixed low-area profile: one narrow filter lane group, pixel
    parallelism capped at 16, small buffers, the 256-bit memory
    interface only, and a 100 MHz fabric — the kind of device the
    paper's big designs would never fit.

All three share :class:`Dac2020Platform`, which wires the analytical
models, the per-op :class:`~repro.accelerator.lut.LatencyLUT`
memoization, and the greedy scheduler behind the platform protocol.
"""

from __future__ import annotations

from dataclasses import asdict

import numpy as np

from repro.accelerator.area import AreaModel, AreaModelParams
from repro.accelerator.config import PARAMETER_VALUES, AcceleratorConfig
from repro.accelerator.latency import LatencyModel, LatencyModelParams
from repro.accelerator.lut import LatencyLUT
from repro.accelerator.scheduler import batch_schedule, schedule_network
from repro.accelerator.space import AcceleratorSpace
from repro.hw.platform import (
    HardwarePlatform,
    HardwarePlatformError,
    register_platform,
)
from repro.nasbench.compile import NetworkIR

__all__ = ["Dac2020Platform", "DEFAULT_PLATFORM_NAME"]

DEFAULT_PLATFORM_NAME = "dac2020"


class Dac2020Platform(HardwarePlatform):
    """DAC'20 analytical area/latency models behind the platform API.

    ``params`` should be the registry-level parameter mapping that
    reproduces the instance through ``build_platform`` (the shipped
    builders pass it explicitly).  When constructed by hand with custom
    model objects and no ``params``, a descriptive mapping is derived
    from the models' non-default calibration constants so the cache
    namespace still pins them.
    """

    def __init__(
        self,
        name: str = DEFAULT_PLATFORM_NAME,
        params: dict | None = None,
        area_model: AreaModel | None = None,
        latency_model: LatencyModel | None = None,
        space: AcceleratorSpace | None = None,
        area_scale: float = 1.0,
    ) -> None:
        self.name = name
        self.area_model = area_model or AreaModel()
        self.latency_lut = LatencyLUT(model=latency_model or LatencyModel())
        self._space = space or AcceleratorSpace()
        self.area_scale = float(area_scale)
        self.params = dict(params) if params is not None else self._derived_params()

    def _derived_params(self) -> dict:
        """Non-default model constants, for hand-built instances."""
        out: dict = {}
        for key, model_params, defaults in (
            ("area", self.area_model.params, AreaModelParams()),
            ("latency", self.latency_lut.model.params, LatencyModelParams()),
        ):
            diff = {
                field: value
                for field, value in asdict(model_params).items()
                if value != getattr(defaults, field)
            }
            if diff:
                out[key] = diff
        if self.area_scale != 1.0:
            out["area_scale"] = self.area_scale
        space_diff = {
            param: list(values)
            for param, values in self._space.parameters.items()
            if tuple(values) != PARAMETER_VALUES.get(param)
        }
        if space_diff:
            out["space"] = space_diff
        return out

    # --- metric queries ---------------------------------------------------
    def area_mm2(self, config: AcceleratorConfig) -> float:
        area = self.area_model.area_mm2(config)
        return area if self.area_scale == 1.0 else area * self.area_scale

    def batch_area_mm2(self, cols: dict[str, np.ndarray]) -> np.ndarray:
        area = self.area_model.batch_area_mm2(cols)
        return area if self.area_scale == 1.0 else area * self.area_scale

    def network_latency_s(self, ir: NetworkIR, config: AcceleratorConfig) -> float:
        durations = self.latency_lut.network_durations(ir, config)
        return schedule_network(ir, config, durations=durations).latency_s

    def batch_network_latency_s(self, ir: NetworkIR, configs=None) -> np.ndarray:
        configs = self._space if configs is None else configs
        return batch_schedule(ir, configs, self.latency_lut.model)

    # --- identity ---------------------------------------------------------
    def config_space(self) -> AcceleratorSpace:
        return self._space

    @property
    def is_reference(self) -> bool:
        return (
            self.area_model.params == AreaModelParams()
            and self.latency_lut.model.params == LatencyModelParams()
            and self.area_scale == 1.0
            and {k: tuple(v) for k, v in self._space.parameters.items()}
            == dict(PARAMETER_VALUES)
        )

    def cache_namespace(self) -> str:
        if self.is_reference:
            return f"hw/{DEFAULT_PLATFORM_NAME}"
        return super().cache_namespace()

    def describe(self) -> dict:
        out = super().describe()
        latency_params = self.latency_lut.model.params
        out.update(
            clock_mhz=latency_params.clock_hz / 1e6,
            axi_clock_mhz=latency_params.axi_clock_hz / 1e6,
            compute_efficiency=latency_params.compute_efficiency,
            mem_efficiency=latency_params.mem_efficiency,
            area_scale=self.area_scale,
        )
        return out


# ---------------------------------------------------------------------------
# Registered recipes
# ---------------------------------------------------------------------------

def _check_params(platform: str, params: dict, allowed) -> dict:
    if not isinstance(params, dict):
        raise HardwarePlatformError(
            f"hardware platform {platform!r}: params must be a mapping, "
            f"got {type(params).__name__}"
        )
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise HardwarePlatformError(
            f"hardware platform {platform!r} got unknown parameter(s) "
            f"{unknown}; allowed: {sorted(allowed)}"
        )
    return params


def _check_positive(platform: str, name: str, value) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError):
        value = float("nan")
    if not value > 0:
        raise HardwarePlatformError(
            f"hardware platform {platform!r}: {name} must be a positive "
            f"number, got {value!r}"
        )
    return value


def _capped_space(
    platform: str,
    max_filter_par=None,
    max_pixel_par=None,
    max_buffer_depth=None,
) -> AcceleratorSpace:
    """The stock parameter domains with over-budget values dropped."""
    domains = dict(PARAMETER_VALUES)
    caps = {
        "filter_par": max_filter_par,
        "pixel_par": max_pixel_par,
        "input_buffer_depth": max_buffer_depth,
        "weight_buffer_depth": max_buffer_depth,
        "output_buffer_depth": max_buffer_depth,
    }
    for name, cap in caps.items():
        if cap is None:
            continue
        cap = _check_positive(platform, f"cap on {name}", cap)
        kept = tuple(v for v in domains[name] if v <= cap)
        if not kept:
            raise HardwarePlatformError(
                f"hardware platform {platform!r}: cap {cap:g} on {name} "
                f"leaves no allowed values (smallest is {min(domains[name])})"
            )
        domains[name] = kept
    return AcceleratorSpace(parameters=domains)


def _build_dac2020(params: dict) -> Dac2020Platform:
    _check_params(DEFAULT_PLATFORM_NAME, params, ())
    return Dac2020Platform(name=DEFAULT_PLATFORM_NAME, params={})


_SCALED_DEFAULTS = {
    "clock_mhz": 150.0,
    "axi_clock_mhz": 266.0,
    "compute_efficiency": 0.7,
    "mem_efficiency": 0.55,
    "area_scale": 1.0,
    "max_filter_par": None,
    "max_pixel_par": None,
    "max_buffer_depth": None,
}


def _build_scaled(params: dict) -> Dac2020Platform:
    name = "dac2020-scaled"
    _check_params(name, params, _SCALED_DEFAULTS)
    cfg = {**_SCALED_DEFAULTS, **params}
    for key in ("clock_mhz", "axi_clock_mhz", "area_scale"):
        cfg[key] = _check_positive(name, key, cfg[key])
    for key in ("compute_efficiency", "mem_efficiency"):
        value = _check_positive(name, key, cfg[key])
        if value > 1.0:
            raise HardwarePlatformError(
                f"hardware platform {name!r}: {key} must be in (0, 1], "
                f"got {value:g}"
            )
        cfg[key] = value
    latency_model = LatencyModel(
        LatencyModelParams(
            clock_hz=cfg["clock_mhz"] * 1e6,
            axi_clock_hz=cfg["axi_clock_mhz"] * 1e6,
            compute_efficiency=cfg["compute_efficiency"],
            mem_efficiency=cfg["mem_efficiency"],
        )
    )
    space = _capped_space(
        name,
        max_filter_par=cfg["max_filter_par"],
        max_pixel_par=cfg["max_pixel_par"],
        max_buffer_depth=cfg["max_buffer_depth"],
    )
    return Dac2020Platform(
        name=name,
        params=params,
        latency_model=latency_model,
        space=space,
        area_scale=cfg["area_scale"],
    )


def _build_embedded(params: dict) -> Dac2020Platform:
    name = "embedded-lite"
    _check_params(name, params, ())
    latency_model = LatencyModel(
        LatencyModelParams(clock_hz=100e6, axi_clock_hz=200e6, mem_efficiency=0.5)
    )
    space = AcceleratorSpace(
        parameters={
            **PARAMETER_VALUES,
            "filter_par": (8,),
            "pixel_par": (4, 8, 16),
            "input_buffer_depth": (1024, 2048),
            "weight_buffer_depth": (1024, 2048),
            "output_buffer_depth": (1024, 2048),
            "mem_interface_width": (256,),
        }
    )
    return Dac2020Platform(
        name=name, params={}, latency_model=latency_model, space=space
    )


register_platform(
    DEFAULT_PLATFORM_NAME,
    _build_dac2020,
    description="the paper's CHaiDNN-style FPGA (reference models, "
    "8640-config space; bit-identical to the pre-platform evaluator)",
)
register_platform(
    "dac2020-scaled",
    _build_scaled,
    description="parametric dac2020 family: clock_mhz / axi_clock_mhz / "
    "compute_efficiency / mem_efficiency / area_scale, plus DSP/BRAM "
    "budget caps max_filter_par / max_pixel_par / max_buffer_depth",
)
register_platform(
    "embedded-lite",
    _build_embedded,
    description="fixed low-area embedded profile: filter_par=8, "
    "pixel_par<=16, small buffers, 256-bit memory, 100 MHz fabric",
)
