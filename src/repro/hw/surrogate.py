"""Learned hardware-cost surrogates: ``surrogate:<platform>``.

The exact scheduler/LUT hardware path caps us at spaces small enough to
enumerate — full-space tensorization (:mod:`repro.hw.tensorized`)
deliberately refuses beyond :data:`~repro.hw.tensorized.TENSORIZE_MAX_CONFIGS`
configurations, so bigger platforms have no fast path at all.  Following
Shi et al. 2020 ("Learned Hardware/Software Co-Design of Neural
Accelerators"), this module learns the exact models instead of
enumerating them:

* :func:`config_features` / :func:`ir_features` /
  :func:`latency_features` — dense float64 feature matrices from
  platform config columns and compiled-network totals (raw values plus
  physics-shaped interactions like MACs-per-DSP and bytes-per-bus-bit);
* :class:`RidgeRegressor` + :class:`BoostedStumps` — a small,
  deterministic, pure-numpy regressor stack (closed-form ridge on
  standardized features, then gradient-boosted decision stumps on the
  residual), fitted per (platform, metric) in log space;
* :func:`fit_surrogate` — draws seeded samples from the exact
  ``batch_area_mm2`` / ``batch_network_latency_s`` paths and returns a
  JSON-serializable :class:`SurrogateModel` artifact.  The artifact is
  digest-pinned to the base platform's ``cache_namespace()`` *and*
  carries exact probe values; a warm load that disagrees with a fresh
  exact probe pass is silently discarded and refitted, mirroring
  :class:`repro.hw.tensorized.TensorizedSpace`'s drift contract;
* :class:`SurrogatePlatform` — the full :class:`HardwarePlatform`
  protocol over the fitted models, registered as ``surrogate:<name>``
  for every shipped platform.  Batch and scalar queries agree bit for
  bit because prediction is strictly element-wise (feature columns are
  combined with explicit per-feature accumulation, never a matmul);
* :func:`validate_surrogate` — the error-budget harness behind
  ``repro hw validate-surrogate``: MAE, max relative error, and
  Spearman rank correlation against the exact platform on a held-out
  sample (fresh seed, fresh cells), failing when the stated budget is
  exceeded.

The surrogate is an *estimator*: its metrics are close, not exact, so
it gets its own ``cache_namespace()`` (pinned to the artifact digest —
any refit that changes a weight changes the namespace) and its results
must never be mixed with exact rows.  The two-tier search mode
(:mod:`repro.search.two_tier`) uses it only to rank proposals; every
told/cached/ledgered result still comes from the exact platform.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.accelerator.space import AcceleratorSpace
from repro.hw.platform import (
    HardwarePlatform,
    HardwarePlatformError,
    build_platform,
    list_platforms,
    register_platform,
)
from repro.hw.tensorized import skeleton_token
from repro.nasbench import ops as O
from repro.nasbench.compile import NetworkIR, compile_cell_ops
from repro.nasbench.model_spec import ModelSpec
from repro.nasbench.skeleton import CIFAR10_SKELETON, SkeletonConfig
from repro.utils.rng import hash_seed, make_rng

__all__ = [
    "SURROGATE_PREFIX",
    "DEFAULT_FIT_SAMPLES",
    "DEFAULT_FIT_SEED",
    "DEFAULT_ERROR_BUDGET",
    "FEATURE_VERSION",
    "RidgeRegressor",
    "BoostedStumps",
    "RegressorStack",
    "SurrogateModel",
    "SurrogatePlatform",
    "config_features",
    "ir_features",
    "latency_features",
    "fit_surrogate",
    "surrogate_model_for",
    "register_surrogate_platforms",
    "validate_surrogate",
    "spearman_rank_correlation",
]

#: Registry prefix: ``surrogate:dac2020`` wraps the ``dac2020`` recipe.
SURROGATE_PREFIX = "surrogate:"

#: Default training-sample count / seed used by the registry builders.
DEFAULT_FIT_SAMPLES = 512
DEFAULT_FIT_SEED = 0

#: Bump when the feature extractors change: artifacts fitted against an
#: older featurization must refit, not mispredict.
FEATURE_VERSION = 1

#: The stated error budget ``validate_surrogate`` enforces.  Area is an
#: analytic function of eight tabular parameters, so the stack nearly
#: interpolates it; latency must generalize across unseen *cells*, so
#: its budget is looser.  Rank correlation is the budget that matters
#: for two-tier filtering — a surrogate that orders proposals like the
#: exact model loses nothing when the top slice is re-scored exactly.
DEFAULT_ERROR_BUDGET: dict[str, dict[str, float]] = {
    "area": {"mean_rel_error": 0.05, "max_rel_error": 0.25, "min_rank_corr": 0.97},
    "latency": {"mean_rel_error": 0.25, "max_rel_error": 1.50, "min_rank_corr": 0.90},
}


# ---------------------------------------------------------------------------
# Feature extraction
# ---------------------------------------------------------------------------

def _col(cols: dict, name: str) -> np.ndarray:
    return np.asarray(cols[name], dtype=np.float64)


def config_features(cols: dict[str, np.ndarray]) -> np.ndarray:
    """Dense ``(n, F)`` float64 feature matrix from config columns.

    Raw parameter values plus the derived quantities the analytic
    models pivot on: the convolution DSP budget and its dual-engine
    split, per-buffer byte capacities, and the reciprocal throughput
    terms (``1/parallelism``, ``1/bus width``) that make latency nearly
    linear in the features.  Strictly element-wise, so row ``i`` of a
    batch equals the single-row matrix of configuration ``i`` bit for
    bit — the property the batch==scalar platform contract rides on.
    """
    filter_par = _col(cols, "filter_par")
    pixel_par = _col(cols, "pixel_par")
    ratio = _col(cols, "ratio_conv_engines")
    in_depth = _col(cols, "input_buffer_depth")
    w_depth = _col(cols, "weight_buffer_depth")
    out_depth = _col(cols, "output_buffer_depth")
    bus = _col(cols, "mem_interface_width")
    pool = _col(cols, "pool_enable")

    total_dsp = filter_par * pixel_par
    dual = ratio < 1.0
    # Mirrors AcceleratorConfig.dsp_split: the 1x1 engine takes
    # ``ratio`` of the pixel lanes (>= 1, <= lanes - 1) when dual.
    lanes_1x1 = np.clip(np.round(ratio * pixel_par), 1.0, pixel_par - 1.0)
    dsp_1x1 = np.where(dual, lanes_1x1 * filter_par, 0.0)
    dsp_3x3 = total_dsp - dsp_1x1
    # Effective budget serving each kind: a single general engine runs
    # both convolution shapes on the full budget.
    eff_3x3 = np.where(dual, dsp_3x3, total_dsp)
    eff_1x1 = np.where(dual, dsp_1x1, total_dsp)

    features = [
        filter_par,
        pixel_par,
        ratio,
        in_depth,
        w_depth,
        out_depth,
        bus,
        pool,
        total_dsp,
        dsp_3x3,
        dsp_1x1,
        np.log2(total_dsp),
        1.0 / total_dsp,
        1.0 / eff_3x3,
        1.0 / eff_1x1,
        1.0 / pixel_par,
        1.0 / filter_par,
        1.0 / bus,
        in_depth * pixel_par,
        w_depth * filter_par,
        out_depth * pixel_par,
        np.log2(in_depth),
        np.log2(w_depth),
        np.log2(out_depth),
        pool / pixel_par,
        dual.astype(np.float64),
    ]
    return np.column_stack(features)


def ir_features(ir: NetworkIR) -> np.ndarray:
    """``(G,)`` float64 totals of a compiled network.

    MACs are split by convolution shape because dual-engine configs
    serve 3x3 and 1x1 work from different DSP pools; byte totals feed
    the memory-bound terms; pooling work is kept separate because
    ``pool_enable`` moves it between fabric and CPU.
    """
    macs_3x3 = 0.0
    macs_1x1 = 0.0
    pool_work = 0.0
    glue_work = 0.0
    in_bytes = 0.0
    out_bytes = 0.0
    weight_bytes = 0.0
    for op in ir.ops:
        if op.kind in (O.KIND_CONV3X3, O.KIND_STEM):
            macs_3x3 += op.macs
        elif op.kind in (O.KIND_CONV1X1, O.KIND_PROJ1X1, O.KIND_DENSE):
            macs_1x1 += op.macs
        elif op.kind in O.POOL_KINDS:
            pool_work += op.work
        else:
            glue_work += op.work
        in_bytes += op.input_bytes
        out_bytes += op.output_bytes
        weight_bytes += op.weight_bytes
    total_macs = macs_3x3 + macs_1x1
    return np.array(
        [
            total_macs,
            macs_3x3,
            macs_1x1,
            pool_work,
            glue_work,
            in_bytes + out_bytes,
            weight_bytes,
            float(len(ir.ops)),
            np.log1p(total_macs),
        ],
        dtype=np.float64,
    )


def latency_features(ir: NetworkIR, cols: dict[str, np.ndarray]) -> np.ndarray:
    """``(n, F)`` joint features of one network across config columns.

    Config features, the network totals broadcast per row, and the
    interaction terms that carry most of the signal: compute work over
    the DSP pool serving it, memory traffic over the bus width, pooling
    work routed by ``pool_enable``.  Element-wise like
    :func:`config_features`.
    """
    cfg = config_features(cols)
    irf = ir_features(ir)
    n = cfg.shape[0]
    total_dsp = cfg[:, 8]
    inv_3x3 = cfg[:, 13]
    inv_1x1 = cfg[:, 14]
    inv_pixel = cfg[:, 15]
    inv_bus = cfg[:, 17]
    pool_col = cfg[:, 7]
    total_macs, macs_3x3, macs_1x1 = irf[0], irf[1], irf[2]
    pool_work, glue_work, act_bytes, weight_bytes = irf[3], irf[4], irf[5], irf[6]

    interactions = [
        total_macs / total_dsp,
        macs_3x3 * inv_3x3,
        macs_1x1 * inv_1x1,
        (macs_3x3 * inv_3x3) + (macs_1x1 * inv_1x1),
        pool_work * pool_col * inv_pixel,
        pool_work * (1.0 - pool_col),
        glue_work * inv_pixel,
        act_bytes * inv_bus,
        weight_bytes * inv_bus,
        (act_bytes + weight_bytes) * inv_bus,
    ]
    broadcast = [np.full(n, value) for value in irf]
    return np.column_stack([cfg] + broadcast + interactions)


# ---------------------------------------------------------------------------
# The regressor stack (pure numpy, deterministic)
# ---------------------------------------------------------------------------

@dataclass
class RidgeRegressor:
    """Closed-form ridge regression on standardized features."""

    mean: np.ndarray
    scale: np.ndarray
    weights: np.ndarray
    intercept: float

    @classmethod
    def fit(cls, X: np.ndarray, y: np.ndarray, lam: float = 1e-3) -> "RidgeRegressor":
        mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale = np.where(scale > 0, scale, 1.0)
        Z = (X - mean) / scale
        intercept = float(y.mean())
        centered = y - intercept
        gram = Z.T @ Z + lam * len(y) * np.eye(Z.shape[1])
        weights = np.linalg.solve(gram, Z.T @ centered)
        return cls(mean=mean, scale=scale, weights=weights, intercept=intercept)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Element-wise accumulation: row ``i`` of a batch is bit-identical
        to predicting row ``i`` alone (no matmul — BLAS kernels may sum
        in a shape-dependent order)."""
        acc = np.full(X.shape[0], self.intercept, dtype=np.float64)
        for j in range(X.shape[1]):
            acc = acc + ((X[:, j] - self.mean[j]) / self.scale[j]) * self.weights[j]
        return acc

    def to_dict(self) -> dict:
        return {
            "mean": self.mean.tolist(),
            "scale": self.scale.tolist(),
            "weights": self.weights.tolist(),
            "intercept": self.intercept,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RidgeRegressor":
        return cls(
            mean=np.asarray(data["mean"], dtype=np.float64),
            scale=np.asarray(data["scale"], dtype=np.float64),
            weights=np.asarray(data["weights"], dtype=np.float64),
            intercept=float(data["intercept"]),
        )


@dataclass
class BoostedStumps:
    """Gradient-boosted depth-1 trees on the ridge residual.

    Each round greedily picks the (feature, threshold) split minimizing
    squared error of the current residual, with deterministic
    tie-breaking (lowest feature index, then lowest split position) so
    refits are bit-reproducible.  Stored as flat ``(feature, threshold,
    left, right)`` rows — trivially JSON-serializable.
    """

    stumps: list[tuple[int, float, float, float]] = field(default_factory=list)

    @classmethod
    def fit(
        cls,
        X: np.ndarray,
        residual: np.ndarray,
        rounds: int = 300,
        learning_rate: float = 0.12,
    ) -> "BoostedStumps":
        n, n_features = X.shape
        residual = residual.astype(np.float64).copy()
        stumps: list[tuple[int, float, float, float]] = []
        if n < 4:
            return cls(stumps)
        orders = [np.argsort(X[:, j], kind="stable") for j in range(n_features)]
        sorted_cols = [X[orders[j], j] for j in range(n_features)]
        # Candidate split positions: boundaries between distinct sorted
        # values (the only places a threshold changes the partition).
        positions = []
        for j in range(n_features):
            xs = sorted_cols[j]
            pos = np.nonzero(xs[1:] != xs[:-1])[0] + 1
            positions.append(pos)
        total = residual.sum()
        for _ in range(rounds):
            best = None  # (gain, j, pos)
            for j in range(n_features):
                pos = positions[j]
                if len(pos) == 0:
                    continue
                r_sorted = residual[orders[j]]
                prefix = np.cumsum(r_sorted)
                left_sum = prefix[pos - 1]
                left_cnt = pos.astype(np.float64)
                right_sum = total - left_sum
                right_cnt = n - left_cnt
                gain = left_sum**2 / left_cnt + right_sum**2 / right_cnt
                k = int(np.argmax(gain))
                if best is None or gain[k] > best[0]:
                    best = (float(gain[k]), j, int(pos[k]))
            if best is None:
                break
            _, j, p = best
            xs = sorted_cols[j]
            threshold = float((xs[p - 1] + xs[p]) / 2.0)
            mask = X[:, j] <= threshold
            left = learning_rate * float(residual[mask].mean())
            right = learning_rate * float(residual[~mask].mean())
            stumps.append((j, threshold, left, right))
            step = np.where(mask, left, right)
            residual = residual - step
            total = residual.sum()
        return cls(stumps)

    def predict(self, X: np.ndarray) -> np.ndarray:
        acc = np.zeros(X.shape[0], dtype=np.float64)
        for j, threshold, left, right in self.stumps:
            acc = acc + np.where(X[:, j] <= threshold, left, right)
        return acc

    def to_dict(self) -> dict:
        return {"stumps": [[j, t, l, r] for j, t, l, r in self.stumps]}

    @classmethod
    def from_dict(cls, data: dict) -> "BoostedStumps":
        return cls(
            stumps=[
                (int(j), float(t), float(l), float(r))
                for j, t, l, r in data["stumps"]
            ]
        )


@dataclass
class RegressorStack:
    """Ridge trend + boosted-stump residual, predicting in log space."""

    ridge: RidgeRegressor
    stumps: BoostedStumps

    @classmethod
    def fit(
        cls, X: np.ndarray, y: np.ndarray, rounds: int = 300
    ) -> "RegressorStack":
        log_y = np.log(y)
        ridge = RidgeRegressor.fit(X, log_y)
        residual = log_y - ridge.predict(X)
        stumps = BoostedStumps.fit(X, residual, rounds=rounds)
        return cls(ridge=ridge, stumps=stumps)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.exp(self.ridge.predict(X) + self.stumps.predict(X))

    def to_dict(self) -> dict:
        return {"ridge": self.ridge.to_dict(), "stumps": self.stumps.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "RegressorStack":
        return cls(
            ridge=RidgeRegressor.from_dict(data["ridge"]),
            stumps=BoostedStumps.from_dict(data["stumps"]),
        )


# ---------------------------------------------------------------------------
# Training cells
# ---------------------------------------------------------------------------

def _canonical_specs() -> list[ModelSpec]:
    """Hand-written valid cells spanning depth, width, and op mix."""
    C3, C1, MP = O.CONV3X3, O.CONV1X1, O.MAXPOOL3X3

    def chain(ops):
        n = len(ops) + 2
        matrix = np.zeros((n, n), dtype=np.int8)
        for i in range(n - 1):
            matrix[i, i + 1] = 1
        return ModelSpec(matrix, [O.INPUT, *ops, O.OUTPUT])

    specs = [
        chain([C3]),
        chain([C1, C1]),
        chain([C3, C1, MP]),
        chain([C3, C3, C3, C1, MP]),
    ]
    # A branchy 6-vertex cell: input fans out to two paths that join.
    matrix = np.zeros((6, 6), dtype=np.int8)
    for src, dst in ((0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (0, 5), (4, 5)):
        matrix[src, dst] = 1
    specs.append(ModelSpec(matrix, [O.INPUT, C3, C1, C3, MP, O.OUTPUT]))
    return [spec for spec in specs if spec.valid]


def _random_specs(rng: np.random.Generator, count: int) -> list[ModelSpec]:
    """Seeded random valid cells (rejection-sampled)."""
    specs: list[ModelSpec] = []
    interior = list(O.INTERIOR_OPS)
    while len(specs) < count:
        n = int(rng.integers(4, 8))
        matrix = np.triu(
            (rng.random((n, n)) < 0.5).astype(np.int8), k=1
        )
        ops = [O.INPUT] + [
            interior[int(rng.integers(len(interior)))] for _ in range(n - 2)
        ] + [O.OUTPUT]
        spec = ModelSpec(matrix, ops)
        if spec.valid:
            specs.append(spec)
    return specs


def _training_irs(
    skeleton: SkeletonConfig, seed: int, extra_random: int = 3
) -> list[NetworkIR]:
    rng = make_rng(hash_seed("hw-surrogate-cells", seed))
    specs = _canonical_specs() + _random_specs(rng, extra_random)
    return [compile_cell_ops(spec, skeleton) for spec in specs]


# ---------------------------------------------------------------------------
# Per-platform dispatch
# ---------------------------------------------------------------------------
# A platform whose cost structure the CNN-cell featurization cannot
# express (e.g. the tiled-GEMM charm-u50) supplies its own feature
# extractors and training workloads as optional methods; everything
# else falls through to the module-level CNN defaults, keeping the
# dac2020-family fits bit-identical to their pre-hook artifacts.

def _platform_config_features(
    platform: HardwarePlatform, cols: dict[str, np.ndarray]
) -> np.ndarray:
    hook = getattr(platform, "surrogate_config_features", None)
    return hook(cols) if hook is not None else config_features(cols)


def _platform_latency_features(
    platform: HardwarePlatform, ir, cols: dict[str, np.ndarray]
) -> np.ndarray:
    hook = getattr(platform, "surrogate_latency_features", None)
    return hook(ir, cols) if hook is not None else latency_features(ir, cols)


def _platform_training_irs(
    platform: HardwarePlatform, skeleton: SkeletonConfig, seed: int
) -> list:
    hook = getattr(platform, "surrogate_training_irs", None)
    return hook(skeleton, seed) if hook is not None else _training_irs(skeleton, seed)


def _platform_probe_ir(platform: HardwarePlatform, skeleton: SkeletonConfig):
    hook = getattr(platform, "surrogate_probe_ir", None)
    if hook is not None:
        return hook(skeleton)
    return compile_cell_ops(_canonical_specs()[0], skeleton)


def _platform_validation_irs(
    platform: HardwarePlatform,
    rng: np.random.Generator,
    count: int,
    skeleton: SkeletonConfig,
) -> list:
    hook = getattr(platform, "surrogate_validation_irs", None)
    if hook is not None:
        return hook(rng, count)
    return [compile_cell_ops(spec, skeleton) for spec in _random_specs(rng, count)]


# ---------------------------------------------------------------------------
# Fitting + the artifact
# ---------------------------------------------------------------------------

def _sample_indices(
    size: int,
    n_samples: int,
    rng: np.random.Generator,
    platform: HardwarePlatform | None = None,
    space: AcceleratorSpace | None = None,
) -> tuple[np.ndarray, str]:
    """Seeded flat-index sample, rejection-topped-up to valid configs.

    Returns ``(indices, mode)`` where mode is ``"enumerated"`` (space
    small enough to take whole), ``"choice"`` (plain without-replacement
    sample — every drawn config valid), or ``"rejection"`` (invalid
    draws were replaced by fresh valid ones).  The first draw consumes
    the RNG stream exactly as the pre-sampling implementation did, so
    fits on all-valid platforms are bit-identical to their historical
    artifacts.
    """
    if size <= n_samples:
        return np.arange(size), "enumerated"
    draw = np.sort(rng.choice(size, size=n_samples, replace=False))
    if platform is None or space is None:
        return draw, "choice"
    valid = np.asarray(
        platform.batch_config_valid(space.columns_at(draw)), dtype=bool
    )
    if valid.all():
        return draw, "choice"
    kept = set(int(i) for i in draw[valid])
    needed = n_samples - len(kept)
    for _ in range(64):
        if needed <= 0:
            break
        chunk = rng.integers(0, size, size=max(4 * needed, 256))
        chunk_valid = np.asarray(
            platform.batch_config_valid(space.columns_at(chunk)), dtype=bool
        )
        for index in chunk[chunk_valid].tolist():
            if index not in kept:
                kept.add(int(index))
                needed -= 1
                if needed == 0:
                    break
    if needed > 0:
        raise HardwarePlatformError(
            f"platform {platform.name!r}: could not rejection-sample "
            f"{n_samples} valid configurations (space size {size}; the "
            "valid fraction appears to be vanishingly small)"
        )
    return np.sort(np.fromiter(kept, dtype=np.int64, count=len(kept))), "rejection"


def _columns_at(space: AcceleratorSpace, indices: np.ndarray) -> dict[str, np.ndarray]:
    return space.columns_at(indices)


def _error_report(exact: np.ndarray, predicted: np.ndarray) -> dict:
    rel = np.abs(predicted - exact) / exact
    return {
        "mae": float(np.mean(np.abs(predicted - exact))),
        "mean_rel_error": float(rel.mean()),
        "max_rel_error": float(rel.max()),
        "rank_corr": spearman_rank_correlation(exact, predicted),
        "n": int(len(exact)),
    }


def spearman_rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman's rho (Pearson correlation of the rank vectors)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if len(a) < 2:
        return 1.0

    def ranks(x: np.ndarray) -> np.ndarray:
        order = np.argsort(x, kind="stable")
        r = np.empty(len(x), dtype=np.float64)
        r[order] = np.arange(len(x), dtype=np.float64)
        return r

    ra, rb = ranks(a), ranks(b)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = np.sqrt((ra**2).sum() * (rb**2).sum())
    if denom == 0:
        return 1.0
    return float((ra * rb).sum() / denom)


@dataclass
class SurrogateModel:
    """A fitted per-platform cost model, JSON-round-trippable.

    ``digest`` hashes the full serialized artifact, so any change to
    the base platform identity, the featurization, the fit inputs, or a
    single learned weight yields a different digest — which is what the
    :class:`SurrogatePlatform` cache namespace pins.
    """

    base_name: str
    base_namespace: str
    params: dict
    skeleton_token: str
    n_samples: int
    seed: int
    feature_version: int
    area: RegressorStack
    latency: RegressorStack
    report: dict
    probes: dict
    #: Present only when the fit rejection-sampled around invalid
    #: configurations (``{"mode": "rejection", "n_drawn": ...}``);
    #: omitted from the serialized form otherwise so every historical
    #: all-valid fit keeps its digest byte for byte.
    sampling: dict | None = None

    def to_dict(self) -> dict:
        out = {
            "format": 1,
            "base_name": self.base_name,
            "base_namespace": self.base_namespace,
            "params": dict(self.params),
            "skeleton_token": self.skeleton_token,
            "n_samples": self.n_samples,
            "seed": self.seed,
            "feature_version": self.feature_version,
            "models": {
                "area": self.area.to_dict(),
                "latency": self.latency.to_dict(),
            },
            "report": self.report,
            "probes": self.probes,
        }
        if self.sampling:
            out["sampling"] = dict(self.sampling)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SurrogateModel":
        return cls(
            base_name=data["base_name"],
            base_namespace=data["base_namespace"],
            params=dict(data["params"]),
            skeleton_token=data["skeleton_token"],
            n_samples=int(data["n_samples"]),
            seed=int(data["seed"]),
            feature_version=int(data["feature_version"]),
            area=RegressorStack.from_dict(data["models"]["area"]),
            latency=RegressorStack.from_dict(data["models"]["latency"]),
            report=dict(data["report"]),
            probes=dict(data["probes"]),
            sampling=data.get("sampling"),
        )

    @property
    def digest(self) -> str:
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.md5(blob.encode()).hexdigest()

    def save(self, path: Path) -> Path:
        """Atomic write: pid-suffixed tmp sibling + ``os.replace``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}.json")
        try:
            tmp.write_text(json.dumps(self.to_dict(), sort_keys=True))
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    @classmethod
    def load(cls, path: Path) -> "SurrogateModel | None":
        """Read an artifact; ``None`` on a missing/corrupt/alien file."""
        try:
            data = json.loads(Path(path).read_text())
            if data.get("format") != 1:
                return None
            return cls.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            return None


#: Probe budget: this many exact (config, metric) anchor values are
#: stored in the artifact and re-verified against the live platform on
#: every warm load — a drifted model constant can never serve a stale
#: fit (the namespace digest should prevent it, but silently edited
#: calibration constants must not either).
_NUM_PROBES = 8


def _probe_values(
    platform: HardwarePlatform,
    space: AcceleratorSpace,
    skeleton: SkeletonConfig,
) -> dict:
    size = space.size
    step = max(1, size // _NUM_PROBES)
    indices = np.arange(0, size, step)[:_NUM_PROBES]
    cols = _columns_at(space, indices)
    probe_ir = _platform_probe_ir(platform, skeleton)
    return {
        "indices": [int(i) for i in indices],
        "area_mm2": np.asarray(
            platform.batch_area_mm2(cols), dtype=np.float64
        ).tolist(),
        "latency_s": np.asarray(
            platform.batch_network_latency_s(probe_ir, cols), dtype=np.float64
        ).tolist(),
    }


def _probes_match(model: "SurrogateModel", platform: HardwarePlatform,
                  skeleton: SkeletonConfig) -> bool:
    space = platform.config_space()
    fresh = _probe_values(platform, space, skeleton)
    return (
        fresh["indices"] == model.probes.get("indices")
        and fresh["area_mm2"] == model.probes.get("area_mm2")
        and fresh["latency_s"] == model.probes.get("latency_s")
    )


def fit_surrogate(
    platform: HardwarePlatform,
    n_samples: int = DEFAULT_FIT_SAMPLES,
    seed: int = DEFAULT_FIT_SEED,
    skeleton: SkeletonConfig = CIFAR10_SKELETON,
) -> SurrogateModel:
    """Fit area + latency surrogates against the exact platform paths.

    Deterministic in ``(platform identity, n_samples, seed,
    skeleton)``: configurations are a seeded sample of the platform's
    space (the whole space when it is small enough), latency targets
    come from the canonical + seeded training cells, and both regressor
    stacks break ties deterministically.  The returned artifact's
    ``report`` holds holdout errors measured at fit time — a fifth of
    the sampled configs and one entire held-out cell never seen by the
    latency fit.
    """
    if isinstance(platform, SurrogatePlatform):
        raise HardwarePlatformError(
            f"platform {platform.name!r} is already a surrogate — refusing "
            "to fit a surrogate of a surrogate"
        )
    if n_samples < 16:
        raise HardwarePlatformError(
            f"fit_surrogate needs at least 16 samples, got {n_samples}"
        )
    space = platform.config_space()
    rng = make_rng(hash_seed("hw-surrogate", platform.cache_namespace(), n_samples, seed))
    indices, mode = _sample_indices(
        space.size, n_samples, rng, platform=platform, space=space
    )
    cols = _columns_at(space, indices)
    n = len(indices)
    holdout = np.zeros(n, dtype=bool)
    holdout[rng.permutation(n)[: max(1, n // 5)]] = True

    # --- area: config-only -------------------------------------------------
    area_exact = np.asarray(platform.batch_area_mm2(cols), dtype=np.float64)
    X_area = _platform_config_features(platform, cols)
    area_stack = RegressorStack.fit(X_area[~holdout], area_exact[~holdout])
    area_report = _error_report(
        area_exact[holdout], area_stack.predict(X_area[holdout])
    )

    # --- latency: joint (workload, config) --------------------------------
    irs = _platform_training_irs(platform, skeleton, seed)
    holdout_ir = irs[-1]  # an entire workload the fit never sees
    train_irs = irs[:-1]
    X_parts, y_parts = [], []
    for ir in train_irs:
        X_parts.append(_platform_latency_features(platform, ir, cols)[~holdout])
        y_parts.append(
            np.asarray(
                platform.batch_network_latency_s(ir, cols), dtype=np.float64
            )[~holdout]
        )
    latency_stack = RegressorStack.fit(
        np.vstack(X_parts), np.concatenate(y_parts), rounds=400
    )
    X_hold = _platform_latency_features(platform, holdout_ir, cols)[holdout]
    y_hold = np.asarray(
        platform.batch_network_latency_s(holdout_ir, cols), dtype=np.float64
    )[holdout]
    latency_report = _error_report(y_hold, latency_stack.predict(X_hold))

    return SurrogateModel(
        base_name=platform.name,
        base_namespace=platform.cache_namespace(),
        params=dict(platform.params),
        skeleton_token=skeleton_token(skeleton),
        n_samples=int(n_samples),
        seed=int(seed),
        feature_version=FEATURE_VERSION,
        area=area_stack,
        latency=latency_stack,
        report={"area": area_report, "latency": latency_report},
        probes=_probe_values(platform, space, skeleton),
        sampling=(
            {"mode": mode, "n_drawn": int(n)} if mode == "rejection" else None
        ),
    )


def _default_cache_dir() -> Path:
    from repro.experiments.common import default_cache_dir

    return default_cache_dir() / "surrogate"


def _artifact_path(
    cache_dir: Path,
    base_namespace: str,
    skeleton: SkeletonConfig,
    n_samples: int,
    seed: int,
    space_size: int,
) -> Path:
    digest = hashlib.md5(base_namespace.encode()).hexdigest()[:10]
    # The sampling mode is part of the key: a fit sampled from a big
    # space must never warm-load as (or clobber) a full-space
    # enumeration fit, even if the platform's space later shrinks or
    # grows across the n_samples threshold.
    mode = "full" if space_size <= n_samples else "sampled"
    return Path(cache_dir) / (
        f"surrogate_{digest}_{skeleton_token(skeleton)}"
        f"_n{n_samples}_s{seed}_{mode}_v{FEATURE_VERSION}.json"
    )


#: (base namespace, skeleton token, n, seed, cache dir, disk flag) ->
#: SurrogateModel; one fit per process serves every evaluator/test.
_SURROGATE_MEMO: dict[tuple, SurrogateModel] = {}


def surrogate_model_for(
    platform: HardwarePlatform,
    n_samples: int = DEFAULT_FIT_SAMPLES,
    seed: int = DEFAULT_FIT_SEED,
    skeleton: SkeletonConfig = CIFAR10_SKELETON,
    cache_dir: Path | None = None,
    use_disk_cache: bool = True,
) -> SurrogateModel:
    """Load-or-fit the surrogate artifact for a platform.

    Mirrors :func:`repro.hw.tensorized.tensorized_space`'s cache
    contract: the artifact file is keyed by a digest of the base
    platform's ``cache_namespace()`` (plus skeleton and fit inputs), a
    warm load is discarded unless its pinned namespace, feature
    version, *and* stored exact probe values all match the live
    platform, and fitting writes the artifact back atomically.
    """
    resolved_dir = Path(cache_dir) if cache_dir else _default_cache_dir()
    key = (
        platform.cache_namespace(),
        skeleton_token(skeleton),
        int(n_samples),
        int(seed),
        str(resolved_dir),
        bool(use_disk_cache),
    )
    model = _SURROGATE_MEMO.get(key)
    if model is not None:
        return model
    path = _artifact_path(
        resolved_dir,
        platform.cache_namespace(),
        skeleton,
        n_samples,
        seed,
        platform.config_space().size,
    )
    if use_disk_cache:
        model = SurrogateModel.load(path)
        if model is not None and (
            model.base_namespace != platform.cache_namespace()
            or model.feature_version != FEATURE_VERSION
            or model.skeleton_token != skeleton_token(skeleton)
            or not _probes_match(model, platform, skeleton)
        ):
            model = None  # drifted artifact: refuse it, refit below
    if model is None:
        model = fit_surrogate(
            platform, n_samples=n_samples, seed=seed, skeleton=skeleton
        )
        if use_disk_cache:
            model.save(path)
    _SURROGATE_MEMO[key] = model
    return model


# ---------------------------------------------------------------------------
# The platform
# ---------------------------------------------------------------------------

def _as_columns(configs, space: AcceleratorSpace) -> dict[str, np.ndarray]:
    """Coerce the batch-call operand to a column dict (like the exact
    platforms' ``batch_schedule`` does)."""
    if configs is None:
        return space.columns()
    if hasattr(configs, "columns"):
        return configs.columns()
    if isinstance(configs, dict):
        return {name: np.asarray(values) for name, values in configs.items()}
    configs = list(configs) if not hasattr(configs, "to_dict") else [configs]
    return {
        name: np.asarray([getattr(config, name) for config in configs])
        for name in space.names
    }


class SurrogatePlatform(HardwarePlatform):
    """The learned cost models behind the full platform protocol.

    Wraps a base platform: same ``config_space()`` and validity, but
    area/latency answered by the fitted :class:`SurrogateModel` —
    vectorized over the whole space in microseconds per config, with
    the batch and scalar paths agreeing bit for bit (prediction is
    element-wise by construction).  The cache namespace pins the
    artifact digest, so surrogate rows can never be mistaken for exact
    rows nor for a differently fitted surrogate's.
    """

    def __init__(self, base: HardwarePlatform, model: SurrogateModel) -> None:
        if model.base_namespace != base.cache_namespace():
            raise HardwarePlatformError(
                f"surrogate model was fitted for platform namespace "
                f"{model.base_namespace!r} but wraps {base.cache_namespace()!r}"
            )
        self.base = base
        self.model = model
        self.name = f"{SURROGATE_PREFIX}{base.name}"
        self.params = dict(base.params)
        self._space = base.config_space()

    # --- metric queries ---------------------------------------------------
    # Feature extraction dispatches through the *base* platform, so a
    # platform with its own featurization (charm-u50) is predicted with
    # the same features it was fitted on.
    def area_mm2(self, config) -> float:
        cols = _as_columns([config], self._space)
        return float(
            self.model.area.predict(_platform_config_features(self.base, cols))[0]
        )

    def batch_area_mm2(self, cols) -> np.ndarray:
        return self.model.area.predict(_platform_config_features(self.base, cols))

    def network_latency_s(self, ir: NetworkIR, config) -> float:
        cols = _as_columns([config], self._space)
        return float(
            self.model.latency.predict(
                _platform_latency_features(self.base, ir, cols)
            )[0]
        )

    def batch_network_latency_s(self, ir: NetworkIR, configs=None) -> np.ndarray:
        cols = _as_columns(configs, self._space)
        return self.model.latency.predict(
            _platform_latency_features(self.base, ir, cols)
        )

    def config_valid(self, config) -> bool:
        return self.base.config_valid(config)

    def batch_config_valid(self, cols) -> np.ndarray:
        return self.base.batch_config_valid(cols)

    # --- identity ---------------------------------------------------------
    def config_space(self) -> AcceleratorSpace:
        return self._space

    def cache_namespace(self) -> str:
        return f"hw/{self.name}/m{self.model.digest[:10]}"

    def describe(self) -> dict:
        out = super().describe()
        out.update(
            base_namespace=self.model.base_namespace,
            fit={
                "n_samples": self.model.n_samples,
                "seed": self.model.seed,
                "feature_version": self.model.feature_version,
                "skeleton_token": self.model.skeleton_token,
            },
            error_report=self.model.report,
            error_budget=budget_verdict(self.model.report),
        )
        return out


def budget_verdict(report: dict, budget: dict | None = None) -> dict:
    """Evaluate an error report against the (default) budget."""
    budget = budget or DEFAULT_ERROR_BUDGET
    out: dict = {"passed": True, "metrics": {}}
    for metric, limits in budget.items():
        measured = report.get(metric)
        if measured is None:
            continue
        checks = {
            "mean_rel_error": measured["mean_rel_error"] <= limits["mean_rel_error"],
            "max_rel_error": measured["max_rel_error"] <= limits["max_rel_error"],
            "rank_corr": measured["rank_corr"] >= limits["min_rank_corr"],
        }
        out["metrics"][metric] = {
            "passed": all(checks.values()),
            "checks": checks,
            "measured": {
                "mean_rel_error": measured["mean_rel_error"],
                "max_rel_error": measured["max_rel_error"],
                "rank_corr": measured["rank_corr"],
            },
            "budget": dict(limits),
        }
        out["passed"] = out["passed"] and all(checks.values())
    return out


# ---------------------------------------------------------------------------
# Validation harness (``repro hw validate-surrogate``)
# ---------------------------------------------------------------------------

def validate_surrogate(
    platform: HardwarePlatform | str,
    n_samples: int = 256,
    seed: int = 1,
    skeleton: SkeletonConfig = CIFAR10_SKELETON,
    budget: dict | None = None,
    model: SurrogateModel | None = None,
) -> dict:
    """Score a fitted surrogate against the exact platform, freshly.

    Draws a *new* seeded sample of configurations and a new seeded set
    of cells (disjoint RNG stream from the fit), computes exact and
    predicted area/latency, and reports MAE / mean and max relative
    error / Spearman rank correlation per metric, with a pass/fail
    verdict against ``budget`` (default
    :data:`DEFAULT_ERROR_BUDGET`).  Returns the report dict; the CLI
    turns ``report["budget"]["passed"] == False`` into a non-zero exit.
    """
    if isinstance(platform, str):
        name = platform[len(SURROGATE_PREFIX):] if platform.startswith(
            SURROGATE_PREFIX
        ) else platform
        platform = build_platform(name)
    if isinstance(platform, SurrogatePlatform):
        platform = platform.base
    model = model or surrogate_model_for(platform)
    space = platform.config_space()
    rng = make_rng(
        hash_seed("hw-surrogate-validate", platform.cache_namespace(), n_samples, seed)
    )
    indices, _ = _sample_indices(
        space.size, n_samples, rng, platform=platform, space=space
    )
    cols = _columns_at(space, indices)

    area_exact = np.asarray(platform.batch_area_mm2(cols), dtype=np.float64)
    area_pred = model.area.predict(_platform_config_features(platform, cols))

    eval_irs = _platform_validation_irs(platform, rng, 3, skeleton)
    latency_exact_parts, latency_pred_parts = [], []
    for ir in eval_irs:
        latency_exact_parts.append(
            np.asarray(platform.batch_network_latency_s(ir, cols), dtype=np.float64)
        )
        latency_pred_parts.append(
            model.latency.predict(_platform_latency_features(platform, ir, cols))
        )
    latency_exact = np.concatenate(latency_exact_parts)
    latency_pred = np.concatenate(latency_pred_parts)

    report = {
        "platform": platform.name,
        "base_namespace": platform.cache_namespace(),
        "model_digest": model.digest,
        "n_configs": int(len(indices)),
        "n_cells": len(eval_irs),
        "area": _error_report(area_exact, area_pred),
        "latency": _error_report(latency_exact, latency_pred),
    }
    report["budget"] = budget_verdict(report, budget)
    return report


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _surrogate_builder(base_name: str):
    def build(params: dict) -> SurrogatePlatform:
        base = build_platform(base_name, params)
        model = surrogate_model_for(base)
        return SurrogatePlatform(base, model)

    return build


def register_surrogate_platforms(overwrite: bool = False) -> list[str]:
    """Register ``surrogate:<name>`` for every non-surrogate platform.

    Called at import for the shipped platforms; plugin platforms
    registered later can call it again (idempotent with
    ``overwrite=True``) to gain their surrogate twins.
    """
    registered = []
    for name in list_platforms():
        if name.startswith(SURROGATE_PREFIX):
            continue
        surrogate_name = f"{SURROGATE_PREFIX}{name}"
        if surrogate_name in list_platforms() and not overwrite:
            continue
        register_platform(
            surrogate_name,
            _surrogate_builder(name),
            description=(
                f"learned cost surrogate of {name!r}: ridge + boosted-stump "
                "area/latency models fitted on seeded samples of the exact "
                "paths (see repro.hw.surrogate; params are the base "
                "platform's)"
            ),
            overwrite=overwrite,
        )
        registered.append(surrogate_name)
    return registered


register_surrogate_platforms()
