"""GEMM-sequence workload IR for tiled-matmul accelerators.

A :class:`GemmIR` is the transformer analogue of
:class:`repro.nasbench.compile.NetworkIR`: a flat sequence of
``(M, K, N)`` matrix multiplies with the same duck-typed op surface the
hardware latency models consume (``macs``, ``input_bytes``,
``weight_bytes``, ``output_bytes``, ``signature()``).  Tiled-GEMM
platforms additionally read ``gemm_dims`` to compute tile utilisation;
CNN ops do not expose it, so those platforms fall back to a
``(spatial, in_channels, out_channels)`` view.

This module is a *leaf*: it imports nothing from ``repro.hw`` or
``repro.core``, so both the ``charm-u50`` platform and the
``transformer`` workload can depend on it without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "GemmOp",
    "GemmIR",
    "TRANSFORMER_PARAMETER_VALUES",
    "transformer_gemm_ir",
    "canonical_transformer_irs",
    "random_transformer_params",
    "random_transformer_irs",
]


#: Token domains for the parametric transformer family.  One controller
#: token per entry, in this order (the model half of the ``bert-u50``
#: joint space).  ``hidden % heads == 0`` is the validity rule.
TRANSFORMER_PARAMETER_VALUES: dict[str, tuple] = {
    "depth": (2, 4, 6, 8, 12),
    "heads": (2, 4, 8, 12, 16),
    "hidden": (128, 192, 256, 384, 512, 768),
    "ffn_ratio": (2, 3, 4),
    "seq_len": (64, 128, 256, 384, 512),
}


@dataclass(frozen=True)
class GemmOp:
    """One ``count``-fold repeated ``(m, k, n)`` matrix multiply.

    ``count`` folds per-head attention GEMMs into one op (``count`` =
    number of heads) so the IR stays short while head count still
    shapes tile utilisation through the per-instance dims.  Byte
    counts follow the CNN IR's 8-bit convention; ``has_weights`` is
    False for activation x activation products (attention scores and
    score x value), whose ``k x n`` operand streams from memory as an
    activation, not a resident weight tile.
    """

    index: int
    name: str
    m: int
    k: int
    n: int
    count: int = 1
    has_weights: bool = True
    kind: str = "gemm"

    @property
    def macs(self) -> int:
        return self.count * self.m * self.k * self.n

    @property
    def work(self) -> int:
        return self.macs

    @property
    def params(self) -> int:
        return self.k * self.n if self.has_weights else 0

    @property
    def input_bytes(self) -> int:
        return self.count * self.m * self.k

    @property
    def weight_bytes(self) -> int:
        if self.has_weights:
            return self.k * self.n
        return self.count * self.k * self.n

    @property
    def output_bytes(self) -> int:
        return self.count * self.m * self.n

    @property
    def gemm_dims(self) -> tuple[int, int, int]:
        """Per-instance ``(m, k, n)`` — what a tiled engine schedules."""
        return (self.m, self.k, self.n)

    def signature(self) -> tuple:
        return (self.kind, self.m, self.k, self.n, self.count, self.has_weights)


@dataclass
class GemmIR:
    """A compiled GEMM workload: an ordered list of :class:`GemmOp`."""

    ops: list[GemmOp] = field(default_factory=list)

    def add(self, name: str, m: int, k: int, n: int, *,
            count: int = 1, has_weights: bool = True) -> int:
        index = len(self.ops)
        self.ops.append(GemmOp(index, name, m, k, n,
                               count=count, has_weights=has_weights))
        return index

    @property
    def total_macs(self) -> int:
        return sum(op.macs for op in self.ops)

    @property
    def total_params(self) -> int:
        return sum(op.params for op in self.ops)

    def count_kinds(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for op in self.ops:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    def unique_signatures(self) -> list[tuple]:
        seen: dict[tuple, None] = {}
        for op in self.ops:
            seen.setdefault(op.signature(), None)
        return list(seen)

    def validate(self) -> None:
        for op in self.ops:
            if op.index >= len(self.ops) or self.ops[op.index] is not op:
                raise AssertionError("op index out of sync")
            if min(op.m, op.k, op.n, op.count) <= 0:
                raise AssertionError(f"op {op.index} has non-positive dims")


def transformer_gemm_ir(depth: int, heads: int, hidden: int,
                        ffn_ratio: int, seq_len: int) -> GemmIR:
    """Lower an encoder stack into its GEMM sequence.

    Six GEMMs per layer (QKV, scores, score x V, output projection,
    two FFN matmuls); attention products are per-head ops with
    ``count=heads`` so head width shows up in tile utilisation.
    """
    if hidden % heads != 0:
        raise ValueError(
            f"hidden ({hidden}) must be divisible by heads ({heads})"
        )
    head_dim = hidden // heads
    ir = GemmIR()
    for layer in range(depth):
        prefix = f"layer{layer}"
        ir.add(f"{prefix}/qkv", seq_len, hidden, 3 * hidden)
        ir.add(f"{prefix}/scores", seq_len, head_dim, seq_len,
               count=heads, has_weights=False)
        ir.add(f"{prefix}/attn-v", seq_len, seq_len, head_dim,
               count=heads, has_weights=False)
        ir.add(f"{prefix}/proj", seq_len, hidden, hidden)
        ir.add(f"{prefix}/ffn1", seq_len, hidden, ffn_ratio * hidden)
        ir.add(f"{prefix}/ffn2", seq_len, ffn_ratio * hidden, hidden)
    ir.validate()
    return ir


#: Named reference points used for surrogate training/probing — the
#: GEMM analogue of the canonical NAS-Bench cells.
CANONICAL_TRANSFORMERS: tuple[tuple[str, dict], ...] = (
    ("bert-tiny", dict(depth=2, heads=2, hidden=128, ffn_ratio=4, seq_len=128)),
    ("bert-mini", dict(depth=4, heads=4, hidden=256, ffn_ratio=4, seq_len=128)),
    ("bert-small", dict(depth=4, heads=8, hidden=512, ffn_ratio=4, seq_len=256)),
    ("bert-base", dict(depth=12, heads=12, hidden=768, ffn_ratio=4, seq_len=384)),
)


def canonical_transformer_irs() -> list[GemmIR]:
    return [transformer_gemm_ir(**params) for _, params in CANONICAL_TRANSFORMERS]


def random_transformer_params(rng: np.random.Generator) -> dict:
    """One valid (``hidden % heads == 0``) draw from the token domains."""
    while True:
        params = {
            name: values[int(rng.integers(0, len(values)))]
            for name, values in TRANSFORMER_PARAMETER_VALUES.items()
        }
        if params["hidden"] % params["heads"] == 0:
            return params


def random_transformer_irs(rng: np.random.Generator, count: int) -> list[GemmIR]:
    return [transformer_gemm_ir(**random_transformer_params(rng))
            for _ in range(count)]
