"""Numpy RL stack: LSTM controller, sequential policy, REINFORCE."""

from repro.rl.functional import entropy, log_softmax, one_hot, sigmoid, softmax, xavier_uniform
from repro.rl.gradcheck import max_relative_error, numeric_gradients, policy_loss
from repro.rl.lstm import LSTMCache, LSTMCell, LSTMState
from repro.rl.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.rl.policy import PolicySample, SequencePolicy
from repro.rl.reinforce import ReinforceConfig, ReinforceTrainer

__all__ = [
    "entropy",
    "log_softmax",
    "one_hot",
    "sigmoid",
    "softmax",
    "xavier_uniform",
    "max_relative_error",
    "numeric_gradients",
    "policy_loss",
    "LSTMCache",
    "LSTMCell",
    "LSTMState",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "PolicySample",
    "SequencePolicy",
    "ReinforceConfig",
    "ReinforceTrainer",
]
