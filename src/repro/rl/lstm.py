"""A single LSTM cell with manual forward/backward (numpy).

The paper's controller "is implemented as a single LSTM cell followed
by a linear layer" (Section II-A, after [5]); this is that cell.
Gradients are hand-derived and verified against finite differences in
the test suite (``tests/rl/test_gradcheck.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rl.functional import sigmoid, xavier_uniform

__all__ = ["LSTMCell", "LSTMState", "LSTMCache"]


@dataclass
class LSTMState:
    """Hidden and cell state, shape (batch, hidden)."""

    h: np.ndarray
    c: np.ndarray

    @classmethod
    def zeros(cls, batch: int, hidden: int) -> "LSTMState":
        return cls(np.zeros((batch, hidden)), np.zeros((batch, hidden)))


@dataclass
class LSTMCache:
    """Forward intermediates needed by the backward pass."""

    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    i: np.ndarray
    f: np.ndarray
    g: np.ndarray
    o: np.ndarray
    c: np.ndarray


class LSTMCell:
    """Standard LSTM cell: gates ``i, f, g, o`` in that parameter order."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.params = {
            "wx": xavier_uniform(rng, (input_size, 4 * hidden_size)),
            "wh": xavier_uniform(rng, (hidden_size, 4 * hidden_size)),
            "b": np.zeros(4 * hidden_size),
        }
        # Positive forget-gate bias: standard trick for gradient flow.
        self.params["b"][hidden_size: 2 * hidden_size] = 1.0

    def forward(
        self, x: np.ndarray, state: LSTMState
    ) -> tuple[LSTMState, LSTMCache]:
        """One step; ``x`` has shape (batch, input_size)."""
        hs = self.hidden_size
        z = x @ self.params["wx"] + state.h @ self.params["wh"] + self.params["b"]
        i = sigmoid(z[:, :hs])
        f = sigmoid(z[:, hs: 2 * hs])
        g = np.tanh(z[:, 2 * hs: 3 * hs])
        o = sigmoid(z[:, 3 * hs:])
        c = f * state.c + i * g
        h = o * np.tanh(c)
        cache = LSTMCache(x=x, h_prev=state.h, c_prev=state.c, i=i, f=f, g=g, o=o, c=c)
        return LSTMState(h=h, c=c), cache

    def backward(
        self,
        dh: np.ndarray,
        dc: np.ndarray,
        cache: LSTMCache,
        grads: dict[str, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backprop one step.

        ``dh``/``dc`` are gradients w.r.t. this step's output state;
        returns ``(dx, dh_prev, dc_prev)`` and accumulates parameter
        gradients into ``grads`` (keys as in ``self.params``).
        """
        i, f, g, o, c = cache.i, cache.f, cache.g, cache.o, cache.c
        tanh_c = np.tanh(c)
        do = dh * tanh_c
        dc_total = dc + dh * o * (1.0 - tanh_c**2)
        df = dc_total * cache.c_prev
        di = dc_total * g
        dg = dc_total * i
        dc_prev = dc_total * f

        dzi = di * i * (1.0 - i)
        dzf = df * f * (1.0 - f)
        dzg = dg * (1.0 - g**2)
        dzo = do * o * (1.0 - o)
        dz = np.concatenate([dzi, dzf, dzg, dzo], axis=1)

        grads["wx"] += cache.x.T @ dz
        grads["wh"] += cache.h_prev.T @ dz
        grads["b"] += dz.sum(axis=0)
        dx = dz @ self.params["wx"].T
        dh_prev = dz @ self.params["wh"].T
        return dx, dh_prev, dc_prev

    def zero_grads(self) -> dict[str, np.ndarray]:
        return {k: np.zeros_like(v) for k, v in self.params.items()}
