"""The sequential controller policy (Zoph & Le style, numpy).

One categorical decision per token: the shared LSTM cell consumes the
embedding of the previous decision and a per-token linear head turns
the hidden state into logits over that token's vocabulary.  Sampling
returns everything REINFORCE needs: actions, log-probability, entropy,
and the forward caches for the manual backward pass.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.rl.functional import entropy, log_softmax, softmax, xavier_uniform
from repro.rl.lstm import LSTMCache, LSTMCell, LSTMState

__all__ = ["PolicySample", "PolicyBatch", "SequencePolicy"]


@dataclass
class PolicySample:
    """One sampled action sequence plus backprop bookkeeping."""

    actions: list[int]
    log_prob: float
    entropy: float
    caches: list[LSTMCache] = field(repr=False, default_factory=list)
    hiddens: list[np.ndarray] = field(repr=False, default_factory=list)
    probs: list[np.ndarray] = field(repr=False, default_factory=list)


@dataclass
class PolicyBatch:
    """``n`` rollouts sampled from one set of policy parameters.

    All per-token arrays carry the rollout batch as their leading
    dimension, so one :meth:`SequencePolicy.backward_batch` pass
    backpropagates every rollout at once.
    """

    actions: np.ndarray                                  # (n, T) int64
    log_probs: np.ndarray                                # (n,)
    entropies: np.ndarray                                # (n,)
    caches: list[LSTMCache] = field(repr=False, default_factory=list)
    hiddens: list[np.ndarray] = field(repr=False, default_factory=list)
    probs: list[np.ndarray] = field(repr=False, default_factory=list)

    def __len__(self) -> int:
        return len(self.actions)

    def actions_list(self, i: int) -> list[int]:
        """Rollout ``i``'s action sequence as a plain list."""
        return [int(a) for a in self.actions[i]]

    def subset(self, indices: Sequence[int]) -> "PolicyBatch":
        """The batch restricted to rollouts ``indices`` (in that order).

        Used by the two-tier search mode: a strategy asks for an
        inflated rollout batch, the surrogate tier discards most of it,
        and only the surviving rollouts are REINFORCE-updated.  The
        per-token lists (``caches``/``hiddens``/``probs``, one entry
        per token ``t``) keep their length; the rollout dimension —
        the *leading* axis of every array inside them — is sliced.
        """
        indices = list(indices)
        return PolicyBatch(
            actions=self.actions[indices],
            log_probs=self.log_probs[indices],
            entropies=self.entropies[indices],
            caches=[
                LSTMCache(
                    x=c.x[indices],
                    h_prev=c.h_prev[indices],
                    c_prev=c.c_prev[indices],
                    i=c.i[indices],
                    f=c.f[indices],
                    g=c.g[indices],
                    o=c.o[indices],
                    c=c.c[indices],
                )
                for c in self.caches
            ],
            hiddens=[h[indices] for h in self.hiddens],
            probs=[p[indices] for p in self.probs],
        )


class SequencePolicy:
    """LSTM + per-token heads over a mixed-vocabulary action sequence."""

    def __init__(
        self,
        vocab_sizes: list[int],
        hidden_size: int = 64,
        embedding_size: int = 32,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not vocab_sizes:
            raise ValueError("policy needs at least one token")
        rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
        self.vocab_sizes = list(vocab_sizes)
        self.hidden_size = hidden_size
        self.embedding_size = embedding_size
        self.cell = LSTMCell(embedding_size, hidden_size, rng)
        self.params: dict[str, np.ndarray] = {}
        # Learned start-of-sequence input.
        self.params["start"] = 0.1 * rng.standard_normal(embedding_size)
        for t, vocab in enumerate(self.vocab_sizes):
            self.params[f"head_w{t}"] = xavier_uniform(rng, (hidden_size, vocab))
            self.params[f"head_b{t}"] = np.zeros(vocab)
            if t < len(self.vocab_sizes) - 1:
                # Embedding of token t's decision feeds step t+1.
                self.params[f"emb{t}"] = 0.1 * rng.standard_normal(
                    (vocab, embedding_size)
                )

    # ------------------------------------------------------------------
    def all_params(self) -> dict[str, np.ndarray]:
        """Flat view over every trainable array (LSTM included)."""
        merged = {f"lstm_{k}": v for k, v in self.cell.params.items()}
        merged.update(self.params)
        return merged

    def num_parameters(self) -> int:
        return sum(v.size for v in self.all_params().values())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every trainable array (LSTM + embeddings + heads)."""
        return {k: v.copy() for k, v in self.all_params().items()}

    def load_state_dict(self, params: dict[str, np.ndarray]) -> None:
        """Restore weights saved by :meth:`state_dict`, in place.

        The parameter set and every shape must match — a checkpoint
        from a differently-shaped policy (other vocab sizes, hidden or
        embedding width) is rejected rather than silently truncated.
        """
        merged = self.all_params()
        if set(params) != set(merged):
            missing = sorted(set(merged) - set(params))
            extra = sorted(set(params) - set(merged))
            raise ValueError(
                f"policy checkpoint mismatch: missing {missing}, unexpected {extra}"
            )
        for key, value in params.items():
            value = np.asarray(value, dtype=merged[key].dtype)
            if value.shape != merged[key].shape:
                raise ValueError(
                    f"policy parameter {key!r} has shape {merged[key].shape}, "
                    f"checkpoint has {value.shape}"
                )
            merged[key][...] = value

    def zero_grads(self) -> dict[str, np.ndarray]:
        return {k: np.zeros_like(v) for k, v in self.all_params().items()}

    # ------------------------------------------------------------------
    def _step_input(self, t: int, prev_action: int | None) -> np.ndarray:
        if t == 0:
            return self.params["start"][None, :]
        return self.params[f"emb{t - 1}"][prev_action][None, :]

    def sample(
        self,
        rng: np.random.Generator,
        greedy: bool = False,
        token_mask: list[bool] | None = None,
        frozen_actions: list[int] | None = None,
    ) -> PolicySample:
        """Sample an action sequence.

        ``token_mask``/``frozen_actions`` support the phase and
        separate strategies: masked tokens take the frozen action and
        contribute neither log-probability nor entropy (their policy is
        not updated for them).
        """
        if token_mask is not None and frozen_actions is None:
            raise ValueError("token_mask requires frozen_actions")
        state = LSTMState.zeros(1, self.hidden_size)
        actions: list[int] = []
        caches: list[LSTMCache] = []
        hiddens: list[np.ndarray] = []
        probs: list[np.ndarray] = []
        log_prob = 0.0
        total_entropy = 0.0
        prev_action: int | None = None
        for t, vocab in enumerate(self.vocab_sizes):
            x = self._step_input(t, prev_action)
            state, cache = self.cell.forward(x, state)
            caches.append(cache)
            hiddens.append(state.h.copy())
            logits = state.h @ self.params[f"head_w{t}"] + self.params[f"head_b{t}"]
            p = softmax(logits[0])
            probs.append(p)
            frozen = token_mask is not None and not token_mask[t]
            if frozen:
                action = int(frozen_actions[t])  # type: ignore[index]
            elif greedy:
                action = int(np.argmax(p))
            else:
                action = int(rng.choice(vocab, p=p))
            if not frozen:
                log_prob += float(log_softmax(logits[0])[action])
                total_entropy += float(entropy(p))
            actions.append(action)
            prev_action = action
        return PolicySample(
            actions=actions,
            log_prob=log_prob,
            entropy=total_entropy,
            caches=caches,
            hiddens=hiddens,
            probs=probs,
        )

    def sample_batch(self, rng: np.random.Generator, n: int) -> PolicyBatch:
        """Sample ``n`` rollouts from the current parameters in one pass.

        The LSTM/head matmuls run once per token with the rollout batch
        as the leading dimension instead of once per (token, rollout) —
        the forward cost of a batch approaches that of a single rollout.

        At ``n == 1`` the arithmetic and the RNG stream are exactly
        those of :meth:`sample` (the legacy path already used ``(1, ·)``
        shapes), so batch-size-1 searches are bit-identical to the
        per-point loop.  At ``n > 1`` the categorical draws use one
        inverse-CDF lookup per token (``n`` uniforms at once), which is
        a different — but equally valid — consumption of the stream.
        """
        if n < 1:
            raise ValueError(f"batch size must be positive, got {n}")
        num_tokens = len(self.vocab_sizes)
        state = LSTMState.zeros(n, self.hidden_size)
        actions = np.empty((n, num_tokens), dtype=np.int64)
        log_probs = np.zeros(n)
        entropies = np.zeros(n)
        caches: list[LSTMCache] = []
        hiddens: list[np.ndarray] = []
        probs: list[np.ndarray] = []
        prev: np.ndarray | None = None
        rows = np.arange(n)
        for t, vocab in enumerate(self.vocab_sizes):
            if t == 0:
                x = np.repeat(self.params["start"][None, :], n, axis=0)
            else:
                x = self.params[f"emb{t - 1}"][prev]
            state, cache = self.cell.forward(x, state)
            caches.append(cache)
            hiddens.append(state.h.copy())
            logits = state.h @ self.params[f"head_w{t}"] + self.params[f"head_b{t}"]
            p = softmax(logits, axis=-1)
            probs.append(p)
            if n == 1:
                acts = np.array([rng.choice(vocab, p=p[0])])
            else:
                u = rng.random(n)
                cdf = np.cumsum(p, axis=1)
                acts = np.minimum(
                    (cdf < u[:, None] * cdf[:, -1:]).sum(axis=1), vocab - 1
                )
            log_probs += log_softmax(logits, axis=-1)[rows, acts]
            entropies += entropy(p, axis=-1)
            actions[:, t] = acts
            prev = acts
        return PolicyBatch(
            actions=actions,
            log_probs=log_probs,
            entropies=entropies,
            caches=caches,
            hiddens=hiddens,
            probs=probs,
        )

    # ------------------------------------------------------------------
    def backward(
        self,
        sample: PolicySample,
        advantage: float,
        entropy_beta: float = 0.0,
        token_mask: list[bool] | None = None,
    ) -> dict[str, np.ndarray]:
        """Gradients of ``-(advantage * log_prob + beta * entropy)``.

        Minimizing that loss is REINFORCE ascent on
        ``advantage * log pi`` (plus optional entropy regularization).
        Masked tokens contribute no loss, matching :meth:`sample`.
        """
        grads = self.zero_grads()
        n = len(self.vocab_sizes)
        dh_next = np.zeros((1, self.hidden_size))
        dc_next = np.zeros((1, self.hidden_size))
        for t in range(n - 1, -1, -1):
            p = sample.probs[t]
            action = sample.actions[t]
            vocab = self.vocab_sizes[t]
            frozen = token_mask is not None and not token_mask[t]
            dlogits = np.zeros(vocab)
            if not frozen:
                # d(-adv * log p[a]) / dlogits = adv * (p - onehot)
                dlogits = advantage * p.copy()
                dlogits[action] -= advantage
                if entropy_beta > 0.0:
                    # d(-beta * H) / dlogits = beta * p * (log p + H)
                    log_p = np.log(np.clip(p, 1e-12, 1.0))
                    h_val = -float(np.sum(p * log_p))
                    dlogits += entropy_beta * p * (log_p + h_val)
            dlogits = dlogits[None, :]
            grads[f"head_w{t}"] += sample.hiddens[t].T @ dlogits
            grads[f"head_b{t}"] += dlogits[0]
            dh = dlogits @ self.params[f"head_w{t}"].T + dh_next
            lstm_grads = {
                k.removeprefix("lstm_"): grads[k]
                for k in ("lstm_wx", "lstm_wh", "lstm_b")
            }
            dx, dh_prev, dc_prev = self.cell.backward(
                dh, dc_next, sample.caches[t], lstm_grads
            )
            if t == 0:
                grads["start"] += dx[0]
            else:
                grads[f"emb{t - 1}"][sample.actions[t - 1]] += dx[0]
            dh_next, dc_next = dh_prev, dc_prev
        return grads

    def backward_batch(
        self,
        batch: PolicyBatch,
        advantages: np.ndarray,
        entropy_beta: float = 0.0,
    ) -> dict[str, np.ndarray]:
        """Mean-over-rollouts gradients of the REINFORCE loss.

        One reversed token sweep backpropagates every rollout of
        ``batch`` together (the batch dimension rides through the same
        matmuls as :meth:`backward`).  At batch size 1 the result is
        bit-identical to :meth:`backward` — the mean over one rollout
        is the rollout — which is what keeps batched searches exact at
        ``batch_size=1``.
        """
        n = len(batch)
        advantages = np.asarray(advantages, dtype=np.float64)
        if advantages.shape != (n,):
            raise ValueError(f"expected {n} advantages, got {advantages.shape}")
        grads = self.zero_grads()
        rows = np.arange(n)
        dh_next = np.zeros((n, self.hidden_size))
        dc_next = np.zeros((n, self.hidden_size))
        for t in range(len(self.vocab_sizes) - 1, -1, -1):
            p = batch.probs[t]
            acts = batch.actions[:, t]
            dlogits = advantages[:, None] * p
            dlogits[rows, acts] -= advantages
            if entropy_beta > 0.0:
                log_p = np.log(np.clip(p, 1e-12, 1.0))
                h_val = -np.sum(p * log_p, axis=1, keepdims=True)
                dlogits += entropy_beta * p * (log_p + h_val)
            grads[f"head_w{t}"] += batch.hiddens[t].T @ dlogits
            grads[f"head_b{t}"] += dlogits.sum(axis=0)
            dh = dlogits @ self.params[f"head_w{t}"].T + dh_next
            lstm_grads = {
                k.removeprefix("lstm_"): grads[k]
                for k in ("lstm_wx", "lstm_wh", "lstm_b")
            }
            dx, dh_prev, dc_prev = self.cell.backward(
                dh, dc_next, batch.caches[t], lstm_grads
            )
            if t == 0:
                grads["start"] += dx.sum(axis=0)
            else:
                np.add.at(grads[f"emb{t - 1}"], batch.actions[:, t - 1], dx)
            dh_next, dc_next = dh_prev, dc_prev
        if n > 1:
            for key in grads:
                grads[key] /= n
        return grads

    def apply_update(self, updates: dict[str, np.ndarray]) -> None:
        """In-place add ``updates`` to parameters (optimizer output)."""
        merged = self.all_params()
        for key, delta in updates.items():
            merged[key] += delta

    def action_log_prob(self, actions: list[int]) -> float:
        """Log-probability of a fixed action sequence (evaluation aid)."""
        state = LSTMState.zeros(1, self.hidden_size)
        prev: int | None = None
        total = 0.0
        for t, action in enumerate(actions):
            x = self._step_input(t, prev)
            state, _ = self.cell.forward(x, state)
            logits = state.h @ self.params[f"head_w{t}"] + self.params[f"head_b{t}"]
            total += float(log_softmax(logits[0])[action])
            prev = action
        return total
