"""Optimizers over flat parameter dictionaries (numpy)."""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(grads: dict[str, np.ndarray], max_norm: float) -> float:
    """Scale gradients in place so the global L2 norm <= ``max_norm``.

    Returns the pre-clip norm.
    """
    total = float(np.sqrt(sum(float(np.sum(g**2)) for g in grads.values())))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads.values():
            g *= scale
    return total


class Optimizer:
    """Base: turns gradients into parameter updates (deltas)."""

    def compute_updates(self, grads: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Resumable snapshot of the optimizer's mutable state.

        Stateless optimizers return ``{}``; see the checkpoint/resume
        contract on :meth:`repro.search.SearchStrategy.state_dict`.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        if state:
            raise ValueError(
                f"{type(self).__name__} carries no state, got keys {sorted(state)}"
            )


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, lr: float = 0.1, momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def compute_updates(self, grads: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        updates = {}
        for key, grad in grads.items():
            if self.momentum > 0:
                vel = self._velocity.get(key)
                if vel is None:
                    vel = np.zeros_like(grad)
                vel = self.momentum * vel + grad
                self._velocity[key] = vel
                updates[key] = -self.lr * vel
            else:
                updates[key] = -self.lr * grad
        return updates

    def state_dict(self) -> dict:
        return {"velocity": {k: v.copy() for k, v in self._velocity.items()}}

    def load_state_dict(self, state: dict) -> None:
        self._velocity = {k: np.array(v) for k, v in state["velocity"].items()}


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def compute_updates(self, grads: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        self._t += 1
        updates = {}
        for key, grad in grads.items():
            m = self._m.get(key)
            v = self._v.get(key)
            if m is None:
                m = np.zeros_like(grad)
                v = np.zeros_like(grad)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            self._m[key] = m
            self._v[key] = v
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            updates[key] = -self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        return updates

    def state_dict(self) -> dict:
        return {
            "t": self._t,
            "m": {k: v.copy() for k, v in self._m.items()},
            "v": {k: v.copy() for k, v in self._v.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        self._t = int(state["t"])
        self._m = {k: np.array(v) for k, v in state["m"].items()}
        self._v = {k: np.array(v) for k, v in state["v"].items()}
