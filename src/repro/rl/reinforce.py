"""REINFORCE with an exponential-moving-average baseline.

The paper updates the policy with
``grad_theta pi_theta(s_t) * E(s_t)`` via REINFORCE and SGD (Section
II-A).  A standard EMA baseline subtracts the running reward mean to
reduce gradient variance without changing the expectation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rl.optim import Adam, Optimizer, clip_grad_norm
from repro.rl.policy import PolicyBatch, PolicySample, SequencePolicy

__all__ = ["ReinforceConfig", "ReinforceTrainer"]


@dataclass(frozen=True)
class ReinforceConfig:
    """Hyper-parameters of the REINFORCE update."""

    learning_rate: float = 2e-2
    baseline_momentum: float = 0.95
    entropy_beta: float = 5e-2
    grad_clip: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.baseline_momentum < 1.0:
            raise ValueError("baseline_momentum must be in [0, 1)")
        if self.entropy_beta < 0:
            raise ValueError("entropy_beta must be non-negative")


class ReinforceTrainer:
    """Couples a :class:`SequencePolicy` with the REINFORCE update."""

    def __init__(
        self,
        policy: SequencePolicy,
        config: ReinforceConfig | None = None,
        optimizer: Optimizer | None = None,
    ) -> None:
        self.policy = policy
        self.config = config or ReinforceConfig()
        self.optimizer = optimizer or Adam(lr=self.config.learning_rate)
        self.baseline: float | None = None
        self.num_updates = 0

    def state_dict(self) -> dict:
        """Resumable snapshot: weights, optimizer moments, baseline."""
        return {
            "policy": self.policy.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "baseline": self.baseline,
            "num_updates": self.num_updates,
        }

    def load_state_dict(self, state: dict) -> None:
        self.policy.load_state_dict(state["policy"])
        self.optimizer.load_state_dict(state["optimizer"])
        baseline = state["baseline"]
        self.baseline = None if baseline is None else float(baseline)
        self.num_updates = int(state["num_updates"])

    def sample(self, rng: np.random.Generator, **kwargs) -> PolicySample:
        """Draw one action sequence from the current policy."""
        return self.policy.sample(rng, **kwargs)

    def sample_batch(self, rng: np.random.Generator, n: int) -> PolicyBatch:
        """Draw ``n`` rollouts from the current policy in one pass."""
        return self.policy.sample_batch(rng, n)

    def update(
        self,
        sample: PolicySample,
        reward: float,
        token_mask: list[bool] | None = None,
    ) -> float:
        """One policy-gradient step; returns the advantage used."""
        if self.baseline is None:
            self.baseline = reward
        advantage = reward - self.baseline
        self.baseline = (
            self.config.baseline_momentum * self.baseline
            + (1.0 - self.config.baseline_momentum) * reward
        )
        grads = self.policy.backward(
            sample,
            advantage,
            entropy_beta=self.config.entropy_beta,
            token_mask=token_mask,
        )
        clip_grad_norm(grads, self.config.grad_clip)
        self.policy.apply_update(self.optimizer.compute_updates(grads))
        self.num_updates += 1
        return advantage

    def update_batch(self, batch: PolicyBatch, rewards) -> np.ndarray:
        """One policy-gradient step from a rollout batch.

        Mini-batch REINFORCE: per-rollout advantages are taken against
        the running EMA baseline (updated rollout-by-rollout, in order,
        with exactly the recurrence of :meth:`update`), the gradient is
        the mean over rollouts, and the optimizer steps once.  A batch
        of one is bit-identical to :meth:`update` — same baseline
        stream, same gradients, same optimizer state.  Returns the
        per-rollout advantages.
        """
        rewards = [float(r) for r in rewards]
        if len(rewards) != len(batch):
            raise ValueError(f"expected {len(batch)} rewards, got {len(rewards)}")
        advantages = np.empty(len(rewards))
        for i, reward in enumerate(rewards):
            if self.baseline is None:
                self.baseline = reward
            advantages[i] = reward - self.baseline
            self.baseline = (
                self.config.baseline_momentum * self.baseline
                + (1.0 - self.config.baseline_momentum) * reward
            )
        grads = self.policy.backward_batch(
            batch, advantages, entropy_beta=self.config.entropy_beta
        )
        clip_grad_norm(grads, self.config.grad_clip)
        self.policy.apply_update(self.optimizer.compute_updates(grads))
        self.num_updates += 1
        return advantages
