"""Numerically careful primitives for the numpy RL stack."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "log_softmax", "sigmoid", "one_hot", "xavier_uniform", "entropy"]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable log-softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    expx = np.exp(x[~pos])
    out[~pos] = expx / (1.0 + expx)
    return out


def one_hot(index: int, size: int) -> np.ndarray:
    vec = np.zeros(size, dtype=np.float64)
    vec[index] = 1.0
    return vec


def entropy(probs: np.ndarray, axis: int = -1) -> np.ndarray:
    """Shannon entropy (nats) of probability vectors."""
    safe = np.clip(probs, 1e-12, 1.0)
    return -np.sum(safe * np.log(safe), axis=axis)


def xavier_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = shape[0], shape[-1]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)
