"""Finite-difference gradient checking for the numpy RL stack.

The REINFORCE loss for a *fixed* action sequence is a deterministic
differentiable function of the policy parameters:

``L(theta) = -(advantage * log pi_theta(a) + beta * H_theta(a))``

so analytic gradients from :meth:`SequencePolicy.backward` can be
verified against central differences.  Used by the property tests.
"""

from __future__ import annotations

import numpy as np

from repro.rl.functional import entropy, log_softmax, softmax
from repro.rl.lstm import LSTMState
from repro.rl.policy import SequencePolicy

__all__ = ["policy_loss", "numeric_gradients", "max_relative_error"]


def policy_loss(
    policy: SequencePolicy,
    actions: list[int],
    advantage: float,
    entropy_beta: float = 0.0,
    token_mask: list[bool] | None = None,
) -> float:
    """The scalar REINFORCE loss for a fixed action sequence."""
    state = LSTMState.zeros(1, policy.hidden_size)
    prev: int | None = None
    log_prob = 0.0
    total_entropy = 0.0
    for t, action in enumerate(actions):
        x = policy._step_input(t, prev)
        state, _ = policy.cell.forward(x, state)
        logits = state.h @ policy.params[f"head_w{t}"] + policy.params[f"head_b{t}"]
        frozen = token_mask is not None and not token_mask[t]
        if not frozen:
            log_prob += float(log_softmax(logits[0])[action])
            total_entropy += float(entropy(softmax(logits[0])))
        prev = action
    return -(advantage * log_prob + entropy_beta * total_entropy)


def numeric_gradients(
    policy: SequencePolicy,
    actions: list[int],
    advantage: float,
    entropy_beta: float = 0.0,
    token_mask: list[bool] | None = None,
    epsilon: float = 1e-5,
    max_entries_per_param: int = 8,
    rng: np.random.Generator | None = None,
) -> dict[str, dict[tuple, float]]:
    """Central-difference gradients on a random subset of entries."""
    rng = rng or np.random.default_rng(0)
    params = policy.all_params()
    out: dict[str, dict[tuple, float]] = {}
    for name, array in params.items():
        flat_indices = rng.choice(
            array.size, size=min(max_entries_per_param, array.size), replace=False
        )
        entries: dict[tuple, float] = {}
        for flat in flat_indices:
            idx = np.unravel_index(int(flat), array.shape)
            original = array[idx]
            array[idx] = original + epsilon
            plus = policy_loss(policy, actions, advantage, entropy_beta, token_mask)
            array[idx] = original - epsilon
            minus = policy_loss(policy, actions, advantage, entropy_beta, token_mask)
            array[idx] = original
            entries[idx] = (plus - minus) / (2 * epsilon)
        out[name] = entries
    return out


def max_relative_error(
    analytic: dict[str, np.ndarray],
    numeric: dict[str, dict[tuple, float]],
) -> float:
    """Worst relative error over all checked entries."""
    worst = 0.0
    for name, entries in numeric.items():
        for idx, num in entries.items():
            ana = float(analytic[name][idx])
            denom = max(abs(ana), abs(num), 1e-8)
            worst = max(worst, abs(ana - num) / denom)
    return worst
