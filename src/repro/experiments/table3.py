"""Table III: accelerator parameters of the best discovered points."""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import AcceleratorConfig
from repro.experiments.common import Scale
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.utils.tables import format_markdown

__all__ = ["Table3Result", "run_table3", "PAPER_TABLE3"]

#: The paper's Table III.
PAPER_TABLE3 = {
    "filter_par, pixel_par": {"Cod-1": "(16, 64)", "Cod-2": "(16, 64)"},
    "buffer depths": {"Cod-1": "(4K, 2K, 4K)", "Cod-2": "(8K, 2K, 2K)"},
    "mem_interface_width": {"Cod-1": "256", "Cod-2": "512"},
    "pool_en": {"Cod-1": "false", "Cod-2": "false"},
    "ratio_conv_engines": {"Cod-1": "0.33", "Cod-2": "0.25"},
}


def _describe(config: AcceleratorConfig) -> dict[str, str]:
    def k(depth: int) -> str:
        return f"{depth // 1024}K"

    return {
        "filter_par, pixel_par": f"({config.filter_par}, {config.pixel_par})",
        "buffer depths": (
            f"({k(config.input_buffer_depth)}, {k(config.weight_buffer_depth)}, "
            f"{k(config.output_buffer_depth)})"
        ),
        "mem_interface_width": str(config.mem_interface_width),
        "pool_en": str(config.pool_enable).lower(),
        "ratio_conv_engines": f"{config.ratio_conv_engines:g}",
    }


@dataclass
class Table3Result:
    """HW parameters of our Cod-1/Cod-2 beside the paper's."""

    fig7: Fig7Result

    def rows(self) -> list[tuple]:
        cod1 = self.fig7.cod1.config if self.fig7.cod1 is not None else None
        cod2 = self.fig7.cod2.config if self.fig7.cod2 is not None else None
        described = {
            "Cod-1": _describe(cod1) if cod1 is not None else {},
            "Cod-2": _describe(cod2) if cod2 is not None else {},
        }
        rows = []
        for param, paper_values in PAPER_TABLE3.items():
            rows.append(
                (
                    param,
                    described["Cod-1"].get(param, "-"),
                    paper_values["Cod-1"],
                    described["Cod-2"].get(param, "-"),
                    paper_values["Cod-2"],
                )
            )
        return rows

    def to_markdown(self) -> str:
        return format_markdown(
            ["HW Parameter", "Cod-1 (ours)", "Cod-1 (paper)", "Cod-2 (ours)", "Cod-2 (paper)"],
            self.rows(),
        )


def run_table3(
    fig7: Fig7Result | None = None,
    scale: Scale | None = None,
    seed: int = 0,
    train_store=None,
) -> Table3Result:
    """Build Table III (running the Fig. 7 search if not supplied).

    ``train_store`` passes through to :func:`run_fig7` so re-runs
    warm-start from previously trained cells.  The underlying search
    is registry-built and preset-addressable: ``repro study run
    table3`` runs the same threshold-schedule search from its
    declarative spec (:mod:`repro.experiments.presets`).
    """
    fig7 = fig7 or run_fig7(scale=scale, seed=seed, train_store=train_store)
    return Table3Result(fig7=fig7)
