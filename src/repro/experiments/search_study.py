"""The Section III search-strategy study feeding Fig. 5 and Fig. 6.

For each scenario (unconstrained / 1 constraint / 2 constraints) and
each strategy (combined / phase / separate), run ``num_repeats``
independent searches over the enumerated micro space and keep the
archives.  Fig. 5 consumes the per-repeat best points and the top-100
reward-ranked Pareto points; Fig. 6 consumes the averaged reward
traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from pathlib import Path

from repro.core.evaluator import CodesignEvaluator
from repro.core.reward import RewardConfig
from repro.core.scenarios import PAPER_SCENARIOS, resolve_scenarios, scenario_to_dict
from repro.core.search_space import JointSearchSpace
from repro.experiments.common import Scale, SpaceBundle, load_bundle
from repro.parallel.cache import EvalCache
from repro.parallel.ledger import RunLedger
from repro.search.combined import CombinedSearch
from repro.search.phase import PhaseSearch
from repro.search.runner import RepeatJob, RepeatOutcome, run_grid
from repro.search.separate import SeparateSearch

__all__ = ["SearchStudyResult", "run_search_study", "top_pareto_by_reward", "make_bundle_evaluator"]

STRATEGIES = {
    "combined": CombinedSearch,
    "phase": PhaseSearch,
    "separate": SeparateSearch,
}


def make_bundle_evaluator(
    bundle: SpaceBundle, scenario: RewardConfig
) -> CodesignEvaluator:
    """Database evaluator with the bundle's precomputed latency table."""
    evaluator = CodesignEvaluator.from_database(bundle.database, scenario)
    evaluator.attach_latency_table(
        bundle.latency_ms, bundle.row_of_hash(), bundle.space
    )
    return evaluator


def top_pareto_by_reward(
    bundle: SpaceBundle, scenario: RewardConfig, k: int = 100
) -> list[dict]:
    """Top-``k`` Pareto-optimal points under a scenario's reward.

    The reference set Fig. 5 plots: Pareto points of the full space,
    ranked by the experiment's reward function (infeasible Pareto
    points are excluded, as in the paper).
    """
    from repro.core.pareto import product_space_pareto, reward_ranked_points

    front = product_space_pareto(bundle.accuracy, bundle.area_mm2, bundle.latency_ms)
    return reward_ranked_points(front, scenario, k)


@dataclass
class SearchStudyResult:
    """All repeats for every (scenario, strategy) pair."""

    outcomes: dict[str, dict[str, RepeatOutcome]]
    pareto_top100: dict[str, list[dict]]
    scale: Scale
    extras: dict = field(default_factory=dict)

    def best_points_table(self, scenario: str) -> list[tuple]:
        """Fig. 5 rows: per-repeat best point of each strategy."""
        rows = []
        for strategy, outcome in self.outcomes[scenario].items():
            for entry in outcome.best_entries():
                m = entry.metrics
                rows.append(
                    (
                        strategy,
                        round(m.latency_ms, 2),
                        round(m.accuracy, 2),
                        round(m.area_mm2, 1),
                        round(entry.reward, 4),
                    )
                )
        return rows

    def mean_final_rewards(self) -> dict[str, dict[str, float]]:
        """Scenario -> strategy -> mean best reward over repeats."""
        return {
            scenario: {
                strategy: outcome.mean_best_reward()
                for strategy, outcome in by_strategy.items()
            }
            for scenario, by_strategy in self.outcomes.items()
        }


def run_search_study(
    bundle: SpaceBundle | None = None,
    scale: Scale | None = None,
    scenarios: dict | list | None = None,
    strategies: dict | None = None,
    master_seed: int = 0,
    backend: str = "serial",
    workers: int | None = None,
    eval_cache: EvalCache | str | Path | None = None,
    batch_size: int = 1,
    ledger: RunLedger | str | Path | None = None,
    checkpoint_every: int = 10,
) -> SearchStudyResult:
    """Run the full strategy x scenario grid.

    All (scenario, strategy, repeat) searches form one task bag handed
    to :func:`repro.search.runner.run_grid`, so with
    ``backend="process"`` independent pairs fan out across workers
    alongside their repeats.  Results match the serial backend
    result-for-result under the same ``master_seed``; ``eval_cache``
    (an :class:`repro.parallel.EvalCache` or a path) warm-starts
    evaluations across repeats, workers, and re-runs.

    ``scenarios`` accepts a name -> builder mapping (as produced by
    :func:`repro.core.scenarios.resolve_scenarios` or
    :func:`repro.core.scenarios.load_scenario_file`) or a list of
    registry scenario names; default: the paper's three.
    ``batch_size`` passes through to every strategy's ask/tell driver.

    ``ledger`` (a :class:`repro.parallel.RunLedger` or a path) makes
    the study crash-safe and resumable: finished (scenario, strategy,
    repeat) searches are persisted as they complete and interrupted
    ones restart from their last ``checkpoint_every``-batch
    checkpoint, so re-invoking the study with the same arguments picks
    up where the crashed run stopped (see :func:`run_grid`).
    """
    bundle = bundle or load_bundle()
    scale = scale or Scale.from_env()
    if scenarios is None:
        scenarios = PAPER_SCENARIOS
    elif not isinstance(scenarios, dict):
        scenarios = resolve_scenarios(scenarios)
    strategies = strategies or STRATEGIES

    search_space = JointSearchSpace(cell_encoding=bundle.cell_encoding)
    # Every scenario shares the bundle's accuracy source and hardware
    # models, and the cached triple never depends on the reward — so one
    # store namespace lets scenarios warm-start from each other.
    namespace = f"study/micro{bundle.cell_encoding.max_vertices}"
    pareto_top100: dict[str, list[dict]] = {}
    jobs: list[RepeatJob] = []
    # Label -> (scenario, strategy); labels are opaque keys, so scenario
    # names may contain any characters (including "/").
    job_meta: dict[str, tuple[str, str]] = {}
    # Pinned into the ledger alongside steps/seeds: a resume under an
    # edited scenario *definition* (same name, different constraints)
    # must be refused, not silently mixed with the old rows.
    scenario_definitions: dict[str, dict] = {}
    for scenario_name, scenario_factory in scenarios.items():
        scenario = scenario_factory(bundle.bounds)
        scenario_definitions[scenario_name] = scenario_to_dict(scenario)
        pareto_top100[scenario_name] = top_pareto_by_reward(bundle, scenario)
        evaluator = make_bundle_evaluator(bundle, scenario)
        for strategy_name, strategy_cls in strategies.items():
            label = f"{scenario_name}/{strategy_name}"
            job_meta[label] = (scenario_name, strategy_name)
            jobs.append(
                RepeatJob(
                    label=label,
                    strategy_factory=lambda seed, cls=strategy_cls: cls(
                        search_space, seed=seed
                    ),
                    evaluator_factory=lambda ev=evaluator, sc=scenario: ev.with_reward(sc),
                    cache_scenario=namespace,
                )
            )
    grid = run_grid(
        jobs,
        num_steps=scale.search_steps,
        num_repeats=scale.num_repeats,
        master_seed=master_seed,
        backend=backend,
        workers=workers,
        eval_cache=eval_cache,
        batch_size=batch_size,
        ledger=ledger,
        checkpoint_every=checkpoint_every,
        ledger_context={"space": namespace, "scenarios": scenario_definitions},
    )
    outcomes: dict[str, dict[str, RepeatOutcome]] = {
        scenario_name: {} for scenario_name in scenarios
    }
    for job in jobs:
        scenario_name, strategy_name = job_meta[job.label]
        outcomes[scenario_name][strategy_name] = grid[job.label]
    return SearchStudyResult(
        outcomes=outcomes, pareto_top100=pareto_top100, scale=scale
    )
