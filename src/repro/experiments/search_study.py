"""The Section III search-strategy study feeding Fig. 5 and Fig. 6.

For each scenario (unconstrained / 1 constraint / 2 constraints) and
each strategy (combined / phase / separate), run ``num_repeats``
independent searches over the enumerated micro space and keep the
archives.  Fig. 5 consumes the per-repeat best points and the top-100
reward-ranked Pareto points; Fig. 6 consumes the averaged reward
traces.

The study itself is **spec-driven**: the grid is declared as a
:class:`repro.core.study.StudySpec` (see the ``fig5`` / ``fig6``
presets in :mod:`repro.experiments.presets`) and materialized through
the strategy and accuracy-source registries by
:func:`repro.core.study.run_study`.  :func:`run_search_study` survives
as a deprecated shim that converts its legacy keyword arguments into a
spec — including arbitrary scenario-builder mappings, which inline as
declarative scenario dicts — so historical call sites keep producing
bit-identical results.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from pathlib import Path

from repro.core.evaluator import CodesignEvaluator
from repro.core.reward import RewardConfig
from repro.core.scenarios import resolve_scenarios, scenario_to_dict
from repro.core.study import StudySpec, run_study
from repro.experiments.common import Scale, SpaceBundle, load_bundle
from repro.parallel.cache import EvalCache
from repro.parallel.ledger import RunLedger
from repro.search.combined import CombinedSearch
from repro.search.phase import PhaseSearch
from repro.search.runner import RepeatOutcome
from repro.search.separate import SeparateSearch

__all__ = [
    "SearchStudyResult",
    "run_search_study",
    "top_pareto_by_reward",
    "make_bundle_evaluator",
    "legacy_study_spec",
]

STRATEGIES = {
    "combined": CombinedSearch,
    "phase": PhaseSearch,
    "separate": SeparateSearch,
}


def make_bundle_evaluator(
    bundle: SpaceBundle, scenario: RewardConfig
) -> CodesignEvaluator:
    """Database evaluator with the bundle's precomputed latency table."""
    evaluator = CodesignEvaluator.from_database(
        bundle.database, scenario, platform=bundle.platform
    )
    evaluator.attach_latency_table(
        bundle.latency_ms, bundle.row_of_hash(), bundle.space
    )
    return evaluator


def top_pareto_by_reward(
    bundle: SpaceBundle, scenario: RewardConfig, k: int = 100
) -> list[dict]:
    """Top-``k`` Pareto-optimal points under a scenario's reward.

    The reference set Fig. 5 plots: Pareto points of the full space,
    ranked by the experiment's reward function (infeasible Pareto
    points are excluded, as in the paper).
    """
    from repro.core.pareto import product_space_pareto, reward_ranked_points

    front = product_space_pareto(bundle.accuracy, bundle.area_mm2, bundle.latency_ms)
    return reward_ranked_points(front, scenario, k)


@dataclass
class SearchStudyResult:
    """All repeats for every (scenario, strategy) pair."""

    outcomes: dict[str, dict[str, RepeatOutcome]]
    pareto_top100: dict[str, list[dict]]
    scale: Scale
    extras: dict = field(default_factory=dict)

    def best_points_table(self, scenario: str) -> list[tuple]:
        """Fig. 5 rows: per-repeat best point of each strategy."""
        rows = []
        for strategy, outcome in self.outcomes[scenario].items():
            for entry in outcome.best_entries():
                m = entry.metrics
                rows.append(
                    (
                        strategy,
                        round(m.latency_ms, 2),
                        round(m.accuracy, 2),
                        round(m.area_mm2, 1),
                        round(entry.reward, 4),
                    )
                )
        return rows

    def mean_final_rewards(self) -> dict[str, dict[str, float]]:
        """Scenario -> strategy -> mean best reward over repeats."""
        return {
            scenario: {
                strategy: outcome.mean_best_reward()
                for strategy, outcome in by_strategy.items()
            }
            for scenario, by_strategy in self.outcomes.items()
        }


def legacy_study_spec(
    bundle: SpaceBundle,
    scale: Scale,
    scenarios: dict | list | None = None,
    strategies: dict | None = None,
    master_seed: int = 0,
    backend: str = "serial",
    workers: int | None = None,
    batch_size: int = 1,
    checkpoint_every: int = 10,
    name: str = "search-study",
    hardware: str | dict | list | None = None,
    workload: str = "cnn-cell",
    tensorize: bool = False,
    surrogate: bool = False,
    exact_fraction: float = 0.25,
) -> StudySpec:
    """A :class:`StudySpec` equivalent to the legacy keyword arguments.

    ``scenarios`` accepts the historical forms: ``None`` (the paper's
    three), a list of registry names, or a name -> builder mapping.
    Builder mappings are *inlined*: each builder runs once against the
    bundle's bounds and its resulting config is embedded as a
    declarative scenario dict (the round trip is lossless, so results
    are unchanged — and the definition becomes serializable, which is
    what lets the ledger pin it).  ``strategies`` maps outcome keys to
    strategy classes; classes not yet in
    :mod:`repro.search.registry` are registered on the fly.
    ``hardware`` (a platform name, hardware-spec mapping, or a list of
    them — see :mod:`repro.hw`) selects the hardware backend(s);
    ``None`` keeps the reference ``dac2020``.  ``workload`` names a
    registered workload recipe (default the reference ``cnn-cell`` —
    see :mod:`repro.workloads`).  ``tensorize`` arms the
    full-space tensorized evaluation fast path (see
    :mod:`repro.hw.tensorized`).  ``backend`` is an execution-backend
    registry name (``serial`` / ``process`` / ``cluster`` or a plugin
    — see :mod:`repro.parallel.pool`); validation happens in
    :class:`~repro.core.study.ExecutionSpec` against the registry, so
    every entry point rejects unknown names with the same message.
    """
    from repro.search.registry import register_strategy, strategy_name_of

    if scenarios is None:
        scenario_entries: tuple = (
            "unconstrained",
            "1-constraint",
            "2-constraints",
        )
    elif isinstance(scenarios, dict):
        entries = []
        for key, builder in scenarios.items():
            spec_dict = scenario_to_dict(builder(bundle.bounds))
            # The mapping key, not the config's own name, keys the
            # outcomes (and job labels) — honor it.
            spec_dict["name"] = key
            entries.append(spec_dict)
        scenario_entries = tuple(entries)
    else:
        scenario_entries = tuple(scenarios)

    strategy_entries = []
    for key, cls in (strategies or STRATEGIES).items():
        registered = strategy_name_of(cls)
        if registered is None:
            register_strategy(cls)
            registered = cls.name
        strategy_entries.append({"name": registered, "label": key})

    return StudySpec(
        name=name,
        strategies=tuple(strategy_entries),
        scenarios=scenario_entries,
        evaluator={"source": "database"},
        hardware=() if hardware is None else hardware,
        workload=workload,
        execution={
            "num_steps": scale.search_steps,
            "num_repeats": scale.num_repeats,
            "master_seed": master_seed,
            "batch_size": batch_size,
            "backend": backend,
            "workers": workers,
            "checkpoint_every": checkpoint_every,
            "tensorize": bool(tensorize),
            "surrogate": bool(surrogate),
            "exact_fraction": exact_fraction,
        },
    )


def _run_search_study(
    bundle: SpaceBundle | None = None,
    scale: Scale | None = None,
    scenarios: dict | list | None = None,
    strategies: dict | None = None,
    master_seed: int = 0,
    backend: str = "serial",
    workers: int | None = None,
    eval_cache: EvalCache | str | Path | None = None,
    batch_size: int = 1,
    ledger: RunLedger | str | Path | None = None,
    checkpoint_every: int = 10,
    name: str = "search-study",
    hardware: str | dict | list | None = None,
    workload: str = "cnn-cell",
    tensorize: bool = False,
    surrogate: bool = False,
    exact_fraction: float = 0.25,
) -> SearchStudyResult:
    """Legacy-argument front end over the spec-driven study engine."""
    bundle = bundle or load_bundle()
    scale = scale or Scale.from_env()
    if scenarios is not None and not isinstance(scenarios, (dict, list, tuple)):
        raise TypeError(
            f"scenarios must be a mapping, a list of names, or None, "
            f"got {type(scenarios).__name__}"
        )
    if isinstance(scenarios, (list, tuple)):
        scenarios = resolve_scenarios(scenarios)
    spec = legacy_study_spec(
        bundle,
        scale,
        scenarios=scenarios,
        strategies=strategies,
        master_seed=master_seed,
        backend=backend,
        workers=workers,
        batch_size=batch_size,
        checkpoint_every=checkpoint_every,
        name=name,
        hardware=hardware,
        workload=workload,
        tensorize=tensorize,
        surrogate=surrogate,
        exact_fraction=exact_fraction,
    )
    return run_study(
        spec, bundle=bundle, scale=scale, eval_cache=eval_cache, ledger=ledger
    )


def run_search_study(
    bundle: SpaceBundle | None = None,
    scale: Scale | None = None,
    scenarios: dict | list | None = None,
    strategies: dict | None = None,
    master_seed: int = 0,
    backend: str = "serial",
    workers: int | None = None,
    eval_cache: EvalCache | str | Path | None = None,
    batch_size: int = 1,
    ledger: RunLedger | str | Path | None = None,
    checkpoint_every: int = 10,
) -> SearchStudyResult:
    """Deprecated: build a :class:`StudySpec` and call ``run_study``.

    Kept as a thin shim — the arguments convert via
    :func:`legacy_study_spec` and run through the registry-driven
    engine, producing results bit-identical to the historic closure
    implementation (same per-repeat seeds, same evaluator wiring).
    The ledger now pins the derived ``spec.to_dict()``, so resuming
    still refuses any change to the experiment definition.
    """
    warnings.warn(
        "run_search_study is deprecated: declare the experiment as a "
        "repro.core.study.StudySpec (see repro.experiments.presets) and "
        "call repro.core.study.run_study",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_search_study(
        bundle,
        scale,
        scenarios=scenarios,
        strategies=strategies,
        master_seed=master_seed,
        backend=backend,
        workers=workers,
        eval_cache=eval_cache,
        batch_size=batch_size,
        ledger=ledger,
        checkpoint_every=checkpoint_every,
    )
