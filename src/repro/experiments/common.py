"""Shared experiment infrastructure: enumeration bundles and scaling.

The Section III experiments all consume the same enumerated joint
space: the exhaustive micro cell database crossed with the full 8640
accelerator configurations.  :func:`load_bundle` builds that once —
accuracy vector, area vector, and the full latency matrix via the
vectorized scheduler — and caches it in memory and on disk (the matrix
takes ~1.5 minutes to compute from scratch, milliseconds to reload).

Experiment *scale* is controlled by the ``REPRO_SCALE`` environment
variable:

=========  =========  ========  ==============================
scale      steps      repeats   intended use
=========  =========  ========  ==============================
smoke      300        1         CI / unit-test speed
default    1500       3         pytest-benchmark runs
paper      10000      10        full paper-fidelity runs
=========  =========  ========  ==============================
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.accelerator.space import AcceleratorSpace
from repro.core.reward import MetricBounds
from repro.hw import default_platform
from repro.nasbench.compile import compile_cell_ops
from repro.nasbench.database import CellDatabase, enumerate_unique_cells
from repro.nasbench.encoding import CellEncoding
from repro.nasbench.skeleton import CIFAR10_SKELETON

__all__ = [
    "Scale",
    "SpaceBundle",
    "load_bundle",
    "default_cache_dir",
    "eval_cache_path",
]

_BUNDLE_MEMO: dict[tuple, "SpaceBundle"] = {}


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs."""

    name: str
    search_steps: int
    num_repeats: int
    fig7_target_scale: float  # multiplies the per-rung valid-point targets

    @classmethod
    def named(cls, name: str) -> "Scale":
        """The shipped sizing preset called ``name`` (smoke/default/paper)."""
        presets = {
            "smoke": cls("smoke", 300, 1, 0.1),
            "default": cls("default", 1500, 3, 0.25),
            "paper": cls("paper", 10000, 10, 1.0),
        }
        if name not in presets:
            raise ValueError(
                f"scale must be one of {sorted(presets)}, got {name!r}"
            )
        return presets[name]

    @classmethod
    def from_env(cls, default: str = "default") -> "Scale":
        name = os.environ.get("REPRO_SCALE", default).lower()
        try:
            return cls.named(name)
        except ValueError:
            raise ValueError(
                f"REPRO_SCALE must be one of ['default', 'paper', 'smoke'], "
                f"got {name!r}"
            ) from None


def default_cache_dir() -> Path:
    """On-disk cache location (override with ``REPRO_CACHE_DIR``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path(__file__).resolve().parents[3] / ".cache" / "repro"


def eval_cache_path(cache_dir: Path | None = None) -> Path:
    """Location of the shared persistent evaluation store.

    One sqlite file serves every experiment: search evaluations and
    Section IV training outcomes live in separate namespaces inside it
    (see :class:`repro.parallel.EvalCache`).
    """
    return (cache_dir or default_cache_dir()) / "eval_cache.sqlite"


@dataclass
class SpaceBundle:
    """The enumerated joint space the Section III experiments share."""

    database: CellDatabase
    cell_encoding: CellEncoding
    space: AcceleratorSpace
    accuracy: np.ndarray       # (Nc,) percent
    area_mm2: np.ndarray       # (space.size,)
    latency_ms: np.ndarray     # (Nc, space.size)
    bounds: MetricBounds
    platform: object = None    # the repro.hw platform that enumerated it

    @property
    def num_pairs(self) -> int:
        return int(self.latency_ms.size)

    def row_of_hash(self) -> dict[str, int]:
        return {rec.spec_hash: i for i, rec in enumerate(self.database.records)}

    def perf_per_area(self) -> np.ndarray:
        """(Nc, 8640) img/s/cm2 for every pair."""
        return (1000.0 / self.latency_ms) / (self.area_mm2[None, :] / 100.0)


def load_bundle(
    max_vertices: int = 5,
    use_disk_cache: bool = True,
    cache_dir: Path | None = None,
    platform=None,
) -> SpaceBundle:
    """Build (or reload) the enumerated micro-space bundle.

    ``platform`` (a :class:`repro.hw.HardwarePlatform`) supplies the
    area/latency models and the configuration space; the default is
    the reference ``dac2020`` platform, whose bundle is bit-identical
    to the pre-platform builds (and shares their disk cache files).
    Non-reference platforms cache under a namespace-tagged filename so
    differently modelled bundles never collide on disk.
    """
    platform = platform or default_platform()
    key = (max_vertices, platform.cache_namespace())
    if key in _BUNDLE_MEMO:
        return _BUNDLE_MEMO[key]

    database = CellDatabase.from_specs(enumerate_unique_cells(max_vertices))
    space = platform.config_space()
    cols = space.columns()
    # Vectorized over the full space; bit-identical to the per-config
    # path (tests/accelerator/test_area.py::TestBatchArea).
    area_mm2 = platform.batch_area_mm2(cols)
    accuracy = database.accuracies()

    cache_dir = cache_dir or default_cache_dir()
    tag = (
        ""
        if platform.is_reference
        else "_" + hashlib.md5(platform.cache_namespace().encode()).hexdigest()[:10]
    )
    cache_file = (
        cache_dir / f"bundle_v{max_vertices}_n{len(database)}_h{space.size}{tag}.npz"
    )
    latency_ms: np.ndarray | None = None
    if use_disk_cache and cache_file.exists():
        cached = np.load(cache_file)
        if cached["latency_ms"].shape == (len(database), space.size):
            latency_ms = cached["latency_ms"].astype(np.float64)
    if latency_ms is None:
        latency_ms = np.empty((len(database), space.size), dtype=np.float64)
        for i, record in enumerate(database.records):
            ir = compile_cell_ops(record.spec, CIFAR10_SKELETON)
            latency_ms[i] = platform.batch_network_latency_s(ir, cols) * 1e3
        # The disk cache stores float32; round-trip the fresh build
        # through the same precision so the first run of a bundle is
        # bit-identical to every warm reload after it.
        latency_ms = latency_ms.astype(np.float32).astype(np.float64)
        if use_disk_cache:
            cache_dir.mkdir(parents=True, exist_ok=True)
            np.savez_compressed(cache_file, latency_ms=latency_ms.astype(np.float32))

    bounds = MetricBounds.from_arrays(area_mm2, latency_ms, accuracy)
    bundle = SpaceBundle(
        database=database,
        cell_encoding=CellEncoding(max_vertices=max_vertices),
        space=space,
        accuracy=accuracy,
        area_mm2=area_mm2,
        latency_ms=latency_ms,
        bounds=bounds,
        platform=platform,
    )
    _BUNDLE_MEMO[key] = bundle
    return bundle
