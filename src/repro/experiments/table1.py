"""Table I: estimated FPGA block areas for Zynq UltraScale+."""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.resources import (
    RELATIVE_AREA,
    TILE_AREA_MM2,
    ZYNQ_ULTRASCALE_PLUS,
)
from repro.utils.tables import format_markdown

__all__ = ["Table1Result", "run_table1", "PAPER_TABLE1"]

#: The paper's Table I for comparison in EXPERIMENTS.md.
PAPER_TABLE1 = {
    "clb": {"relative": 1.0, "mm2": 0.0044},
    "bram36": {"relative": 6.0, "mm2": 0.026},
    "dsp": {"relative": 10.0, "mm2": 0.044},
    "total_relative": 64_922,
    "total_mm2": 286.0,
}


@dataclass
class Table1Result:
    """Resource rows + device totals."""

    rows: list[tuple]
    total_relative: float
    total_mm2: float

    def to_markdown(self) -> str:
        header = ["Resource", "Relative Area (CLB)", "Tile Area (mm2)"]
        body = list(self.rows)
        body.append(("Total", round(self.total_relative), round(self.total_mm2, 1)))
        return format_markdown(header, body, digits=4)


def run_table1() -> Table1Result:
    """Regenerate Table I from the resource model."""
    labels = {"clb": "CLB", "bram36": "BRAM - 36 Kbit", "dsp": "DSP"}
    rows = [
        (labels[name], RELATIVE_AREA[name], TILE_AREA_MM2[name])
        for name in ("clb", "bram36", "dsp")
    ]
    device = ZYNQ_ULTRASCALE_PLUS
    return Table1Result(
        rows=rows,
        total_relative=device.total_relative_area(),
        total_mm2=device.total_silicon_area_mm2(),
    )
