"""Experiment harness: one module per paper table/figure, plus ablations."""

from repro.experiments.ablations import (
    AblationRow,
    ablation_markdown,
    run_all_ablations,
    run_punishment_ablation,
    run_random_ablation,
    run_schedule_ablation,
)
from repro.experiments.common import Scale, SpaceBundle, eval_cache_path, load_bundle
from repro.experiments.fig4 import PAPER_FIG4, Fig4Result, run_fig4
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.fig7 import BaselinePoint, Fig7Result, best_accelerator_for, run_fig7
from repro.experiments.presets import get_preset, list_presets, resolve_spec
from repro.experiments.search_study import (
    SearchStudyResult,
    legacy_study_spec,
    make_bundle_evaluator,
    run_search_study,
    top_pareto_by_reward,
)
from repro.experiments.table1 import PAPER_TABLE1, Table1Result, run_table1
from repro.experiments.table2 import PAPER_TABLE2, Table2Result, run_table2
from repro.experiments.table3 import PAPER_TABLE3, Table3Result, run_table3
from repro.experiments.validation import PAPER_VALIDATION, ValidationResult, run_validation

__all__ = [
    "AblationRow",
    "ablation_markdown",
    "run_all_ablations",
    "run_punishment_ablation",
    "run_random_ablation",
    "run_schedule_ablation",
    "Scale",
    "SpaceBundle",
    "eval_cache_path",
    "load_bundle",
    "PAPER_FIG4",
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "BaselinePoint",
    "Fig7Result",
    "best_accelerator_for",
    "run_fig7",
    "get_preset",
    "list_presets",
    "resolve_spec",
    "SearchStudyResult",
    "legacy_study_spec",
    "make_bundle_evaluator",
    "run_search_study",
    "top_pareto_by_reward",
    "PAPER_TABLE1",
    "Table1Result",
    "run_table1",
    "PAPER_TABLE2",
    "Table2Result",
    "run_table2",
    "PAPER_TABLE3",
    "Table3Result",
    "run_table3",
    "PAPER_VALIDATION",
    "ValidationResult",
    "run_validation",
]
