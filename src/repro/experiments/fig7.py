"""Fig. 7: CIFAR-100 codesign with a rising perf/area threshold.

The Section IV flow: no precomputed accuracies — every sampled cell is
"trained" by the (surrogate) trainer — with the combined strategy and a
perf/area constraint that rises over (2, 8, 16, 30, 40) img/s/cm2.
Baselines are the ResNet and GoogLeNet cells paired with their *own*
best accelerator (max perf/area over all 8640 configs).  The best
discovered points that dominate each baseline on both axes are the
run's Cod-1 / Cod-2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accelerator.space import AcceleratorSpace
from repro.core.archive import ArchiveEntry
from repro.core.evaluator import CodesignEvaluator, build_evaluator
from repro.core.reward import MetricBounds
from repro.core.scenarios import cifar100_threshold
from repro.core.search_space import JointSearchSpace
from repro.experiments.common import Scale
from repro.hw import HardwarePlatform, default_platform
from repro.nasbench.compile import compile_cell_ops
from repro.nasbench.known_cells import googlenet_cell, resnet_cell
from repro.nasbench.model_spec import ModelSpec
from repro.nasbench.skeleton import CIFAR100_SKELETON
from repro.search.registry import build_strategy
from repro.search.threshold_schedule import ThresholdRung, default_rungs
from repro.training.cache import CachedTrainer
from repro.training.surrogate_trainer import SurrogateCifar100Trainer
from repro.utils.tables import format_markdown

__all__ = ["BaselinePoint", "Fig7Result", "run_fig7", "best_accelerator_for"]

#: Metric bounds for the CIFAR-100 joint space (accuracy is CIFAR-100).
CIFAR100_BOUNDS = MetricBounds(
    area_mm2=(50.0, 210.0), latency_ms=(3.0, 1400.0), accuracy=(55.0, 76.5)
)


@dataclass(frozen=True)
class BaselinePoint:
    """A reference cell on its most perf/area-optimal accelerator."""

    name: str
    spec: ModelSpec
    config_index: int
    accuracy: float
    latency_ms: float
    area_mm2: float

    @property
    def perf_per_area(self) -> float:
        return (1000.0 / self.latency_ms) / (self.area_mm2 / 100.0)


def best_accelerator_for(
    spec: ModelSpec,
    accuracy: float,
    name: str,
    space: AcceleratorSpace | None = None,
    platform: HardwarePlatform | None = None,
) -> BaselinePoint:
    """Sweep the platform's accelerators; return the max-perf/area pair."""
    platform = platform or default_platform()
    space = space or platform.config_space()
    cols = space.columns()
    areas = platform.batch_area_mm2(cols)
    ir = compile_cell_ops(spec, CIFAR100_SKELETON)
    latency_ms = platform.batch_network_latency_s(ir, cols) * 1e3
    ppa = (1000.0 / latency_ms) / (areas / 100.0)
    best = int(np.argmax(ppa))
    return BaselinePoint(
        name=name,
        spec=spec,
        config_index=best,
        accuracy=accuracy,
        latency_ms=float(latency_ms[best]),
        area_mm2=float(areas[best]),
    )


@dataclass
class Fig7Result:
    """Search result + baselines + discovered Cod points."""

    top10_per_threshold: dict[float, list[ArchiveEntry]]
    baselines: dict[str, BaselinePoint]
    cod1: ArchiveEntry | None
    cod2: ArchiveEntry | None
    gpu_hours: float
    unique_cells_trained: int
    total_steps: int
    extras: dict = field(default_factory=dict)

    def scatter_rows(self) -> list[tuple]:
        """Fig. 7's scatter: top-10 points per threshold value."""
        rows = []
        for threshold, entries in self.top10_per_threshold.items():
            for entry in entries:
                m = entry.metrics
                rows.append(
                    (
                        threshold,
                        round(m.perf_per_area, 1),
                        round(m.accuracy, 2),
                        round(m.latency_ms, 2),
                        round(m.area_mm2, 1),
                    )
                )
        return rows

    def to_markdown(self) -> str:
        lines = ["### Fig. 7 — CIFAR-100 codesign", ""]
        lines.append(
            format_markdown(
                ["threshold", "perf/area", "accuracy_%", "latency_ms", "area_mm2"],
                self.scatter_rows(),
            )
        )
        lines.append("")
        rows = []
        for baseline in self.baselines.values():
            rows.append(
                (
                    f"{baseline.name} cell",
                    round(baseline.accuracy, 2),
                    round(baseline.perf_per_area, 1),
                    round(baseline.latency_ms, 2),
                    round(baseline.area_mm2, 1),
                )
            )
        for label, entry in (("Cod-1", self.cod1), ("Cod-2", self.cod2)):
            if entry is not None:
                m = entry.metrics
                rows.append(
                    (
                        label,
                        round(m.accuracy, 2),
                        round(m.perf_per_area, 1),
                        round(m.latency_ms, 2),
                        round(m.area_mm2, 1),
                    )
                )
        lines.append(
            format_markdown(
                ["point", "accuracy_%", "perf/area", "latency_ms", "area_mm2"], rows
            )
        )
        lines.append("")
        lines.append(
            f"Search cost: {self.total_steps} steps, "
            f"{self.unique_cells_trained} cells trained, "
            f"{self.gpu_hours:.0f} simulated GPU-hours."
        )
        return "\n".join(lines)


def _dominating_entry(
    entries: list[ArchiveEntry], baseline: BaselinePoint
) -> ArchiveEntry | None:
    """Highest-accuracy entry beating ``baseline`` on both axes."""
    winners = [
        e
        for e in entries
        if e.metrics is not None
        and e.metrics.accuracy > baseline.accuracy
        and e.metrics.perf_per_area > baseline.perf_per_area
    ]
    if not winners:
        return None
    return max(winners, key=lambda e: e.metrics.accuracy)


def run_fig7(
    scale: Scale | None = None,
    seed: int = 0,
    trainer: SurrogateCifar100Trainer | None = None,
    rungs: list[ThresholdRung] | None = None,
    train_store=None,
    platform: HardwarePlatform | None = None,
) -> Fig7Result:
    """Run the CIFAR-100 threshold-schedule study.

    ``train_store`` (a :class:`repro.parallel.EvalCache`) persists
    per-cell training outcomes across runs; a warm re-run then reports
    near-zero *paid* GPU-hours for already-trained cells.  The store
    namespace (``trainer.cache_namespace()``) pins every
    outcome-affecting trainer parameter so differently configured
    surrogates never share rows.

    The search and its evaluator are built through the declarative
    registries (the ``cifar100-trainer`` accuracy source and the
    ``threshold-schedule`` strategy), the same construction path the
    ``fig7`` / ``table2`` / ``table3`` study presets take — ``repro
    study run fig7`` runs this search spec-driven.  ``platform`` swaps
    the hardware backend for both the search and the baseline sweeps
    (default: the reference ``dac2020``).
    """
    scale = scale or Scale.from_env()
    platform = platform or default_platform()

    if rungs is None:
        base = default_rungs()
        rungs = [
            ThresholdRung(
                r.threshold,
                max(10, int(r.target_valid_points * scale.fig7_target_scale)),
                max(40, int(r.max_steps * scale.fig7_target_scale)),
            )
            for r in base
        ]

    reward_config = cifar100_threshold(rungs[0].threshold, CIFAR100_BOUNDS)
    if trainer is None:
        evaluator = build_evaluator(
            "cifar100-trainer", reward_config, store=train_store,
            platform=platform,
        )
        trainer = evaluator.source_info["trainer"]
        cached = evaluator.source_info["cached"]
    else:
        # A caller-configured trainer object cannot travel through the
        # JSON params path; wire it up the way the source builder does.
        cached = CachedTrainer(
            trainer, store=train_store, namespace=trainer.cache_namespace()
        )
        evaluator = CodesignEvaluator(
            accuracy_fn=cached.accuracy_fn,
            reward_config=reward_config,
            skeleton=CIFAR100_SKELETON,
            platform=platform,
        )
    search = build_strategy(
        "threshold-schedule",
        seed,
        JointSearchSpace(accelerator_space=platform.config_space()),
        rungs=rungs,
        bounds=CIFAR100_BOUNDS,
    )
    result = search.run(evaluator)

    baselines = {
        "resnet": best_accelerator_for(
            resnet_cell(), trainer.mean_accuracy(resnet_cell()), "ResNet",
            platform=platform,
        ),
        "googlenet": best_accelerator_for(
            googlenet_cell(), trainer.mean_accuracy(googlenet_cell()),
            "GoogLeNet", platform=platform,
        ),
    }
    feasible = [
        e
        for archive in result.extras["per_rung"].values()
        for e in archive.feasible_entries()
    ]
    return Fig7Result(
        top10_per_threshold=result.extras["top10"],
        baselines=baselines,
        cod1=_dominating_entry(feasible, baselines["resnet"]),
        cod2=_dominating_entry(feasible, baselines["googlenet"]),
        gpu_hours=trainer.total_gpu_hours,
        unique_cells_trained=cached.unique_cells_trained,
        total_steps=len(result.archive),
        extras={"search_result": result},
    )
