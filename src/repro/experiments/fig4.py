"""Fig. 4: Pareto-optimal points of the codesign search space.

Enumerates the full joint space (exhaustive micro cells x all 8640
accelerators), extracts the exact 3D Pareto frontier, and reports the
statistics the paper highlights: the frontier is a vanishing fraction
of the space and is diverse in both the cell and the accelerator axes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pareto import ProductParetoResult, product_space_pareto
from repro.experiments.common import SpaceBundle, load_bundle
from repro.utils.tables import format_markdown

__all__ = ["Fig4Result", "run_fig4", "PAPER_FIG4"]

#: Paper-reported frontier statistics (423,624 cells x 8640 configs).
PAPER_FIG4 = {
    "num_pairs": 3.7e9,
    "num_pareto": 3096,
    "pareto_fraction": 3096 / 3.7e9,
    "num_distinct_cells": 136,
    "num_distinct_configs": 338,
    "accuracy_range": (91.0, 94.5),
}


@dataclass
class Fig4Result:
    """Frontier + summary statistics."""

    front: ProductParetoResult
    num_pairs: int
    bundle: SpaceBundle

    @property
    def pareto_fraction(self) -> float:
        return self.front.num_points / self.num_pairs

    def summary(self) -> dict[str, float]:
        return {
            "num_pairs": float(self.num_pairs),
            "num_pareto": float(self.front.num_points),
            "pareto_fraction": self.pareto_fraction,
            "num_distinct_cells": float(self.front.num_distinct_cells()),
            "num_distinct_configs": float(self.front.num_distinct_configs()),
            "accuracy_min": float(self.front.accuracy.min()),
            "accuracy_max": float(self.front.accuracy.max()),
            "latency_ms_min": float(self.front.latency_ms.min()),
            "latency_ms_max": float(self.front.latency_ms.max()),
            "area_mm2_min": float(self.front.area_mm2.min()),
            "area_mm2_max": float(self.front.area_mm2.max()),
        }

    def scatter_rows(self, max_rows: int = 40) -> list[tuple]:
        """Representative frontier rows (the figure's scatter data)."""
        order = np.argsort(self.front.latency_ms)
        step = max(1, len(order) // max_rows)
        rows = []
        for idx in order[::step][:max_rows]:
            rows.append(
                (
                    round(float(self.front.latency_ms[idx]), 2),
                    round(float(self.front.accuracy[idx]), 2),
                    round(float(self.front.area_mm2[idx]), 1),
                )
            )
        return rows

    def to_markdown(self) -> str:
        lines = ["Fig. 4 frontier summary (ours vs paper):", ""]
        summary = self.summary()
        lines.append(
            format_markdown(
                ["statistic", "ours", "paper"],
                [
                    ("pairs enumerated", f"{summary['num_pairs']:.3g}", "3.7e9"),
                    ("Pareto points", int(summary["num_pareto"]), PAPER_FIG4["num_pareto"]),
                    (
                        "Pareto fraction",
                        f"{summary['pareto_fraction']:.2e}",
                        f"{PAPER_FIG4['pareto_fraction']:.2e}",
                    ),
                    ("distinct cells", int(summary["num_distinct_cells"]),
                     PAPER_FIG4["num_distinct_cells"]),
                    ("distinct accelerators", int(summary["num_distinct_configs"]),
                     PAPER_FIG4["num_distinct_configs"]),
                ],
            )
        )
        lines.append("")
        lines.append(
            format_markdown(
                ["latency_ms", "accuracy_%", "area_mm2"], self.scatter_rows()
            )
        )
        return "\n".join(lines)


def run_fig4(bundle: SpaceBundle | None = None) -> Fig4Result:
    """Enumerate the joint space and extract the Pareto frontier."""
    bundle = bundle or load_bundle()
    front = product_space_pareto(bundle.accuracy, bundle.area_mm2, bundle.latency_ms)
    return Fig4Result(front=front, num_pairs=bundle.num_pairs, bundle=bundle)
