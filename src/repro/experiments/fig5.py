"""Fig. 5: top search results vs the top-100 Pareto points.

For each scenario the paper plots the best point of each of 10 repeats
per strategy against the 100 Pareto-optimal points that maximize the
scenario's reward.  The headline shapes:

* *separate* often lands outside the constraints (high accuracy, poor
  efficiency) — only a minority of its repeats fit on the axes;
* *combined* and *phase* land near the reference set, with *phase*
  closest under constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import Scale, SpaceBundle
from repro.experiments.search_study import SearchStudyResult, _run_search_study
from repro.utils.tables import format_markdown

__all__ = ["Fig5Result", "run_fig5"]


@dataclass
class Fig5Result:
    """Per-scenario comparison tables."""

    study: SearchStudyResult

    def constraint_hit_rates(self) -> dict[str, dict[str, float]]:
        """Scenario -> strategy -> fraction of repeats ending feasible."""
        return {
            scenario: {
                strategy: outcome.hit_rate()
                for strategy, outcome in by_strategy.items()
            }
            for scenario, by_strategy in self.study.outcomes.items()
        }

    def distance_to_reference(self, scenario: str) -> dict[str, float]:
        """Mean reward gap between each strategy's bests and the top-100.

        Smaller is better; measured in reward units (the paper reads
        this off the plots as proximity to the ideal points).
        """
        reference = self.study.pareto_top100.get(scenario)
        if not reference:
            return {}
        best_ref = reference[0]["reward"]
        gaps = {}
        for strategy, outcome in self.study.outcomes[scenario].items():
            rewards = outcome.top_rewards()
            gaps[strategy] = (
                float(best_ref - rewards.mean()) if len(rewards) else float("nan")
            )
        return gaps

    def to_markdown(self) -> str:
        lines = []
        for scenario in self.study.outcomes:
            lines.append(f"### Fig. 5 — {scenario}")
            reference = self.study.pareto_top100.get(scenario)
            if reference is not None:
                lines.append(
                    "Top reward-ranked Pareto points (reference, first 10):"
                )
                lines.append(
                    format_markdown(
                        ["reward", "latency_ms", "accuracy_%", "area_mm2"],
                        [
                            (
                                round(r["reward"], 4),
                                round(r["latency_ms"], 2),
                                round(r["accuracy"], 2),
                                round(r["area_mm2"], 1),
                            )
                            for r in reference[:10]
                        ],
                    )
                )
            else:
                # Non-reference platforms have no enumerated Pareto
                # overlay — the bundle's metric arrays don't apply.
                lines.append(
                    "(no enumerated Pareto reference for this platform)"
                )
            lines.append("")
            lines.append("Best point of each repeat (per strategy):")
            lines.append(
                format_markdown(
                    ["strategy", "latency_ms", "accuracy_%", "area_mm2", "reward"],
                    self.study.best_points_table(scenario),
                )
            )
            hit = self.constraint_hit_rates()[scenario]
            gaps = self.distance_to_reference(scenario)
            lines.append("")
            lines.append(
                format_markdown(
                    ["strategy", "feasible_hit_rate", "mean_reward_gap_to_best_pareto"],
                    [
                        (s, round(hit.get(s, np.nan), 2), round(gaps.get(s, np.nan), 4))
                        for s in self.study.outcomes[scenario]
                    ],
                )
            )
            lines.append("")
        return "\n".join(lines)


def run_fig5(
    bundle: SpaceBundle | None = None,
    scale: Scale | None = None,
    study: SearchStudyResult | None = None,
    master_seed: int = 0,
    backend: str = "serial",
    workers: int | None = None,
    eval_cache=None,
    scenarios: dict | list | None = None,
    batch_size: int = 1,
) -> Fig5Result:
    """Run (or reuse) the search study and package the Fig. 5 view.

    ``backend`` / ``workers`` / ``eval_cache`` / ``batch_size`` pass
    through to :func:`repro.experiments.search_study.run_search_study`
    when the study is not supplied; they change speed, never results
    (``batch_size`` > 1 switches to the documented per-strategy batch
    semantics).  ``scenarios`` selects registry or file-loaded
    scenarios instead of the paper's three.

    The default study is the declarative ``fig5`` preset
    (:mod:`repro.experiments.presets`) — ``repro study run fig5`` runs
    the same grid from the command line.
    """
    study = study or _run_search_study(
        bundle,
        scale,
        scenarios=scenarios,
        master_seed=master_seed,
        backend=backend,
        workers=workers,
        eval_cache=eval_cache,
        batch_size=batch_size,
        name="fig5",
    )
    return Fig5Result(study=study)
