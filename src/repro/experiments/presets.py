"""Named study presets: each paper figure/table as a :class:`StudySpec`.

Every preset is a complete declarative experiment definition — run it
from the command line (``repro study run fig5``), dump it to JSON
(``repro study show fig5 > my_study.json``), or tweak single fields
without editing code (``repro study run fig5 --set
execution.batch_size=16``).  ``num_steps`` / ``num_repeats`` are left
``None`` so one preset serves every ``REPRO_SCALE``.

``examples/study_fig5.json`` ships the ``fig5`` preset serialized;
``tests/core/test_study.py`` pins the two together so the example can
never drift from the code.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.core.study import StudyError, StudySpec

__all__ = [
    "register_preset",
    "get_preset",
    "list_presets",
    "resolve_spec",
]

_PRESETS: dict[str, Callable[[], StudySpec]] = {}

#: The Fig. 5/6 strategy line-up and scenario set (paper Section III).
PAPER_STRATEGIES = ({"name": "combined"}, {"name": "phase"}, {"name": "separate"})
PAPER_SCENARIOS = ("unconstrained", "1-constraint", "2-constraints")

#: CIFAR-100 joint-space metric bounds as a declarative mapping
#: (mirrors :data:`repro.experiments.fig7.CIFAR100_BOUNDS`).
CIFAR100_BOUNDS_SPEC = {
    "area_mm2": [50.0, 210.0],
    "latency_ms": [3.0, 1400.0],
    "accuracy": [55.0, 76.5],
}


def register_preset(name: str, builder: Callable[[], StudySpec] | None = None):
    """Register a preset builder under ``name`` (usable as decorator)."""

    def _register(fn: Callable[[], StudySpec]) -> Callable[[], StudySpec]:
        if name in _PRESETS:
            raise StudyError(f"study preset {name!r} is already registered")
        _PRESETS[name] = fn
        return fn

    return _register if builder is None else _register(builder)


def list_presets() -> list[str]:
    """Shipped preset names, sorted."""
    return sorted(_PRESETS)


def get_preset(name: str) -> StudySpec:
    """A fresh, validated :class:`StudySpec` for a preset name."""
    if name not in _PRESETS:
        raise StudyError(
            f"unknown study preset {name!r}; shipped presets: "
            f"{', '.join(list_presets())}"
        )
    return _PRESETS[name]().validate()


def resolve_spec(ref: str | Path) -> StudySpec:
    """A spec from a preset name or a JSON spec file path."""
    path = Path(ref)
    if path.suffix == ".json" or path.exists():
        return StudySpec.from_file(path)
    return get_preset(str(ref))


def _paper_study(name: str) -> StudySpec:
    return StudySpec(
        name=name,
        strategies=PAPER_STRATEGIES,
        scenarios=PAPER_SCENARIOS,
        evaluator={"source": "database"},
    )


register_preset("search-study", lambda: _paper_study("search-study"))
register_preset("fig5", lambda: _paper_study("fig5"))
register_preset("fig6", lambda: _paper_study("fig6"))


@register_preset("ablation-punishment")
def _ablation_punishment() -> StudySpec:
    """A1: the paper's distance-scaled punishment vs a near-zero one."""
    return StudySpec(
        name="ablation-punishment",
        strategies=({"name": "combined"},),
        scenarios=(
            "1-constraint",
            {
                "name": "1-constraint-weak-punish",
                "weights": [0.1, 0.0, 0.9],
                "constraints": {"max_latency_ms": 100.0},
                "punishment_scale": 0.001,
            },
        ),
        evaluator={"source": "database"},
        execution={"master_seed": 1},
    )


@register_preset("ablation-random")
def _ablation_random() -> StudySpec:
    """A2: the REINFORCE controller vs uniform random proposals."""
    return StudySpec(
        name="ablation-random",
        strategies=({"name": "combined"}, {"name": "random"}),
        scenarios=("unconstrained",),
        evaluator={"source": "database"},
        execution={"master_seed": 2},
    )


def _cifar100_study(name: str) -> StudySpec:
    """The Section IV threshold-schedule search as a study spec.

    One threshold-schedule strategy over the CIFAR-100 trainer source;
    the rising (2, 8, 16, 30, 40) img/s/cm2 schedule is the strategy's
    default rung ladder, capped by ``num_steps`` (i.e. the scale).
    This is the search behind Fig. 7 and Tables II/III — the fig7
    packaging (baselines, Cod points, GPU-hour ledger) lives in
    :func:`repro.experiments.fig7.run_fig7`.
    """
    return StudySpec(
        name=name,
        strategies=(
            {"name": "threshold-schedule", "params": {"bounds": CIFAR100_BOUNDS_SPEC}},
        ),
        scenarios=(
            {
                "name": "cifar100-codesign",
                "weights": [0.0, 0.0, 1.0],
                "constraints": {"min_perf_per_area": 2.0},
                "bounds": CIFAR100_BOUNDS_SPEC,
            },
        ),
        evaluator={"source": "cifar100-trainer"},
        execution={"num_repeats": 1},
    )


register_preset("fig7", lambda: _cifar100_study("fig7"))
register_preset("table2", lambda: _cifar100_study("table2"))
register_preset("table3", lambda: _cifar100_study("table3"))


@register_preset("hw-sweep")
def _hw_sweep() -> StudySpec:
    """Cross-platform sweep: one search grid per registered platform.

    The same strategies and scenario run on the reference ``dac2020``,
    a faster-clocked / budget-capped ``dac2020-scaled`` variant, and
    the ``embedded-lite`` profile.  Outcomes key as
    ``<platform>:<scenario>`` and every platform's evaluations live in
    their own eval-cache/ledger namespace, so results from differently
    modelled hardware never mix.
    """
    return StudySpec(
        name="hw-sweep",
        strategies=(
            {"name": "random"},
            {"name": "combined"},
        ),
        scenarios=("unconstrained",),
        evaluator={"source": "surrogate"},
        hardware=(
            {"name": "dac2020"},
            {
                "name": "dac2020-scaled",
                "params": {"clock_mhz": 300.0, "max_pixel_par": 32},
                "label": "dac2020-fast",
            },
            {"name": "embedded-lite"},
        ),
    )


@register_preset("bert-u50")
def _bert_u50() -> StudySpec:
    """Transformer x charm-u50 codesign: surrogates past enumerability.

    The ``transformer`` workload's five-token encoder family searched
    jointly with the ``charm-u50`` tiled-GEMM accelerator — 393,216
    hardware configurations, well past the tensorized fast path's
    enumeration ceiling, so ``execution.surrogate`` arms the two-tier
    mode by default: a sampled-fit surrogate twin ranks inflated
    proposal batches and only the top ``exact_fraction`` reaches the
    exact analytical models (and the archive).
    """
    return StudySpec(
        name="bert-u50",
        strategies=(
            {"name": "random"},
            {"name": "evolution", "params": {"population_size": 4, "tournament_size": 2}},
        ),
        scenarios=("unconstrained",),
        evaluator={"source": "transformer-analytic"},
        hardware=({"name": "charm-u50"},),
        workload="transformer",
        execution={"surrogate": True, "exact_fraction": 0.25},
    )


@register_preset("smoke")
def _smoke() -> StudySpec:
    """Five-step registry exerciser: the CI drift guard for the spec path.

    Surrogate-backed (no enumerated-space bundle to build), two cheap
    strategies, one scenario — seconds end to end, but it walks the
    whole declarative chain: registries, spec resolution, grid run.
    """
    return StudySpec(
        name="smoke",
        strategies=(
            {"name": "random"},
            {"name": "evolution", "params": {"population_size": 4, "tournament_size": 2}},
        ),
        scenarios=("unconstrained",),
        evaluator={"source": "surrogate"},
        execution={"num_steps": 5, "num_repeats": 1},
    )
