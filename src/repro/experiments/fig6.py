"""Fig. 6: reward-vs-steps curves per strategy and scenario.

The paper plots the reward function over 10,000 steps averaged across
10 repeats, showing: *combined* converges fastest (and wins
unconstrained), *phase* climbs through exploration phases and ends
highest under constraints, *separate* only acquires the MOO objective
in its second stage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import Scale, SpaceBundle
from repro.experiments.search_study import SearchStudyResult, _run_search_study
from repro.search.runner import mean_reward_trace
from repro.utils.tables import format_markdown

__all__ = ["Fig6Result", "run_fig6"]


@dataclass
class Fig6Result:
    """Averaged, smoothed reward traces."""

    study: SearchStudyResult
    window: int = 100

    def trace(self, scenario: str, strategy: str) -> np.ndarray:
        return mean_reward_trace(
            self.study.outcomes[scenario][strategy], window=self.window
        )

    def series_rows(self, scenario: str, num_points: int = 20) -> list[tuple]:
        """Downsampled curve rows: (step, one column per strategy)."""
        strategies = list(self.study.outcomes[scenario])
        traces = {s: self.trace(scenario, s) for s in strategies}
        length = min(len(t) for t in traces.values())
        steps = np.linspace(0, length - 1, num_points).astype(int)
        rows = []
        for step in steps:
            rows.append(
                (int(step), *(round(float(traces[s][step]), 4) for s in strategies))
            )
        return rows

    def final_rewards(self) -> dict[str, dict[str, float]]:
        """Scenario -> strategy -> final smoothed reward."""
        out: dict[str, dict[str, float]] = {}
        for scenario, by_strategy in self.study.outcomes.items():
            out[scenario] = {
                strategy: float(self.trace(scenario, strategy)[-1])
                for strategy in by_strategy
            }
        return out

    def convergence_step(
        self, scenario: str, strategy: str, fraction: float = 0.95
    ) -> int:
        """First step reaching ``fraction`` of the final smoothed reward.

        The speed measure behind "combined is generally faster to
        converge".
        """
        trace = self.trace(scenario, strategy)
        target = trace[-1] * fraction if trace[-1] > 0 else trace[-1] / fraction
        hits = np.nonzero(trace >= target)[0]
        return int(hits[0]) if len(hits) else len(trace) - 1

    def to_markdown(self) -> str:
        lines = []
        for scenario in self.study.outcomes:
            strategies = list(self.study.outcomes[scenario])
            lines.append(f"### Fig. 6 — {scenario}")
            lines.append(
                format_markdown(["step", *strategies], self.series_rows(scenario))
            )
            lines.append("")
        return "\n".join(lines)


def run_fig6(
    bundle: SpaceBundle | None = None,
    scale: Scale | None = None,
    study: SearchStudyResult | None = None,
    master_seed: int = 0,
    backend: str = "serial",
    workers: int | None = None,
    eval_cache=None,
    scenarios: dict | list | None = None,
    batch_size: int = 1,
) -> Fig6Result:
    """Run (or reuse) the search study and package the Fig. 6 view.

    ``backend`` / ``workers`` / ``eval_cache`` / ``batch_size`` pass
    through to :func:`repro.experiments.search_study.run_search_study`
    when the study is not supplied; they change speed, never results
    (``batch_size`` > 1 switches to the documented per-strategy batch
    semantics).  ``scenarios`` selects registry or file-loaded
    scenarios instead of the paper's three.

    The default study is the declarative ``fig6`` preset
    (:mod:`repro.experiments.presets`) — ``repro study run fig6`` runs
    the same grid from the command line.
    """
    study = study or _run_search_study(
        bundle,
        scale,
        scenarios=scenarios,
        master_seed=master_seed,
        backend=backend,
        workers=workers,
        eval_cache=eval_cache,
        batch_size=batch_size,
        name="fig6",
    )
    return Fig6Result(study=study)
