"""Section II-C validation experiments (the 1.6% / 85% checks).

See :mod:`repro.accelerator.validation` for the synthetic-oracle
caveat: offline, the oracle's noise level is *set from* the paper's
reported errors, so these runs demonstrate the validation procedure
and its statistics, not an independent re-measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.validation import (
    ValidationReport,
    validate_area_model,
    validate_latency_model,
)
from repro.nasbench.compile import compile_network
from repro.nasbench.known_cells import googlenet_cell
from repro.nasbench.skeleton import CIFAR10_SKELETON
from repro.utils.tables import format_markdown

__all__ = ["ValidationResult", "run_validation", "PAPER_VALIDATION"]

#: Paper-reported model-validation statistics.
PAPER_VALIDATION = {"area_mean_error": 0.016, "latency_accuracy": 0.85}


@dataclass
class ValidationResult:
    """Both validation reports."""

    area: ValidationReport
    latency: ValidationReport

    def summary(self) -> dict[str, float]:
        return {
            "area_mean_error": self.area.mean_error,
            "latency_accuracy": self.latency.accuracy,
        }

    def to_markdown(self) -> str:
        rows = [
            (
                "area model (10 compiles)",
                f"{100 * self.area.mean_error:.1f}% mean error",
                f"{100 * PAPER_VALIDATION['area_mean_error']:.1f}% mean error",
            ),
            (
                "latency model (GoogLeNet-cell x 10 accelerators)",
                f"{100 * self.latency.accuracy:.0f}% accuracy",
                f"{100 * PAPER_VALIDATION['latency_accuracy']:.0f}% accuracy",
            ),
        ]
        return format_markdown(["experiment", "ours", "paper"], rows)


def run_validation(n_configs: int = 10, seed: int = 7) -> ValidationResult:
    """Run both validation experiments as in the paper."""
    ir = compile_network(googlenet_cell(), CIFAR10_SKELETON)
    return ValidationResult(
        area=validate_area_model(n_configs=n_configs, seed=seed),
        latency=validate_latency_model(ir, n_configs=n_configs, seed=seed),
    )
