"""Ablation studies on the paper's two load-bearing design choices.

A1 — **punishment function**: the paper feeds constraint violations
back as a sign-opposed punishment ``Rv``; the ablation weakens it to a
near-zero constant, removing the gradient away from infeasible
regions (1-constraint scenario, combined strategy).

A2 — **RL controller vs random search**: the paper's premise is that
REINFORCE finds good points in fewer steps than chance (unconstrained
scenario).

A3 — **threshold schedule vs fixed final threshold**: Section IV-A
reports that gradually raising the perf/area threshold "makes it
easier for the RL controller to learn the structure of high-accuracy
CNNs"; the ablation starts at the final threshold directly with the
same total budget.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.reward import RewardConfig
from repro.core.scenarios import one_constraint, unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.common import Scale, SpaceBundle, load_bundle
from repro.experiments.fig7 import CIFAR100_BOUNDS, run_fig7
from repro.experiments.search_study import make_bundle_evaluator
from repro.search.combined import CombinedSearch
from repro.search.random_search import RandomSearch
from repro.search.threshold_schedule import ThresholdRung, default_rungs
from repro.utils.rng import hash_seed
from repro.utils.tables import format_markdown

__all__ = [
    "AblationRow",
    "run_punishment_ablation",
    "run_random_ablation",
    "run_schedule_ablation",
    "run_all_ablations",
]


@dataclass(frozen=True)
class AblationRow:
    """One (variant, statistic) comparison row."""

    ablation: str
    variant: str
    best_reward: float
    feasible_rate: float
    extra: str = ""


def _mean_best_reward(
    scenario: RewardConfig,
    bundle: SpaceBundle,
    strategy_cls,
    steps: int,
    repeats: int,
    master_seed: int,
) -> tuple[float, float]:
    """(mean best reward, mean feasible fraction) over repeats."""
    search_space = JointSearchSpace(cell_encoding=bundle.cell_encoding)
    best_rewards = []
    feasible_rates = []
    for repeat in range(repeats):
        seed = hash_seed("ablation", master_seed, strategy_cls.__name__, repeat)
        strategy = strategy_cls(search_space, seed=seed)
        evaluator = make_bundle_evaluator(bundle, scenario)
        result = strategy.run(evaluator, steps)
        best = result.best
        best_rewards.append(best.reward if best is not None else np.nan)
        feasible_rates.append(result.archive.num_feasible / max(len(result.archive), 1))
    return float(np.nanmean(best_rewards)), float(np.mean(feasible_rates))


def run_punishment_ablation(
    bundle: SpaceBundle | None = None, scale: Scale | None = None, master_seed: int = 1
) -> list[AblationRow]:
    """A1: distance-scaled punishment vs a barely-there constant."""
    bundle = bundle or load_bundle()
    scale = scale or Scale.from_env()
    scenario = one_constraint(bundle.bounds)
    weak = replace(scenario, punishment_scale=1e-3, name="1-constraint-weak-punish")
    rows = []
    for variant, cfg in (("punishment (paper)", scenario), ("weak punishment", weak)):
        reward, feasible = _mean_best_reward(
            cfg, bundle, CombinedSearch, scale.search_steps, scale.num_repeats, master_seed
        )
        rows.append(AblationRow("A1-punishment", variant, reward, feasible))
    return rows


def run_random_ablation(
    bundle: SpaceBundle | None = None, scale: Scale | None = None, master_seed: int = 2
) -> list[AblationRow]:
    """A2: REINFORCE controller vs uniform random proposals."""
    bundle = bundle or load_bundle()
    scale = scale or Scale.from_env()
    scenario = unconstrained(bundle.bounds)
    rows = []
    for variant, cls in (("combined (RL)", CombinedSearch), ("random", RandomSearch)):
        reward, feasible = _mean_best_reward(
            cfg := scenario, bundle, cls, scale.search_steps, scale.num_repeats, master_seed
        )
        rows.append(AblationRow("A2-controller", variant, reward, feasible))
    return rows


def run_schedule_ablation(
    scale: Scale | None = None, master_seed: int = 3
) -> list[AblationRow]:
    """A3: rising threshold schedule vs jumping straight to the top."""
    scale = scale or Scale.from_env()
    base = default_rungs()
    scheduled = [
        ThresholdRung(
            r.threshold,
            max(10, int(r.target_valid_points * scale.fig7_target_scale)),
            max(40, int(r.max_steps * scale.fig7_target_scale)),
        )
        for r in base
    ]
    total_target = sum(r.target_valid_points for r in scheduled)
    total_steps = sum(r.max_steps for r in scheduled)
    fixed = [ThresholdRung(base[-1].threshold, total_target, total_steps)]

    rows = []
    for variant, rungs in (("schedule (paper)", scheduled), ("fixed final threshold", fixed)):
        fig7 = run_fig7(scale=scale, seed=master_seed, rungs=rungs)
        final_threshold = base[-1].threshold
        top_entries = fig7.top10_per_threshold.get(final_threshold, [])
        best_acc = max(
            (e.metrics.accuracy for e in top_entries if e.metrics is not None),
            default=float("nan"),
        )
        feasible = sum(
            len(a.feasible_entries()) for a in fig7.extras["search_result"].extras["per_rung"].values()
        )
        rows.append(
            AblationRow(
                "A3-schedule",
                variant,
                best_reward=best_acc,
                feasible_rate=feasible / max(fig7.total_steps, 1),
                extra=f"best accuracy at final threshold {final_threshold:g}",
            )
        )
    return rows


def run_all_ablations(
    bundle: SpaceBundle | None = None, scale: Scale | None = None
) -> list[AblationRow]:
    """All three ablations, one row list."""
    bundle = bundle or load_bundle()
    scale = scale or Scale.from_env()
    rows = []
    rows += run_punishment_ablation(bundle, scale)
    rows += run_random_ablation(bundle, scale)
    rows += run_schedule_ablation(scale)
    return rows


def ablation_markdown(rows: list[AblationRow]) -> str:
    return format_markdown(
        ["ablation", "variant", "best_reward", "feasible_rate", "note"],
        [
            (r.ablation, r.variant, round(r.best_reward, 4), round(r.feasible_rate, 3), r.extra)
            for r in rows
        ],
    )
