"""Ablation studies on the paper's two load-bearing design choices.

A1 — **punishment function**: the paper feeds constraint violations
back as a sign-opposed punishment ``Rv``; the ablation weakens it to a
near-zero constant, removing the gradient away from infeasible
regions (1-constraint scenario, combined strategy).

A2 — **RL controller vs random search**: the paper's premise is that
REINFORCE finds good points in fewer steps than chance (unconstrained
scenario).

A3 — **threshold schedule vs fixed final threshold**: Section IV-A
reports that gradually raising the perf/area threshold "makes it
easier for the RL controller to learn the structure of high-accuracy
CNNs"; the ablation starts at the final threshold directly with the
same total budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.study import replace_execution, run_study
from repro.experiments.common import Scale, SpaceBundle, load_bundle
from repro.experiments.fig7 import run_fig7
from repro.experiments.presets import get_preset
from repro.search.runner import RepeatOutcome
from repro.search.threshold_schedule import ThresholdRung, default_rungs
from repro.utils.tables import format_markdown

__all__ = [
    "AblationRow",
    "run_punishment_ablation",
    "run_random_ablation",
    "run_schedule_ablation",
    "run_all_ablations",
]


@dataclass(frozen=True)
class AblationRow:
    """One (variant, statistic) comparison row."""

    ablation: str
    variant: str
    best_reward: float
    feasible_rate: float
    extra: str = ""


def _outcome_stats(outcome: RepeatOutcome) -> tuple[float, float]:
    """(mean best reward, mean feasible fraction) over repeats."""
    best_rewards = [
        r.best.reward if r.best is not None else np.nan for r in outcome.results
    ]
    feasible_rates = [
        r.archive.num_feasible / max(len(r.archive), 1) for r in outcome.results
    ]
    with np.errstate(all="ignore"):
        mean_best = float(np.nanmean(best_rewards)) if best_rewards else float("nan")
    return mean_best, float(np.mean(feasible_rates))


def _run_ablation_study(
    preset: str, bundle: SpaceBundle | None, scale: Scale | None, master_seed: int
):
    """One ablation preset, rescaled and reseeded, through ``run_study``."""
    bundle = bundle or load_bundle()
    scale = scale or Scale.from_env()
    spec = replace_execution(
        get_preset(preset),
        num_steps=scale.search_steps,
        num_repeats=scale.num_repeats,
        master_seed=master_seed,
    )
    return run_study(spec, bundle=bundle, scale=scale)


def run_punishment_ablation(
    bundle: SpaceBundle | None = None, scale: Scale | None = None, master_seed: int = 1
) -> list[AblationRow]:
    """A1: distance-scaled punishment vs a barely-there constant.

    Runs the declarative ``ablation-punishment`` preset: the combined
    strategy under the 1-constraint scenario and a
    ``punishment_scale=1e-3`` variant of it (an inline scenario spec).
    """
    study = _run_ablation_study("ablation-punishment", bundle, scale, master_seed)
    rows = []
    for variant, scenario in (
        ("punishment (paper)", "1-constraint"),
        ("weak punishment", "1-constraint-weak-punish"),
    ):
        reward, feasible = _outcome_stats(study.outcomes[scenario]["combined"])
        rows.append(AblationRow("A1-punishment", variant, reward, feasible))
    return rows


def run_random_ablation(
    bundle: SpaceBundle | None = None, scale: Scale | None = None, master_seed: int = 2
) -> list[AblationRow]:
    """A2: REINFORCE controller vs uniform random proposals.

    Runs the declarative ``ablation-random`` preset: combined and
    random strategies under the unconstrained scenario, same seeds.
    """
    study = _run_ablation_study("ablation-random", bundle, scale, master_seed)
    rows = []
    for variant, strategy in (("combined (RL)", "combined"), ("random", "random")):
        reward, feasible = _outcome_stats(study.outcomes["unconstrained"][strategy])
        rows.append(AblationRow("A2-controller", variant, reward, feasible))
    return rows


def run_schedule_ablation(
    scale: Scale | None = None, master_seed: int = 3
) -> list[AblationRow]:
    """A3: rising threshold schedule vs jumping straight to the top."""
    scale = scale or Scale.from_env()
    base = default_rungs()
    scheduled = [
        ThresholdRung(
            r.threshold,
            max(10, int(r.target_valid_points * scale.fig7_target_scale)),
            max(40, int(r.max_steps * scale.fig7_target_scale)),
        )
        for r in base
    ]
    total_target = sum(r.target_valid_points for r in scheduled)
    total_steps = sum(r.max_steps for r in scheduled)
    fixed = [ThresholdRung(base[-1].threshold, total_target, total_steps)]

    rows = []
    for variant, rungs in (("schedule (paper)", scheduled), ("fixed final threshold", fixed)):
        fig7 = run_fig7(scale=scale, seed=master_seed, rungs=rungs)
        final_threshold = base[-1].threshold
        top_entries = fig7.top10_per_threshold.get(final_threshold, [])
        best_acc = max(
            (e.metrics.accuracy for e in top_entries if e.metrics is not None),
            default=float("nan"),
        )
        feasible = sum(
            len(a.feasible_entries()) for a in fig7.extras["search_result"].extras["per_rung"].values()
        )
        rows.append(
            AblationRow(
                "A3-schedule",
                variant,
                best_reward=best_acc,
                feasible_rate=feasible / max(fig7.total_steps, 1),
                extra=f"best accuracy at final threshold {final_threshold:g}",
            )
        )
    return rows


def run_all_ablations(
    bundle: SpaceBundle | None = None, scale: Scale | None = None
) -> list[AblationRow]:
    """All three ablations, one row list."""
    bundle = bundle or load_bundle()
    scale = scale or Scale.from_env()
    rows = []
    rows += run_punishment_ablation(bundle, scale)
    rows += run_random_ablation(bundle, scale)
    rows += run_schedule_ablation(scale)
    return rows


def ablation_markdown(rows: list[AblationRow]) -> str:
    return format_markdown(
        ["ablation", "variant", "best_reward", "feasible_rate", "note"],
        [
            (r.ablation, r.variant, round(r.best_reward, 4), round(r.feasible_rate, 3), r.extra)
            for r in rows
        ],
    )
