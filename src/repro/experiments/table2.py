"""Table II: best discovered points vs ResNet/GoogLeNet baselines."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.archive import ArchiveEntry
from repro.experiments.common import Scale
from repro.experiments.fig7 import BaselinePoint, Fig7Result, run_fig7
from repro.utils.tables import format_markdown

__all__ = ["Table2Result", "run_table2", "PAPER_TABLE2"]

#: The paper's Table II (accuracy %, perf/area img/s/cm2, latency ms,
#: area mm2) for side-by-side comparison in EXPERIMENTS.md.
PAPER_TABLE2 = {
    "ResNet Cell": (72.9, 12.8, 42.0, 186.0),
    "Cod-1": (74.2, 18.1, 41.8, 132.0),
    "GoogLeNet Cell": (71.5, 39.3, 19.3, 132.0),
    "Cod-2": (72.0, 40.6, 18.5, 133.0),
}


def _row(label: str, accuracy: float, ppa: float, lat: float, area: float) -> tuple:
    return (label, round(accuracy, 2), round(ppa, 1), round(lat, 2), round(area, 1))


def _delta(ours: float, base: float, percent: bool) -> str:
    if percent:
        return f"{100.0 * (ours / base - 1.0):+.1f}%"
    return f"{ours - base:+.1f}"


@dataclass
class Table2Result:
    """Our Table II plus deltas against each baseline."""

    fig7: Fig7Result

    def rows(self) -> list[tuple]:
        out = []
        pairs = [
            ("resnet", "ResNet Cell", self.fig7.cod1, "Cod-1"),
            ("googlenet", "GoogLeNet Cell", self.fig7.cod2, "Cod-2"),
        ]
        for base_key, base_label, cod, cod_label in pairs:
            baseline: BaselinePoint = self.fig7.baselines[base_key]
            out.append(
                _row(
                    base_label,
                    baseline.accuracy,
                    baseline.perf_per_area,
                    baseline.latency_ms,
                    baseline.area_mm2,
                )
            )
            if cod is None:
                out.append((cod_label, "not found", "-", "-", "-"))
                continue
            m = cod.metrics
            out.append(
                (
                    cod_label,
                    f"{m.accuracy:.2f} ({_delta(m.accuracy, baseline.accuracy, False)})",
                    f"{m.perf_per_area:.1f} ({_delta(m.perf_per_area, baseline.perf_per_area, True)})",
                    f"{m.latency_ms:.2f} ({_delta(m.latency_ms, baseline.latency_ms, True)})",
                    f"{m.area_mm2:.1f} ({_delta(m.area_mm2, baseline.area_mm2, True)})",
                )
            )
        return out

    def improvements(self) -> dict[str, dict[str, float]]:
        """Cod-vs-baseline deltas (the paper's headline numbers)."""
        out: dict[str, dict[str, float]] = {}
        for base_key, cod, label in (
            ("resnet", self.fig7.cod1, "cod1"),
            ("googlenet", self.fig7.cod2, "cod2"),
        ):
            if cod is None:
                continue
            baseline = self.fig7.baselines[base_key]
            m = cod.metrics
            out[label] = {
                "accuracy_gain": m.accuracy - baseline.accuracy,
                "perf_per_area_gain_pct": 100.0
                * (m.perf_per_area / baseline.perf_per_area - 1.0),
                "latency_change_pct": 100.0 * (m.latency_ms / baseline.latency_ms - 1.0),
                "area_change_pct": 100.0 * (m.area_mm2 / baseline.area_mm2 - 1.0),
            }
        return out

    def to_markdown(self) -> str:
        header = ["CNN", "Accuracy [%]", "Perf/Area [img/s/cm2]", "Latency [ms]", "Area [mm2]"]
        ours = format_markdown(header, self.rows())
        paper = format_markdown(
            header, [_row(k, *v) for k, v in PAPER_TABLE2.items()]
        )
        return f"Ours:\n{ours}\n\nPaper Table II:\n{paper}"


def run_table2(
    fig7: Fig7Result | None = None,
    scale: Scale | None = None,
    seed: int = 0,
    train_store=None,
) -> Table2Result:
    """Build Table II (running the Fig. 7 search if not supplied).

    ``train_store`` passes through to :func:`run_fig7` so re-runs
    warm-start from previously trained cells.  The underlying search
    is registry-built and preset-addressable: ``repro study run
    table2`` runs the same threshold-schedule search from its
    declarative spec (:mod:`repro.experiments.presets`).
    """
    fig7 = fig7 or run_fig7(scale=scale, seed=seed, train_store=train_store)
    return Table2Result(fig7=fig7)
