"""Analytical per-operation latency model (paper Section II-C2).

The paper builds a lookup table of measured per-op latencies and runs a
greedy scheduler over it.  Offline we cannot measure an FPGA, so the
LUT entries come from this analytical model instead; the inputs (op
shape, engine parallelism, buffer depths, memory interface width) and
the consumer (LUT + greedy scheduler) are unchanged.

Per-op duration is the classic roofline-style maximum of

* **compute time** — MAC (or pooling) work divided by the engine's
  parallelism, with quantization losses when channel/pixel counts do
  not divide ``filter_par`` / the engine's pixel lanes, and a pipeline
  efficiency factor; and
* **memory time** — DDR traffic over the AXI interface, where weights
  (inputs) are re-streamed when the input (weight) buffer cannot hold
  the working set, the buffer-induced tiling that makes buffer depths
  latency-relevant;

plus a fixed per-dispatch overhead (descriptor setup / driver call).
Operations the accelerator does not support (element-wise glue, global
pooling, the classifier — and max-pooling when the pooling engine is
disabled) fall back to the host CPU, as in CHaiDNN.

Everything is implemented over numpy arrays of configuration
parameters, so computing one op on one accelerator and one op on all
8640 accelerators share the same code path (and therefore agree
exactly, which the test suite checks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.nasbench import ops as O
from repro.nasbench.compile import CompiledOp

__all__ = ["LatencyModelParams", "LatencyModel", "config_columns"]


@dataclass(frozen=True)
class LatencyModelParams:
    """Calibration constants of the latency model."""

    clock_hz: float = 150e6           # effective fabric clock (CHaiDNN
                                      # runs logic at 125-150 MHz with
                                      # double-pumped DSPs)
    compute_efficiency: float = 0.7   # pipeline fill/drain, edge tiles
    axi_clock_hz: float = 266e6       # memory interface clock
    mem_efficiency: float = 0.55      # DDR protocol efficiency
    cpu_elems_per_s: float = 2e9      # host NEON-ish element throughput
    cpu_macs_per_s: float = 4e9       # host MAC throughput (classifier)
    accel_op_overhead_s: float = 150e-6   # per-dispatch driver/DMA cost
    pool_op_overhead_s: float = 100e-6
    cpu_op_overhead_s: float = 80e-6


def config_columns(configs: "AcceleratorConfig | list[AcceleratorConfig] | dict") -> dict[str, np.ndarray]:
    """Normalize configs into parameter arrays (the vectorized layout).

    Accepts a single config, a list of configs, or an existing
    column dict (e.g. from :meth:`AcceleratorSpace.columns`).
    """
    if isinstance(configs, dict):
        return {k: np.asarray(v) for k, v in configs.items()}
    if isinstance(configs, AcceleratorConfig):
        configs = [configs]
    names = list(configs[0].to_dict())
    return {
        name: np.asarray([getattr(c, name) for c in configs]) for name in names
    }


def _dsp_split_arrays(cols: dict[str, np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :meth:`AcceleratorConfig.dsp_split`."""
    filter_par = cols["filter_par"].astype(np.float64)
    lanes = cols["pixel_par"].astype(np.float64)
    ratio = cols["ratio_conv_engines"].astype(np.float64)
    total = filter_par * lanes
    dual = ratio < 1.0
    lanes_1x1 = np.clip(np.round(ratio * lanes), 1, lanes - 1)
    dsp_1x1 = np.where(dual, lanes_1x1 * filter_par, 0.0)
    dsp_3x3 = total - dsp_1x1
    return dsp_3x3, dsp_1x1


class LatencyModel:
    """Maps (compiled op, accelerator config) to seconds."""

    def __init__(self, params: LatencyModelParams | None = None) -> None:
        self.params = params or LatencyModelParams()

    # ------------------------------------------------------------------
    def memory_bandwidth_bytes_per_s(self, cols: dict[str, np.ndarray]) -> np.ndarray:
        width_bytes = cols["mem_interface_width"].astype(np.float64) / 8.0
        return width_bytes * self.params.axi_clock_hz * self.params.mem_efficiency

    def _conv_duration(self, op: CompiledOp, cols: dict[str, np.ndarray]) -> np.ndarray:
        p = self.params
        filter_par = cols["filter_par"].astype(np.float64)
        pixel_par = cols["pixel_par"].astype(np.float64)
        dsp_3x3, dsp_1x1 = _dsp_split_arrays(cols)
        dual = cols["ratio_conv_engines"].astype(np.float64) < 1.0
        if O.is_conv3x3_shaped(op.kind):
            dsp_engine = dsp_3x3
        else:
            # 1x1-shaped: own engine when dual, general engine otherwise.
            dsp_engine = np.where(dual, dsp_1x1, dsp_3x3)
        pixel_lanes = np.maximum(dsp_engine / filter_par, 1.0)

        k = op.kernel
        pixels = float(op.out_height * op.out_width)
        cycles = (
            k * k * op.in_channels
            * np.ceil(op.out_channels / filter_par)
            * np.ceil(pixels / pixel_lanes)
        ) / p.compute_efficiency
        compute_s = cycles / p.clock_hz

        # Buffer-induced tiling: weights re-streamed when inputs spill
        # (and when the output tile spills partial sums), inputs
        # re-streamed when weights spill.
        input_buffer = cols["input_buffer_depth"].astype(np.float64) * pixel_par
        weight_buffer = cols["weight_buffer_depth"].astype(np.float64) * filter_par
        output_buffer = cols["output_buffer_depth"].astype(np.float64) * pixel_par
        n_weight_tiles = np.ceil(op.weight_bytes / weight_buffer)
        n_input_tiles = np.ceil(op.input_bytes / input_buffer)
        n_output_tiles = np.ceil(op.output_bytes / output_buffer)
        bytes_total = (
            op.input_bytes * n_weight_tiles
            + op.weight_bytes * np.maximum(n_input_tiles, n_output_tiles)
            + op.output_bytes
        )
        memory_s = bytes_total / self.memory_bandwidth_bytes_per_s(cols)
        return np.maximum(compute_s, memory_s) + p.accel_op_overhead_s

    def _pool_duration(self, op: CompiledOp, cols: dict[str, np.ndarray]) -> np.ndarray:
        p = self.params
        pixel_par = cols["pixel_par"].astype(np.float64)
        pool_enable = cols["pool_enable"].astype(bool)
        cycles = op.work / (pixel_par * p.compute_efficiency)
        engine_compute_s = cycles / p.clock_hz
        engine_mem_s = (op.input_bytes + op.output_bytes) / self.memory_bandwidth_bytes_per_s(cols)
        engine_s = np.maximum(engine_compute_s, engine_mem_s) + p.pool_op_overhead_s
        cpu_s = op.work / p.cpu_elems_per_s + p.cpu_op_overhead_s
        return np.where(pool_enable, engine_s, cpu_s)

    def _cpu_duration(self, op: CompiledOp, cols: dict[str, np.ndarray]) -> np.ndarray:
        p = self.params
        if op.kind == O.KIND_DENSE:
            busy = op.macs / p.cpu_macs_per_s
        else:
            busy = op.work / p.cpu_elems_per_s
        scalar = busy + p.cpu_op_overhead_s
        return np.full(len(cols["filter_par"]), scalar, dtype=np.float64)

    # ------------------------------------------------------------------
    def durations(self, op: CompiledOp, cols: dict[str, np.ndarray]) -> np.ndarray:
        """Seconds for ``op`` on every config in ``cols`` (vectorized)."""
        if op.kind in O.CONV_KINDS:
            return self._conv_duration(op, cols)
        if op.kind in O.POOL_KINDS:
            return self._pool_duration(op, cols)
        return self._cpu_duration(op, cols)

    def op_duration(self, op: CompiledOp, config: AcceleratorConfig) -> float:
        """Seconds for ``op`` on a single accelerator config."""
        return float(self.durations(op, config_columns(config))[0])
