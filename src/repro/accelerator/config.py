"""The CHaiDNN-style accelerator configuration (paper Fig. 3).

Eight parameters are searchable; their value sets multiply out to the
paper's 8640 accelerator variants:

================  ==========================================  =======
parameter         values                                       count
================  ==========================================  =======
filter_par        8, 16                                            2
pixel_par         4, 8, 16, 32, 64                                 5
ratio_conv        1, 0.75, 0.67, 0.5, 0.33, 0.25                   6
input_buffer      1K, 2K, 4K, 8K entries                           4
weight_buffer     1K, 2K, 4K entries                               3
output_buffer     1K, 2K, 4K entries                               3
mem_interface     256, 512 bits                                    2
pool_enable       off, on                                          2
================  ==========================================  =======

``ratio_conv_engines == 1`` means a single general convolution engine;
any smaller value splits the DSP budget between a 3x3-specialised and a
1x1-specialised engine — the parameter the paper adds to CHaiDNN.  We
interpret the ratio as the **1x1 engine's share** of the DSP budget:
the paper's discovered designs (Table III) pick 0.33/0.25 for cells
whose MAC mix is roughly 60-80% 3x3 convolutions (Fig. 8), which
matches a 1x1 share of 0.33/0.25 and would be badly mismatched under
the opposite reading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["AcceleratorConfig", "PARAMETER_VALUES", "GENERAL_ENGINE_RATIO"]

#: Ordered parameter domains (order fixes controller token order).
PARAMETER_VALUES: dict[str, tuple] = {
    "filter_par": (8, 16),
    "pixel_par": (4, 8, 16, 32, 64),
    "ratio_conv_engines": (1.0, 0.75, 0.67, 0.5, 0.33, 0.25),
    "input_buffer_depth": (1024, 2048, 4096, 8192),
    "weight_buffer_depth": (1024, 2048, 4096),
    "output_buffer_depth": (1024, 2048, 4096),
    "mem_interface_width": (256, 512),
    "pool_enable": (False, True),
}

#: The ratio value selecting the single general-purpose engine.
GENERAL_ENGINE_RATIO = 1.0


@dataclass(frozen=True)
class AcceleratorConfig:
    """One point of the accelerator design space."""

    filter_par: int = 16
    pixel_par: int = 32
    ratio_conv_engines: float = 1.0
    input_buffer_depth: int = 4096
    weight_buffer_depth: int = 2048
    output_buffer_depth: int = 2048
    mem_interface_width: int = 256
    pool_enable: bool = False

    def __post_init__(self) -> None:
        for name, values in PARAMETER_VALUES.items():
            value = getattr(self, name)
            if value not in values:
                raise ValueError(
                    f"{name}={value!r} not in allowed values {values}"
                )

    # ------------------------------------------------------------------
    @property
    def has_dual_engines(self) -> bool:
        """True when the DSP budget is split between 3x3/1x1 engines."""
        return self.ratio_conv_engines < GENERAL_ENGINE_RATIO

    @property
    def total_conv_dsp(self) -> int:
        """DSP budget of the convolution subsystem."""
        return self.filter_par * self.pixel_par

    def dsp_split(self) -> tuple[int, int]:
        """(3x3-engine DSPs, 1x1-engine DSPs).

        With a single general engine all DSPs serve any convolution and
        the 1x1 share is zero.  With dual engines the 1x1 engine takes
        ``ratio_conv_engines`` of the budget and the 3x3 engine the
        remainder, quantized to whole pixel lanes of ``filter_par``
        DSPs (at least one lane each, so neither engine degenerates).
        """
        total = self.total_conv_dsp
        if not self.has_dual_engines:
            return total, 0
        lanes = self.pixel_par
        lanes_1x1 = min(max(int(round(self.ratio_conv_engines * lanes)), 1), lanes - 1)
        dsp_1x1 = lanes_1x1 * self.filter_par
        return total - dsp_1x1, dsp_1x1

    # ------------------------------------------------------------------
    def buffer_bytes(self) -> dict[str, int]:
        """Byte capacity of each double-buffered on-chip memory.

        Words are sized to feed the engines at full rate: the input and
        output buffers hold ``pixel_par`` bytes per entry, the weight
        buffer ``filter_par`` bytes per entry (8-bit datapath as in
        CHaiDNN's int8 mode).
        """
        return {
            "input": self.input_buffer_depth * self.pixel_par,
            "weight": self.weight_buffer_depth * self.filter_par,
            "output": self.output_buffer_depth * self.pixel_par,
        }

    def to_dict(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in PARAMETER_VALUES}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AcceleratorConfig":
        return cls(**{name: data[name] for name in PARAMETER_VALUES})

    def short_name(self) -> str:
        """Compact identifier, e.g. ``f16xp64-r0.33-b4096.2048.4096-m256-p0``."""
        return (
            f"f{self.filter_par}xp{self.pixel_par}-r{self.ratio_conv_engines:g}"
            f"-b{self.input_buffer_depth}.{self.weight_buffer_depth}."
            f"{self.output_buffer_depth}-m{self.mem_interface_width}"
            f"-p{int(self.pool_enable)}"
        )
