"""Greedy list scheduler mapping a compiled network onto the engines.

The paper's latency model is "a latency lookup table of operations and
a scheduler [that] assigns operations to the parallel compute units
greedily and calculates the total latency" (Section II-C2).  We
implement exactly that: operations are visited in program (topological)
order; each op runs on its type-designated engine as soon as both the
engine and all of its producers are done.  With dual convolution
engines, independent 3x3 and 1x1 branches overlap — the mechanism that
makes ``ratio_conv_engines`` interact with the cell topology.

Engines:

====================  ====================================================
``conv3x3``           the 3x3-specialised engine (or the single general
                      engine when ``ratio_conv_engines == 1``)
``conv1x1``           the 1x1-specialised engine (dual mode only)
``pool``              the optional pooling engine
``cpu``               host fallback: element-wise glue, global pooling,
                      the classifier, and max-pools when ``pool`` is off
====================  ====================================================

The same recurrence is exposed in scalar form
(:func:`schedule_network`) and vectorized across an arbitrary set of
configurations (:func:`batch_schedule`); the test suite checks they
agree bit-for-bit, so mass enumeration and single-point evaluation can
never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.latency import LatencyModel, config_columns
from repro.nasbench import ops as O
from repro.nasbench.compile import CompiledOp, NetworkIR

__all__ = [
    "ENGINES",
    "engine_of",
    "ScheduleResult",
    "schedule_network",
    "batch_schedule",
]

#: Engine identifiers, indexed by position.
ENGINES = ("conv3x3", "conv1x1", "pool", "cpu")
_E_CONV3X3, _E_CONV1X1, _E_POOL, _E_CPU = range(4)


def engine_of(kind: str, config: AcceleratorConfig) -> int:
    """Engine index executing ops of ``kind`` under ``config``."""
    if O.is_conv3x3_shaped(kind):
        return _E_CONV3X3
    if O.is_conv1x1_shaped(kind):
        return _E_CONV1X1 if config.has_dual_engines else _E_CONV3X3
    if kind in O.POOL_KINDS:
        return _E_POOL if config.pool_enable else _E_CPU
    return _E_CPU


def _engine_vector(kind: str, cols: dict[str, np.ndarray]) -> np.ndarray:
    """Vectorized :func:`engine_of` across configurations."""
    n = len(cols["filter_par"])
    dual = np.asarray(cols["ratio_conv_engines"], dtype=np.float64) < 1.0
    if O.is_conv3x3_shaped(kind):
        return np.full(n, _E_CONV3X3)
    if O.is_conv1x1_shaped(kind):
        return np.where(dual, _E_CONV1X1, _E_CONV3X3)
    if kind in O.POOL_KINDS:
        pool = np.asarray(cols["pool_enable"], dtype=bool)
        return np.where(pool, _E_POOL, _E_CPU)
    return np.full(n, _E_CPU)


@dataclass
class ScheduleResult:
    """Outcome of scheduling one network on one accelerator."""

    latency_s: float
    finish_times: np.ndarray
    engine_busy_s: dict[str, float] = field(default_factory=dict)

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    def utilization(self) -> dict[str, float]:
        """Busy fraction of each engine over the makespan."""
        if self.latency_s <= 0:
            return {name: 0.0 for name in ENGINES}
        return {
            name: busy / self.latency_s for name, busy in self.engine_busy_s.items()
        }


def schedule_network(
    ir: NetworkIR,
    config: AcceleratorConfig,
    model: LatencyModel | None = None,
    durations: list[float] | None = None,
) -> ScheduleResult:
    """Greedy list schedule of ``ir`` on a single accelerator.

    ``durations`` may supply precomputed per-op seconds (e.g. from a
    :class:`repro.accelerator.lut.LatencyLUT`); otherwise the analytical
    model is evaluated on the fly.
    """
    model = model or LatencyModel()
    n_ops = len(ir.ops)
    finish = np.zeros(n_ops, dtype=np.float64)
    engine_free = [0.0] * len(ENGINES)
    engine_busy = [0.0] * len(ENGINES)

    for op in ir.ops:
        duration = (
            durations[op.index] if durations is not None
            else model.op_duration(op, config)
        )
        engine = engine_of(op.kind, config)
        ready = max((finish[d] for d in op.deps), default=0.0)
        start = max(ready, engine_free[engine])
        end = start + duration
        finish[op.index] = end
        engine_free[engine] = end
        engine_busy[engine] += duration

    return ScheduleResult(
        latency_s=float(finish.max()) if n_ops else 0.0,
        finish_times=finish,
        engine_busy_s={name: engine_busy[i] for i, name in enumerate(ENGINES)},
    )


def batch_schedule(
    ir: NetworkIR,
    configs,
    model: LatencyModel | None = None,
) -> np.ndarray:
    """Latency (seconds) of ``ir`` on every configuration at once.

    ``configs`` may be an :class:`AcceleratorSpace` column dict, a list
    of configs, or a single config.  Runs the same greedy recurrence as
    :func:`schedule_network` with all per-config state vectorized, so
    results match the scalar scheduler exactly.
    """
    model = model or LatencyModel()
    cols = config_columns(
        configs.columns() if hasattr(configs, "columns") else configs
    )
    n_cfg = len(cols["filter_par"])
    n_ops = len(ir.ops)
    finish = np.zeros((n_ops, n_cfg), dtype=np.float64)
    engine_free = np.zeros((len(ENGINES), n_cfg), dtype=np.float64)
    rows = np.arange(n_cfg)

    for op in ir.ops:
        duration = model.durations(op, cols)
        engine = _engine_vector(op.kind, cols)
        if op.deps:
            ready = finish[list(op.deps)].max(axis=0)
        else:
            ready = np.zeros(n_cfg)
        start = np.maximum(ready, engine_free[engine, rows])
        end = start + duration
        finish[op.index] = end
        engine_free[engine, rows] = end

    if n_ops == 0:
        return np.zeros(n_cfg)
    return finish.max(axis=0)
