"""The full accelerator design space (8640 configurations).

Provides index <-> config bijections, controller token decoding, and
column views (one numpy array per parameter across the whole space)
that the vectorized area/latency paths consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.accelerator.config import PARAMETER_VALUES, AcceleratorConfig

__all__ = ["AcceleratorSpace"]


@dataclass
class AcceleratorSpace:
    """Mixed-radix enumeration of every accelerator configuration.

    The index is little-endian in parameter order: the first parameter
    (``filter_par``) varies fastest.
    """

    parameters: dict[str, tuple] = field(
        default_factory=lambda: dict(PARAMETER_VALUES)
    )

    #: The frozen config dataclass this space decodes into.  Subclasses
    #: (e.g. the tiled-GEMM space) override it with their own config
    #: type; it must accept one keyword per parameter name and expose
    #: each as an attribute plus ``to_dict()``.
    config_class = AcceleratorConfig

    def __post_init__(self) -> None:
        self._names = list(self.parameters)
        self._radices = [len(self.parameters[n]) for n in self._names]
        strides = []
        stride = 1
        for radix in self._radices:
            strides.append(stride)
            stride *= radix
        self._strides = strides
        # Flat index -> the one config object for that point.
        # Interning makes repeat decodes of the same configuration
        # return the *same* (frozen, immutable) object, so downstream
        # identity-keyed memos — the tensorized evaluator's
        # config-to-index resolution — hit without rebuilding any key.
        self._interned: dict[int, object] = {}

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        size = 1
        for r in self._radices:
            size *= r
        return size

    @property
    def vocab_sizes(self) -> list[int]:
        """Choices per controller token (one token per parameter)."""
        return list(self._radices)

    @property
    def num_tokens(self) -> int:
        return len(self._names)

    @property
    def names(self) -> list[str]:
        return list(self._names)

    # ------------------------------------------------------------------
    def config_at(self, index: int) -> AcceleratorConfig:
        """Configuration at a flat index in ``[0, size)`` (interned)."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range for size {self.size}")
        index = int(index)
        config = self._interned.get(index)
        if config is None:
            values = {}
            remainder = index
            for name, radix in zip(self._names, self._radices):
                values[name] = self.parameters[name][remainder % radix]
                remainder //= radix
            config = self.config_class(**values)
            self._interned[index] = config
        return config

    def index_of(self, config: AcceleratorConfig) -> int:
        """Flat index of ``config`` (inverse of :meth:`config_at`)."""
        index = 0
        stride = 1
        for name, radix in zip(self._names, self._radices):
            value = getattr(config, name)
            index += self.parameters[name].index(value) * stride
            stride *= radix
        return index

    def index_of_actions(self, actions: Sequence[int]) -> int:
        """Flat index selected by one controller action per token.

        Actions *are* per-parameter value indices, so the flat index is
        just their mixed-radix composition — no config (or dict) is
        ever materialized.  This is the index-native decode route the
        tensorized evaluation path rides:
        ``decode(a) == config_at(index_of_actions(a))`` always holds.
        """
        actions = list(actions)
        if len(actions) != self.num_tokens:
            raise ValueError(f"expected {self.num_tokens} actions, got {len(actions)}")
        index = 0
        for name, radix, stride, action in zip(
            self._names, self._radices, self._strides, actions
        ):
            if not 0 <= action < radix:
                raise ValueError(f"action {action} out of range for {name}")
            index += int(action) * stride
        return index

    def decode(self, actions: Sequence[int]) -> AcceleratorConfig:
        """Configuration selected by one controller action per token."""
        return self.config_at(self.index_of_actions(actions))

    def encode(self, config: AcceleratorConfig) -> list[int]:
        """Controller actions reproducing ``config``."""
        return [
            self.parameters[name].index(getattr(config, name))
            for name in self._names
        ]

    def __iter__(self) -> Iterator[AcceleratorConfig]:
        for i in range(self.size):
            yield self.config_at(i)

    def random_config(self, rng: np.random.Generator) -> AcceleratorConfig:
        return self.config_at(int(rng.integers(0, self.size)))

    # ------------------------------------------------------------------
    def columns(self) -> dict[str, np.ndarray]:
        """One array per parameter, aligned with flat indices.

        ``columns()['pixel_par'][i]`` equals
        ``config_at(i).pixel_par`` — the layout the batch area/latency
        models vectorize over.
        """
        index = np.arange(self.size)
        out: dict[str, np.ndarray] = {}
        remainder = index
        for name, radix in zip(self._names, self._radices):
            values = np.asarray(self.parameters[name])
            out[name] = values[remainder % radix]
            remainder = remainder // radix
        return out

    def columns_at(self, indices) -> dict[str, np.ndarray]:
        """Column views at the given flat indices only.

        Value- and dtype-identical to ``{k: v[indices] for k, v in
        columns().items()}`` without materializing the full space —
        the decode that keeps surrogate fits affordable on spaces too
        large to enumerate.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out: dict[str, np.ndarray] = {}
        remainder = indices
        for name, radix in zip(self._names, self._radices):
            values = np.asarray(self.parameters[name])
            out[name] = values[remainder % radix]
            remainder = remainder // radix
        return out
