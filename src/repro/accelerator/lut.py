"""Latency lookup table over (operation signature, accelerator config).

The paper measures each of the ~85 unique operation variations of its
CNN search space on the FPGA and stores the latencies in a lookup table
consumed by the scheduler.  This module reproduces that workflow with
the analytical model as the measurement source: a
:class:`LatencyLUT` is *built* for a set of networks and accelerator
configs, can be saved/loaded as JSON (like the authors' measured
table), and is then the scheduler's duration source — so search runs
never re-evaluate the analytical formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.latency import LatencyModel
from repro.nasbench.compile import CompiledOp, NetworkIR
from repro.utils.serialization import dump_json, load_json

__all__ = ["LatencyLUT", "config_key", "signature_key"]


def config_key(config: AcceleratorConfig) -> tuple:
    """Hashable key of the latency-relevant accelerator parameters."""
    return tuple(config.to_dict().values())


def signature_key(op: CompiledOp) -> tuple:
    """Hashable key of the latency-relevant op shape."""
    return op.signature()


@dataclass
class LatencyLUT:
    """Memoized per-op latencies, keyed by (op signature, config)."""

    model: LatencyModel = field(default_factory=LatencyModel)
    table: dict[tuple, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def get(self, op: CompiledOp, config: AcceleratorConfig) -> float:
        """Latency in seconds, computing and caching on miss."""
        key = (signature_key(op), config_key(config))
        value = self.table.get(key)
        if value is None:
            value = self.model.op_duration(op, config)
            self.table[key] = value
        return value

    def network_durations(
        self, ir: NetworkIR, config: AcceleratorConfig
    ) -> list[float]:
        """Per-op durations for a whole network (scheduler input)."""
        return [self.get(op, config) for op in ir.ops]

    def build(self, irs: list[NetworkIR], configs: list[AcceleratorConfig]) -> "LatencyLUT":
        """Populate the table for every (op, config) pair up front."""
        for ir in irs:
            for config in configs:
                self.network_durations(ir, config)
        return self

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        return len(self.table)

    def unique_op_signatures(self) -> set[tuple]:
        """Distinct op variations covered (the paper counts 85)."""
        return {sig for sig, _ in self.table}

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Serialize the table to JSON."""
        rows = [
            {"signature": list(sig), "config": list(cfg), "seconds": seconds}
            for (sig, cfg), seconds in sorted(self.table.items())
        ]
        return dump_json({"entries": rows}, path)

    @classmethod
    def load(cls, path: str | Path, model: LatencyModel | None = None) -> "LatencyLUT":
        """Load a table saved by :meth:`save`."""
        data = load_json(path)
        table = {}
        for row in data["entries"]:
            sig = tuple(row["signature"])
            cfg = tuple(row["config"])
            table[(sig, cfg)] = float(row["seconds"])
        return cls(model=model or LatencyModel(), table=table)
