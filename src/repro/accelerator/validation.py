"""Model-validation harness (paper Section II-C, the 1.6% / 85% checks).

The paper validates its area model against 10 full FPGA compilations
(1.6% mean error) and its latency model against on-board runs of the
GoogLeNet-cell network on 10 accelerator variants (85% accuracy).  No
FPGA exists offline, so the "measurement" here is a *synthetic oracle*:
the analytical model perturbed by deterministic, config-seeded noise
whose magnitude is set from the paper's reported model errors (2% area,
~18% latency).  The harness therefore cannot *discover* the paper's
error figures — it reproduces the validation *procedure* and records
the resulting statistics in EXPERIMENTS.md with that caveat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.area import AreaModel
from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.latency import LatencyModel
from repro.accelerator.lut import LatencyLUT, config_key
from repro.accelerator.scheduler import schedule_network
from repro.accelerator.space import AcceleratorSpace
from repro.nasbench.compile import NetworkIR
from repro.utils.rng import hash_seed

__all__ = ["SyntheticOracle", "ValidationReport", "validate_area_model", "validate_latency_model"]


@dataclass(frozen=True)
class SyntheticOracle:
    """Deterministic stand-in for FPGA compilation / on-board timing."""

    seed: int = 7
    area_noise_std: float = 0.02
    latency_noise_std: float = 0.18

    def _factor(self, tag: str, config: AcceleratorConfig, std: float) -> float:
        rng = np.random.default_rng(hash_seed("oracle", self.seed, tag, config_key(config)))
        return float(np.exp(rng.normal(0.0, std)))

    def compiled_area_mm2(self, config: AcceleratorConfig, model: AreaModel) -> float:
        """Area "reported by the FPGA compiler" for ``config``."""
        return model.area_mm2(config) * self._factor("area", config, self.area_noise_std)

    def measured_latency_s(
        self, ir: NetworkIR, config: AcceleratorConfig, model: LatencyModel
    ) -> float:
        """Latency "measured on the FPGA" for ``ir`` on ``config``."""
        predicted = schedule_network(ir, config, model).latency_s
        return predicted * self._factor("latency", config, self.latency_noise_std)


@dataclass
class ValidationReport:
    """Per-config errors of a model-vs-oracle comparison."""

    predicted: list[float]
    measured: list[float]

    @property
    def relative_errors(self) -> np.ndarray:
        predicted = np.asarray(self.predicted)
        measured = np.asarray(self.measured)
        return np.abs(predicted - measured) / measured

    @property
    def mean_error(self) -> float:
        return float(self.relative_errors.mean())

    @property
    def accuracy(self) -> float:
        """1 - mean relative error (the paper's "85% accurate")."""
        return 1.0 - self.mean_error


def _sample_configs(n: int, seed: int) -> list[AcceleratorConfig]:
    space = AcceleratorSpace()
    rng = np.random.default_rng(seed)
    indices = rng.choice(space.size, size=n, replace=False)
    return [space.config_at(int(i)) for i in indices]


def validate_area_model(
    n_configs: int = 10,
    seed: int = 7,
    area_model: AreaModel | None = None,
    oracle: SyntheticOracle | None = None,
) -> ValidationReport:
    """Reproduce the 10-compilation area validation experiment."""
    area_model = area_model or AreaModel()
    oracle = oracle or SyntheticOracle(seed=seed)
    configs = _sample_configs(n_configs, seed)
    predicted = [area_model.area_mm2(c) for c in configs]
    measured = [oracle.compiled_area_mm2(c, area_model) for c in configs]
    return ValidationReport(predicted, measured)


def validate_latency_model(
    ir: NetworkIR,
    n_configs: int = 10,
    seed: int = 7,
    latency_model: LatencyModel | None = None,
    oracle: SyntheticOracle | None = None,
) -> ValidationReport:
    """Reproduce the 10-variant latency validation experiment.

    The paper uses the GoogLeNet-cell network for this; callers pass
    the compiled IR (see :func:`repro.nasbench.compile_network`).
    """
    latency_model = latency_model or LatencyModel()
    oracle = oracle or SyntheticOracle(seed=seed)
    configs = _sample_configs(n_configs, seed)
    lut = LatencyLUT(model=latency_model)
    predicted = []
    measured = []
    for config in configs:
        durations = lut.network_durations(ir, config)
        predicted.append(schedule_network(ir, config, durations=durations).latency_s)
        measured.append(oracle.measured_latency_s(ir, config, latency_model))
    return ValidationReport(predicted, measured)
