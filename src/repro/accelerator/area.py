"""Per-component accelerator area model (paper Section II-C1).

The accelerator is decomposed into its components — convolution
engine(s), on-chip buffers, pooling engine, memory interface, and the
fixed base system (DMA, AXI interconnect, control) — and each component
is modelled by CLB/BRAM/DSP counts as a function of its configuration
parameters (e.g. the sliding-window buffer inside the convolution
engine scales with ``pixel_par`` and ``filter_par``).  Resource counts
convert to silicon mm2 via Table I (:mod:`repro.accelerator.resources`).

All coefficients live in :class:`AreaModelParams`; the defaults are
calibrated so the 8640-point space spans roughly 55-205 mm2 (the
paper's Fig. 4 colour scale spans 60-200 mm2) and so the relative cost
of components (DSP-heavy engines dominating, buffers contributing a
few-to-tens of mm2) tracks CHaiDNN's reported utilization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.resources import TILE_AREA_MM2, ResourceVector

__all__ = ["AreaModelParams", "AreaModel", "BRAM36_BYTES"]

#: Usable bytes per 36 Kbit block RAM.
BRAM36_BYTES = 36 * 1024 // 8


@dataclass(frozen=True)
class AreaModelParams:
    """Calibration constants of the component area models."""

    # Fixed base system: DMAs, AXI interconnect, CPU interface, control.
    base_clb: float = 8000.0
    base_bram: float = 48.0
    base_dsp: float = 12.0

    # Convolution engines.
    engine_base_clb: float = 700.0          # control FSM + config regs
    clb_per_dsp: float = 13.0               # accumulators, pipelining
    window_clb_per_lane: float = 30.0       # 3x3 sliding-window logic
    engine_bram_per_dsp: float = 1.0 / 8.0  # local weight/partial sums
    window_bram_per_lane: float = 3.0 / 8.0 # 3-row line buffers

    # On-chip buffers (double-buffered).
    buffer_base_clb: float = 120.0
    buffer_clb_per_entry: float = 1.0 / 32.0

    # Pooling engine.
    pool_base_clb: float = 1500.0
    pool_clb_per_lane: float = 25.0
    pool_bram_per_lane: float = 2.0 / 8.0

    # External memory interface.
    mem_base_clb: float = 1200.0
    mem_clb_per_bit: float = 4.5
    mem_bram: float = 8.0
    mem_bram_per_bit: float = 1.0 / 64.0


class AreaModel:
    """Maps an :class:`AcceleratorConfig` to resources and silicon area."""

    def __init__(self, params: AreaModelParams | None = None) -> None:
        self.params = params or AreaModelParams()

    # --- components -----------------------------------------------------
    def base_system(self) -> ResourceVector:
        p = self.params
        return ResourceVector(p.base_clb, p.base_bram, p.base_dsp)

    def conv_engines(self, config: AcceleratorConfig) -> ResourceVector:
        """One general engine, or a 3x3/1x1 specialised pair.

        The 3x3 engine (and the general engine, which must handle 3x3)
        carries sliding-window line buffers and window logic per pixel
        lane; the 1x1 engine is plain dot-product lanes and is cheaper
        per DSP.
        """
        p = self.params
        dsp_3x3, dsp_1x1 = config.dsp_split()
        lanes_3x3 = dsp_3x3 / config.filter_par
        total = ResourceVector(
            clb=p.engine_base_clb + p.clb_per_dsp * dsp_3x3
            + p.window_clb_per_lane * lanes_3x3,
            bram36=math.ceil(p.engine_bram_per_dsp * dsp_3x3)
            + math.ceil(p.window_bram_per_lane * lanes_3x3),
            dsp=dsp_3x3,
        )
        if dsp_1x1 > 0:
            # The 1x1 engine is plain dot-product lanes (no window
            # logic) with a mildly simpler datapath per DSP.
            total = total + ResourceVector(
                clb=p.engine_base_clb + 0.9 * p.clb_per_dsp * dsp_1x1,
                bram36=math.ceil(p.engine_bram_per_dsp * dsp_1x1),
                dsp=dsp_1x1,
            )
        return total

    def buffers(self, config: AcceleratorConfig) -> ResourceVector:
        """Input, weight and output buffers (each double-buffered)."""
        p = self.params
        total = ResourceVector()
        depths = {
            "input": config.input_buffer_depth,
            "weight": config.weight_buffer_depth,
            "output": config.output_buffer_depth,
        }
        for name, capacity in config.buffer_bytes().items():
            bram = 2 * math.ceil(capacity / BRAM36_BYTES)
            clb = p.buffer_base_clb + p.buffer_clb_per_entry * depths[name]
            total = total + ResourceVector(clb=clb, bram36=bram)
        return total

    def pooling_engine(self, config: AcceleratorConfig) -> ResourceVector:
        if not config.pool_enable:
            return ResourceVector()
        p = self.params
        return ResourceVector(
            clb=p.pool_base_clb + p.pool_clb_per_lane * config.pixel_par,
            bram36=math.ceil(p.pool_bram_per_lane * config.pixel_par),
        )

    def memory_interface(self, config: AcceleratorConfig) -> ResourceVector:
        p = self.params
        width = config.mem_interface_width
        return ResourceVector(
            clb=p.mem_base_clb + p.mem_clb_per_bit * width,
            bram36=p.mem_bram + math.ceil(p.mem_bram_per_bit * width),
        )

    # --- totals -----------------------------------------------------------
    def resources(self, config: AcceleratorConfig) -> ResourceVector:
        """Total resource usage of the configured accelerator."""
        return (
            self.base_system()
            + self.conv_engines(config)
            + self.buffers(config)
            + self.pooling_engine(config)
            + self.memory_interface(config)
        )

    def area_mm2(self, config: AcceleratorConfig) -> float:
        """Estimated silicon area in mm2 (the paper's area metric)."""
        return self.resources(config).silicon_area_mm2()

    def batch_area_mm2(self, cols: dict[str, np.ndarray]) -> np.ndarray:
        """Vectorized :meth:`area_mm2` over config columns.

        ``cols`` is a column dict as produced by
        :meth:`repro.accelerator.AcceleratorSpace.columns` (or
        :func:`repro.accelerator.latency.config_columns`).  Every
        formula mirrors the scalar component models term for term, in
        the same accumulation order, so the result matches the
        per-config path elementwise (see ``tests/accelerator/test_area.py``).
        """
        p = self.params
        filter_par = np.asarray(cols["filter_par"], dtype=np.float64)
        pixel_par = np.asarray(cols["pixel_par"], dtype=np.float64)
        ratio = np.asarray(cols["ratio_conv_engines"], dtype=np.float64)
        pool_enable = np.asarray(cols["pool_enable"], dtype=bool)
        width = np.asarray(cols["mem_interface_width"], dtype=np.float64)

        # dsp_split, vectorized (np.round is round-half-even, like round()).
        total_dsp = filter_par * pixel_par
        lanes_1x1 = np.clip(np.round(ratio * pixel_par), 1, pixel_par - 1)
        dsp_1x1 = np.where(ratio < 1.0, lanes_1x1 * filter_par, 0.0)
        dsp_3x3 = total_dsp - dsp_1x1
        lanes_3x3 = dsp_3x3 / filter_par

        # Base system + convolution engines.
        clb = p.base_clb + (
            p.engine_base_clb + p.clb_per_dsp * dsp_3x3
            + p.window_clb_per_lane * lanes_3x3
        )
        bram = p.base_bram + (
            np.ceil(p.engine_bram_per_dsp * dsp_3x3)
            + np.ceil(p.window_bram_per_lane * lanes_3x3)
        )
        dsp = p.base_dsp + dsp_3x3
        dual = dsp_1x1 > 0
        clb += np.where(
            dual, p.engine_base_clb + 0.9 * p.clb_per_dsp * dsp_1x1, 0.0
        )
        bram += np.where(dual, np.ceil(p.engine_bram_per_dsp * dsp_1x1), 0.0)
        dsp += dsp_1x1

        # Buffers (input/weight/output, double-buffered).
        for depth_name, word in (
            ("input_buffer_depth", pixel_par),
            ("weight_buffer_depth", filter_par),
            ("output_buffer_depth", pixel_par),
        ):
            depth = np.asarray(cols[depth_name], dtype=np.float64)
            clb += p.buffer_base_clb + p.buffer_clb_per_entry * depth
            bram += 2 * np.ceil(depth * word / BRAM36_BYTES)

        # Pooling engine.
        clb += np.where(pool_enable, p.pool_base_clb + p.pool_clb_per_lane * pixel_par, 0.0)
        bram += np.where(pool_enable, np.ceil(p.pool_bram_per_lane * pixel_par), 0.0)

        # Memory interface.
        clb += p.mem_base_clb + p.mem_clb_per_bit * width
        bram += p.mem_bram + np.ceil(p.mem_bram_per_bit * width)

        return (
            clb * TILE_AREA_MM2["clb"]
            + bram * TILE_AREA_MM2["bram36"]
            + dsp * TILE_AREA_MM2["dsp"]
        )

    def breakdown(self, config: AcceleratorConfig) -> dict[str, float]:
        """Per-component silicon area in mm2."""
        return {
            "base_system": self.base_system().silicon_area_mm2(),
            "conv_engines": self.conv_engines(config).silicon_area_mm2(),
            "buffers": self.buffers(config).silicon_area_mm2(),
            "pooling_engine": self.pooling_engine(config).silicon_area_mm2(),
            "memory_interface": self.memory_interface(config).silicon_area_mm2(),
        }
