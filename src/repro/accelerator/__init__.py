"""CHaiDNN-style FPGA accelerator: design space, area & latency models."""

from repro.accelerator.area import BRAM36_BYTES, AreaModel, AreaModelParams
from repro.accelerator.config import (
    GENERAL_ENGINE_RATIO,
    PARAMETER_VALUES,
    AcceleratorConfig,
)
from repro.accelerator.latency import LatencyModel, LatencyModelParams, config_columns
from repro.accelerator.lut import LatencyLUT, config_key, signature_key
from repro.accelerator.resources import (
    RELATIVE_AREA,
    TILE_AREA_MM2,
    ZYNQ_ULTRASCALE_PLUS,
    Device,
    ResourceVector,
)
from repro.accelerator.scheduler import (
    ENGINES,
    ScheduleResult,
    batch_schedule,
    engine_of,
    schedule_network,
)
from repro.accelerator.space import AcceleratorSpace
from repro.accelerator.validation import (
    SyntheticOracle,
    ValidationReport,
    validate_area_model,
    validate_latency_model,
)

__all__ = [
    "BRAM36_BYTES",
    "AreaModel",
    "AreaModelParams",
    "GENERAL_ENGINE_RATIO",
    "PARAMETER_VALUES",
    "AcceleratorConfig",
    "LatencyModel",
    "LatencyModelParams",
    "config_columns",
    "LatencyLUT",
    "config_key",
    "signature_key",
    "RELATIVE_AREA",
    "TILE_AREA_MM2",
    "ZYNQ_ULTRASCALE_PLUS",
    "Device",
    "ResourceVector",
    "ENGINES",
    "ScheduleResult",
    "batch_schedule",
    "engine_of",
    "schedule_network",
    "AcceleratorSpace",
    "SyntheticOracle",
    "ValidationReport",
    "validate_area_model",
    "validate_latency_model",
]
