"""FPGA resource accounting and silicon-area conversion (Table I).

The paper quantifies accelerator size as estimated silicon area: each
resource type (CLB, BRAM-36Kbit, DSP) has a relative area in CLBs and a
tile area in mm2 (Table I, derived for a 20nm Zynq UltraScale+ class
device from published 40nm data).  The device anchor reproduces the
table's totals: ~64.9k CLB-equivalents and ~286 mm2.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ResourceVector",
    "RELATIVE_AREA",
    "TILE_AREA_MM2",
    "Device",
    "ZYNQ_ULTRASCALE_PLUS",
]

#: Relative area in CLB units (Table I, column 2).
RELATIVE_AREA = {"clb": 1.0, "bram36": 6.0, "dsp": 10.0}

#: Silicon tile area in mm2 (Table I, column 3).
TILE_AREA_MM2 = {"clb": 0.0044, "bram36": 0.026, "dsp": 0.044}


@dataclass(frozen=True)
class ResourceVector:
    """A bundle of FPGA resources: CLBs, 36Kbit BRAMs, DSP slices."""

    clb: float = 0.0
    bram36: float = 0.0
    dsp: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.clb + other.clb,
            self.bram36 + other.bram36,
            self.dsp + other.dsp,
        )

    def scale(self, factor: float) -> "ResourceVector":
        return ResourceVector(self.clb * factor, self.bram36 * factor, self.dsp * factor)

    def relative_area(self) -> float:
        """Area in CLB-equivalents (Table I relative units)."""
        return (
            self.clb * RELATIVE_AREA["clb"]
            + self.bram36 * RELATIVE_AREA["bram36"]
            + self.dsp * RELATIVE_AREA["dsp"]
        )

    def silicon_area_mm2(self) -> float:
        """Estimated silicon area in mm2 (the paper's area metric)."""
        return (
            self.clb * TILE_AREA_MM2["clb"]
            + self.bram36 * TILE_AREA_MM2["bram36"]
            + self.dsp * TILE_AREA_MM2["dsp"]
        )

    def to_dict(self) -> dict[str, float]:
        return {"clb": self.clb, "bram36": self.bram36, "dsp": self.dsp}


@dataclass(frozen=True)
class Device:
    """An FPGA device: available resources and identity."""

    name: str
    resources: ResourceVector

    def total_relative_area(self) -> float:
        return self.resources.relative_area()

    def total_silicon_area_mm2(self) -> float:
        return self.resources.silicon_area_mm2()

    def fits(self, used: ResourceVector) -> bool:
        """True when ``used`` fits within the device."""
        return (
            used.clb <= self.resources.clb
            and used.bram36 <= self.resources.bram36
            and used.dsp <= self.resources.dsp
        )

    def utilization(self, used: ResourceVector) -> dict[str, float]:
        return {
            "clb": used.clb / self.resources.clb,
            "bram36": used.bram36 / self.resources.bram36,
            "dsp": used.dsp / self.resources.dsp,
        }


#: Device anchor for Table I: a ZU9EG-class Zynq UltraScale+ part.
#: 34,260 CLBs + 912 BRAM36 + 2,520 DSPs = 64,932 CLB-equivalents
#: (paper: 64,922) and 285.3 mm2 (paper: 286 mm2).
ZYNQ_ULTRASCALE_PLUS = Device(
    name="zynq-ultrascale-plus-zu9eg",
    resources=ResourceVector(clb=34_260, bram36=912, dsp=2_520),
)
