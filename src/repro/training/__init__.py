"""Training oracles: surrogate CIFAR-100 trainer, real numpy trainer, cache."""

from repro.training.cache import TRAIN_CONFIG_KEY, CachedTrainer
from repro.training.numpy_trainer import TOY_SKELETON, NumpyTrainerOracle
from repro.training.oracle import TrainingOracle, TrainOutcome
from repro.training.surrogate_trainer import CIFAR100_ANCHORS, SurrogateCifar100Trainer

__all__ = [
    "TRAIN_CONFIG_KEY",
    "CachedTrainer",
    "TOY_SKELETON",
    "NumpyTrainerOracle",
    "TrainingOracle",
    "TrainOutcome",
    "CIFAR100_ANCHORS",
    "SurrogateCifar100Trainer",
]
