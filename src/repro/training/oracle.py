"""Training-oracle interface: what "train this CNN and score it" returns.

Section IV has no precomputed database — every sampled cell is trained
from scratch.  Anything that can do that (the surrogate below, or the
real numpy trainer) implements :class:`TrainingOracle`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.nasbench.model_spec import ModelSpec

__all__ = ["TrainOutcome", "TrainingOracle"]


@dataclass(frozen=True)
class TrainOutcome:
    """Result of training one cell to completion."""

    accuracy: float        # top-1 test accuracy, percent
    gpu_hours: float       # simulated single-GPU cost of this run

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 100.0:
            raise ValueError("accuracy must be a percentage")
        if self.gpu_hours < 0:
            raise ValueError("gpu_hours must be non-negative")


class TrainingOracle(Protocol):
    """Protocol for CIFAR-100-style train-and-score backends."""

    def train_and_score(self, spec: ModelSpec) -> TrainOutcome:
        """Train ``spec``'s network from scratch and report accuracy."""
        ...
