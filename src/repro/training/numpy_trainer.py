"""A *real* training oracle: builds and trains the cell's network.

This is the honest, slow path — every call instantiates the spec's
network with :func:`repro.nn.build_network` and runs SGD on a synthetic
dataset, exactly the pipeline the paper runs per sampled cell (at toy
scale: a shrunken skeleton and a synthetic CIFAR stand-in).  Used by
integration tests and the ``train_numpy_cnn`` example to demonstrate
that the search loop runs unchanged over a genuine trainer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.nasbench.model_spec import ModelSpec
from repro.nasbench.skeleton import SkeletonConfig
from repro.nn.builder import build_network
from repro.nn.data import ImageDataset, synthetic_cifar
from repro.nn.trainer import TrainConfig, Trainer
from repro.training.oracle import TrainOutcome
from repro.utils.rng import hash_seed

__all__ = ["NumpyTrainerOracle", "TOY_SKELETON"]

#: A shrunken skeleton that trains in seconds on CPU.
TOY_SKELETON = SkeletonConfig(
    input_height=16,
    input_width=16,
    input_channels=3,
    stem_channels=8,
    num_stacks=2,
    cells_per_stack=1,
    num_classes=4,
)


@dataclass
class NumpyTrainerOracle:
    """Train-and-score with the numpy NN stack on synthetic data."""

    skeleton: SkeletonConfig = TOY_SKELETON
    train_config: TrainConfig = field(
        default_factory=lambda: TrainConfig(
            epochs=3, batch_size=32, learning_rate=0.05, augment=False
        )
    )
    n_train: int = 256
    n_test: int = 64
    seed: int = 0
    _data: tuple[ImageDataset, ImageDataset] | None = field(default=None, init=False)
    total_train_seconds: float = field(default=0.0, init=False)
    num_trainings: int = field(default=0, init=False)

    def _datasets(self) -> tuple[ImageDataset, ImageDataset]:
        if self._data is None:
            self._data = synthetic_cifar(
                n_train=self.n_train,
                n_test=self.n_test,
                n_classes=self.skeleton.num_classes,
                size=self.skeleton.input_height,
                channels=self.skeleton.input_channels,
                seed=hash_seed("numpy-trainer-data", self.seed),
            )
        return self._data

    def train_and_score(self, spec: ModelSpec) -> TrainOutcome:
        """Build, train, and test the network for ``spec``."""
        if not spec.valid:
            raise ValueError("cannot train an invalid spec")
        train, test = self._datasets()
        start = perf_counter()
        network = build_network(
            spec, self.skeleton, seed=hash_seed("init", self.seed, spec.spec_hash())
        )
        trainer = Trainer(
            network,
            self.train_config,
            seed=hash_seed("fit", self.seed, spec.spec_hash()),
        )
        trainer.fit(train)
        accuracy = 100.0 * trainer.evaluate(test)
        elapsed = perf_counter() - start
        self.total_train_seconds += elapsed
        self.num_trainings += 1
        return TrainOutcome(accuracy=accuracy, gpu_hours=elapsed / 3600.0)

    def accuracy_fn(self, spec: ModelSpec) -> float | None:
        """Adapter for :class:`repro.core.CodesignEvaluator`."""
        if not spec.valid:
            return None
        return self.train_and_score(spec).accuracy
