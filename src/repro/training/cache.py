"""Training-result cache with a GPU-hour ledger.

Wraps any :class:`TrainingOracle` so repeated proposals of the same
cell are free — the paper's searches revisit cells constantly, and only
the first visit pays the training cost.

The cache has two layers.  The in-memory dict covers one process
lifetime; an optional :class:`repro.parallel.EvalCache` ``store``
persists outcomes on disk (training rows use the sentinel config key
``"-"`` since accuracy is config-independent, and keep GPU-hours in
the ``extra`` payload).  With a store attached, re-running a Section IV
experiment warm-starts from every cell any earlier run ever trained —
and those warm hits charge nothing to the GPU-hour ledger, exactly like
in-memory hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nasbench.model_spec import ModelSpec
from repro.parallel.cache import CacheEntry, EvalCache
from repro.training.oracle import TrainingOracle, TrainOutcome

__all__ = ["CachedTrainer", "TRAIN_CONFIG_KEY"]

#: Config-key sentinel for training rows (accuracy ignores hardware).
TRAIN_CONFIG_KEY = "-"


@dataclass
class CachedTrainer:
    """Memoizing wrapper around a training oracle.

    ``store`` / ``namespace`` opt into cross-run persistence; the
    namespace must pin everything the oracle's outcome depends on
    (e.g. surrogate seed and noise level), so differently-configured
    oracles never share rows.
    """

    oracle: TrainingOracle
    store: EvalCache | None = None
    namespace: str = "training"
    _cache: dict[str, TrainOutcome] = field(default_factory=dict, init=False)
    hits: int = field(default=0, init=False)
    misses: int = field(default=0, init=False)
    _gpu_hours_paid: float = field(default=0.0, init=False)

    def train_and_score(self, spec: ModelSpec) -> TrainOutcome:
        key = spec.spec_hash()
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        if self.store is not None:
            row = self.store.get(self.namespace, key, TRAIN_CONFIG_KEY)
            if row is not None and row.accuracy is not None:
                outcome = TrainOutcome(
                    accuracy=row.accuracy,
                    gpu_hours=(row.extra or {}).get("gpu_hours", 0.0),
                )
                self._cache[key] = outcome
                self.hits += 1
                return outcome
        self.misses += 1
        outcome = self.oracle.train_and_score(spec)
        self._cache[key] = outcome
        self._gpu_hours_paid += outcome.gpu_hours
        if self.store is not None:
            self.store.put(
                CacheEntry(
                    self.namespace,
                    key,
                    TRAIN_CONFIG_KEY,
                    accuracy=outcome.accuracy,
                    latency_s=None,
                    area_mm2=None,
                    extra={"gpu_hours": outcome.gpu_hours},
                )
            )
            self.store.flush()
        return outcome

    def accuracy_fn(self, spec: ModelSpec) -> float | None:
        """Adapter for :class:`repro.core.CodesignEvaluator`."""
        if not spec.valid:
            return None
        return self.train_and_score(spec).accuracy

    @property
    def unique_cells_trained(self) -> int:
        return len(self._cache)

    def total_gpu_hours(self) -> float:
        """GPU-hours actually paid by this run (warm hits are free)."""
        return self._gpu_hours_paid
