"""Training-result cache with a GPU-hour ledger.

Wraps any :class:`TrainingOracle` so repeated proposals of the same
cell are free — the paper's searches revisit cells constantly, and only
the first visit pays the training cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nasbench.model_spec import ModelSpec
from repro.training.oracle import TrainingOracle, TrainOutcome

__all__ = ["CachedTrainer"]


@dataclass
class CachedTrainer:
    """Memoizing wrapper around a training oracle."""

    oracle: TrainingOracle
    _cache: dict[str, TrainOutcome] = field(default_factory=dict, init=False)
    hits: int = field(default=0, init=False)
    misses: int = field(default=0, init=False)

    def train_and_score(self, spec: ModelSpec) -> TrainOutcome:
        key = spec.spec_hash()
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        outcome = self.oracle.train_and_score(spec)
        self._cache[key] = outcome
        return outcome

    def accuracy_fn(self, spec: ModelSpec) -> float | None:
        """Adapter for :class:`repro.core.CodesignEvaluator`."""
        if not spec.valid:
            return None
        return self.train_and_score(spec).accuracy

    @property
    def unique_cells_trained(self) -> int:
        return len(self._cache)

    def total_gpu_hours(self) -> float:
        return sum(outcome.gpu_hours for outcome in self._cache.values())
