"""Surrogate CIFAR-100 trainer (the Section IV substitution).

The paper trains every sampled cell for 108 epochs (~1 GPU-hour each,
48 GPUs in parallel).  Offline we replace that inner loop with a
deterministic response surface over the same cell features as the
CIFAR-10 surrogate, **pinned to the paper's Table II anchors**:

=================  ==========  ======================================
cell               accuracy    source
=================  ==========  ======================================
ResNet cell        72.9 %      Table II row 1
GoogLeNet cell     71.5 %      Table II row 3
Cod-1              74.2 %      Table II row 2
Cod-2              72.0 %      Table II row 4
=================  ==========  ======================================

Pinning is a small additive correction (< 0.7 points) on top of the
surface, so the anchors are exact while the rest of the space keeps a
smooth, NASBench-like landscape whose maximum (~75.5%) matches Fig. 7's
upper range.  Each training run adds deterministic per-cell noise
(run-to-run variance) and charges simulated GPU-hours to a ledger, so
search budgets are measurable the way the paper reports them
(~1000 GPU-hours to reach Cod-1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nasbench.known_cells import KNOWN_CELLS
from repro.nasbench.model_spec import ModelSpec
from repro.nasbench.surrogate import CellFeatures, extract_features
from repro.training.oracle import TrainOutcome
from repro.utils.rng import hash_seed

__all__ = ["SurrogateCifar100Trainer", "CIFAR100_ANCHORS"]

#: Paper Table II accuracy anchors (percent).
CIFAR100_ANCHORS = {
    "resnet": 72.9,
    "googlenet": 71.5,
    "cod1": 74.2,
    "cod2": 72.0,
}


def _surface(f: CellFeatures) -> float:
    """Noise-free CIFAR-100 accuracy surface (percent)."""
    acc = 72.4
    acc -= 9.0 * np.exp(-0.9 * (f.depth - 2))
    acc += 1.9 * (1.0 - np.exp(-0.7 * f.n_conv3x3))
    acc += 0.45 * (1.0 - np.exp(-0.6 * f.n_conv1x1))
    acc -= 2.5 * (f.n_maxpool / max(f.n_interior, 1)) ** 2
    acc += 2.0 * np.tanh(0.75 * (f.log10_params - 6.9))
    if f.has_output_skip:
        acc += 0.6
    acc += 0.35 * min(f.width - 1, 3)
    return float(acc)


@dataclass
class SurrogateCifar100Trainer:
    """Deterministic stand-in for from-scratch CIFAR-100 training."""

    seed: int = 100
    noise_std: float = 0.3
    gpu_hours_per_gmac: float = 0.45
    gpu_hours_base: float = 0.45
    floor: float = 55.0
    ceiling: float = 76.5
    total_gpu_hours: float = field(default=0.0, init=False)
    num_trainings: int = field(default=0, init=False)
    _anchor_offsets: dict[str, float] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        for name, target in CIFAR100_ANCHORS.items():
            spec = KNOWN_CELLS[name]()
            surface = _surface(extract_features(spec))
            self._anchor_offsets[spec.spec_hash()] = target - surface

    # ------------------------------------------------------------------
    def cache_namespace(self) -> str:
        """Store namespace pinning every outcome-affecting parameter.

        Used by :func:`repro.experiments.fig7.run_fig7` when persisting
        training outcomes — differently configured trainers must never
        share rows.
        """
        return (
            f"train/cifar100/seed{self.seed}/noise{self.noise_std:g}"
            f"/gpu{self.gpu_hours_base:g}+{self.gpu_hours_per_gmac:g}"
            f"/clip{self.floor:g}-{self.ceiling:g}"
        )

    def mean_accuracy(self, spec: ModelSpec) -> float:
        """Noise-free accuracy (anchored surface), percent."""
        if not spec.valid:
            raise ValueError("cannot train an invalid spec")
        features = extract_features(spec)
        value = _surface(features)
        value += self._anchor_offsets.get(spec.spec_hash(), 0.0)
        return float(np.clip(value, self.floor, self.ceiling))

    def train_and_score(self, spec: ModelSpec) -> TrainOutcome:
        """One simulated training run (deterministic per cell+seed)."""
        mean = self.mean_accuracy(spec)
        rng = np.random.default_rng(hash_seed("c100", self.seed, spec.spec_hash()))
        accuracy = float(
            np.clip(mean + rng.normal(0.0, self.noise_std), self.floor, self.ceiling)
        )
        features = extract_features(spec)
        gpu_hours = self.gpu_hours_base + self.gpu_hours_per_gmac * features.giga_macs
        self.total_gpu_hours += gpu_hours
        self.num_trainings += 1
        return TrainOutcome(accuracy=accuracy, gpu_hours=gpu_hours)

    # ------------------------------------------------------------------
    def accuracy_fn(self, spec: ModelSpec) -> float | None:
        """Adapter for :class:`repro.core.CodesignEvaluator`.

        The evaluator memoizes per cell, so each distinct cell is
        "trained" exactly once per search — as in the paper.
        """
        if not spec.valid:
            return None
        return self.train_and_score(spec).accuracy

    def wall_clock_hours(self, num_parallel_gpus: int = 48) -> float:
        """Simulated wall-clock given the paper's 6x8-GPU fleet."""
        if num_parallel_gpus < 1:
            raise ValueError("num_parallel_gpus must be positive")
        return self.total_gpu_hours / num_parallel_gpus
