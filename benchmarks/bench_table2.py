"""T2: best discovered points vs ResNet/GoogLeNet on their best HW."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import Scale
from repro.experiments.fig7 import run_fig7
from repro.experiments.table2 import run_table2


@pytest.fixture(scope="module")
def fig7(scale):
    # Table II needs enough search to find dominating points: at least
    # half the paper's per-rung valid-point targets.
    sizing = Scale(
        name=f"{scale.name}-table2",
        search_steps=scale.search_steps,
        num_repeats=scale.num_repeats,
        fig7_target_scale=max(scale.fig7_target_scale, 0.5),
    )
    return run_fig7(scale=sizing, seed=1)


def test_table2_codesign_vs_baselines(benchmark, fig7):
    result = run_once(benchmark, lambda: run_table2(fig7))
    print("\n" + result.to_markdown())
    improvements = result.improvements()
    # Paper headline: Cod-1 beats ResNet on both accuracy and
    # perf/area (paper: +1.3% / +41%).
    assert "cod1" in improvements, "no point dominating the ResNet baseline found"
    assert improvements["cod1"]["accuracy_gain"] > 0
    assert improvements["cod1"]["perf_per_area_gain_pct"] > 0
    # Cod-2 vs GoogLeNet (paper: +0.5% / +3.3%): same direction.
    if "cod2" in improvements:
        assert improvements["cod2"]["accuracy_gain"] > 0
        assert improvements["cod2"]["perf_per_area_gain_pct"] > 0
