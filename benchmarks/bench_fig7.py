"""F7: CIFAR-100 codesign with the rising perf/area threshold."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig7 import run_fig7


@pytest.fixture(scope="module")
def fig7(scale):
    return run_fig7(scale=scale, seed=0)


def test_fig7_threshold_search(benchmark, fig7):
    result = run_once(benchmark, lambda: fig7)
    print("\n" + result.to_markdown())
    # Every rung reports top points meeting its constraint.
    for threshold, entries in result.top10_per_threshold.items():
        for entry in entries:
            assert entry.metrics.perf_per_area >= threshold
    # Training budget was charged.
    assert result.gpu_hours > 0
    assert result.unique_cells_trained > 5
