"""F6: reward-vs-steps curves per strategy and scenario."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig6 import run_fig6
from repro.experiments.search_study import run_search_study


@pytest.fixture(scope="module")
def study(bundle, scale):
    return run_search_study(bundle, scale, master_seed=1)


def test_fig6_reward_curves(benchmark, study):
    result = run_once(benchmark, lambda: run_fig6(study=study))
    print("\n" + result.to_markdown())
    finals = result.final_rewards()
    for scenario, by_strategy in finals.items():
        for strategy, value in by_strategy.items():
            assert np.isfinite(value), (scenario, strategy)
    # Paper shape: the RL strategies end with a positive mean reward in
    # the unconstrained scenario (rewards are in (0, 1) when feasible).
    assert finals["unconstrained"]["combined"] > 0.0
