"""Benchmark the learned hardware-cost surrogates against the exact models.

For each base platform, build its ``surrogate:`` twin (fitting or
loading the artifact) and measure points/sec on a config sample three
ways — the exact scalar loop, the exact batched path, and the surrogate
batched path — for both area and network latency.  Alongside raw
throughput, report the surrogate's Spearman rank correlation against
the exact model on the sampled configs: the two-tier search only uses
surrogate *rankings* to pick which proposals get exact scoring, so rank
fidelity (not absolute error) is the number that decides search
quality.

Gates (both on by default, tunable/disabled via flags):

* rank correlation on the latency sample must clear ``--min-rank-corr``
  (default 0.90, matching the latency error budget);
* on dac2020-scaled, the surrogate batched latency path must deliver at
  least ``--min-speedup`` (default 10x) the exact *scalar* throughput —
  the headline that makes surrogate-ranked proposal filtering worth
  the approximation.

Run:  PYTHONPATH=src python benchmarks/bench_surrogate.py [--sample 2048]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.hw import SURROGATE_PREFIX, build_platform, list_platforms
from repro.hw.surrogate import spearman_rank_correlation
from repro.nasbench.compile import compile_cell_ops
from repro.nasbench.known_cells import resnet_cell
from repro.nasbench.skeleton import CIFAR10_SKELETON
from repro.utils.tables import format_markdown

#: The acceptance platform for the speedup gate: big enough that the
#: scalar loop hurts, and the platform dac2020 studies actually sweep.
GATE_PLATFORM = "dac2020-scaled"


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--sample", type=int, default=2048,
                        help="configs for the batched comparison")
    parser.add_argument("--scalar-sample", type=int, default=48,
                        help="configs for the exact scalar loop")
    parser.add_argument("--min-rank-corr", type=float, default=0.90,
                        help="fail below this latency rank correlation "
                             "(negative disables the gate)")
    parser.add_argument("--min-speedup", type=float, default=10.0,
                        help=f"fail unless surrogate batch beats the exact "
                             f"scalar loop by this factor on {GATE_PLATFORM} "
                             "(non-positive disables the gate)")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="also write the measured rates as JSON")
    args = parser.parse_args()

    ir = compile_cell_ops(resnet_cell(), CIFAR10_SKELETON)
    bases = [n for n in list_platforms() if not n.startswith(SURROGATE_PREFIX)]
    rows = []
    report: dict[str, dict] = {}
    for name in bases:
        base = build_platform(name)
        surrogate = build_platform(f"{SURROGATE_PREFIX}{name}")
        space = base.config_space()

        rng = np.random.default_rng(0)
        index = rng.integers(0, space.size, min(args.sample, space.size))
        full = space.columns()
        cols = {key: values[index] for key, values in full.items()}
        scalar_configs = [
            space.config_at(int(i)) for i in index[: args.scalar_sample]
        ]

        t_exact_scalar = _best_of(
            args.repeats,
            lambda: [base.network_latency_s(ir, c) for c in scalar_configs],
        )
        t_exact_batch = _best_of(
            args.repeats, lambda: base.batch_network_latency_s(ir, cols)
        )
        t_sur_batch = _best_of(
            args.repeats, lambda: surrogate.batch_network_latency_s(ir, cols)
        )
        t_sur_area = _best_of(
            args.repeats, lambda: surrogate.batch_area_mm2(cols)
        )

        exact_latency = base.batch_network_latency_s(ir, cols)
        sur_latency = surrogate.batch_network_latency_s(ir, cols)
        rank_corr = spearman_rank_correlation(exact_latency, sur_latency)
        area_corr = spearman_rank_correlation(
            base.batch_area_mm2(cols), surrogate.batch_area_mm2(cols)
        )

        n = len(index)
        exact_scalar_rate = len(scalar_configs) / t_exact_scalar
        exact_batch_rate = n / t_exact_batch
        sur_batch_rate = n / t_sur_batch
        report[name] = {
            "configs_sampled": n,
            "exact_scalar_latency_cfg_per_s": exact_scalar_rate,
            "exact_batch_latency_cfg_per_s": exact_batch_rate,
            "surrogate_batch_latency_cfg_per_s": sur_batch_rate,
            "surrogate_batch_area_cfg_per_s": n / t_sur_area,
            "surrogate_vs_exact_scalar": sur_batch_rate / exact_scalar_rate,
            "surrogate_vs_exact_batch": sur_batch_rate / exact_batch_rate,
            "latency_rank_corr": rank_corr,
            "area_rank_corr": area_corr,
        }
        rows.append(
            (
                name,
                n,
                f"{exact_scalar_rate:,.0f}",
                f"{exact_batch_rate:,.0f}",
                f"{sur_batch_rate:,.0f}",
                f"{sur_batch_rate / exact_scalar_rate:,.0f}x",
                f"{rank_corr:.4f}",
            )
        )

    print(
        format_markdown(
            [
                "platform",
                "sampled",
                "exact scalar cfg/s",
                "exact batch cfg/s",
                "surrogate batch cfg/s",
                "vs exact scalar",
                "latency rank corr",
            ],
            rows,
        )
    )
    print(
        "\nrank correlation is Spearman between surrogate and exact latency "
        "on the sampled configs — the two-tier filter only consumes ranks."
    )

    if args.json is not None:
        args.json.write_text(
            json.dumps(
                {
                    "benchmark": "bench_surrogate",
                    "repeats": args.repeats,
                    "platforms": report,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote JSON report to {args.json}")

    if args.min_rank_corr >= 0:
        worst = min(report, key=lambda n: report[n]["latency_rank_corr"])
        corr = report[worst]["latency_rank_corr"]
        assert corr >= args.min_rank_corr, (
            f"latency rank correlation {corr:.4f} on {worst} below the "
            f"required {args.min_rank_corr:.2f} floor"
        )
        print(
            f"rank-correlation floor {args.min_rank_corr:.2f} met "
            f"(worst: {worst} at {corr:.4f})"
        )
    if args.min_speedup > 0 and GATE_PLATFORM in report:
        ratio = report[GATE_PLATFORM]["surrogate_vs_exact_scalar"]
        assert ratio >= args.min_speedup, (
            f"surrogate batch vs exact scalar on {GATE_PLATFORM} is "
            f"{ratio:.1f}x, below the required {args.min_speedup:.0f}x"
        )
        print(
            f"speedup floor met: surrogate batch is {ratio:,.0f}x the exact "
            f"scalar loop on {GATE_PLATFORM}"
        )


if __name__ == "__main__":
    main()
