"""T1: regenerate Table I (FPGA block areas, device totals)."""

from benchmarks.conftest import run_once
from repro.experiments.table1 import PAPER_TABLE1, run_table1


def test_table1(benchmark):
    result = run_once(benchmark, run_table1)
    print("\n" + result.to_markdown())
    # Shape checks: our device anchor reproduces the paper's totals.
    assert abs(result.total_relative - PAPER_TABLE1["total_relative"]) < 200
    assert abs(result.total_mm2 - PAPER_TABLE1["total_mm2"]) < 2.0
