"""F5: search strategies vs the top-100 reward-ranked Pareto points."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig5 import run_fig5
from repro.experiments.search_study import run_search_study


@pytest.fixture(scope="module")
def study(bundle, scale):
    return run_search_study(bundle, scale, master_seed=0)


def test_fig5_search_vs_pareto(benchmark, study):
    result = run_once(benchmark, lambda: run_fig5(study=study))
    print("\n" + result.to_markdown())
    hit = result.constraint_hit_rates()
    # Paper shape: combined/phase handle constraints at least as well
    # as the HW-blind separate baseline.
    for scenario in ("1-constraint", "2-constraints"):
        best_joint = max(hit[scenario]["combined"], hit[scenario]["phase"])
        assert best_joint >= hit[scenario]["separate"] - 0.34
    # Every strategy produced at least one repeat somewhere.
    assert any(rate > 0 for rates in hit.values() for rate in rates.values())
