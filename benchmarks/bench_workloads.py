"""Benchmark the transformer workload on the tiled-GEMM charm-u50.

Three sections, each a claim the ``repro.workloads`` subsystem makes:

1. **Batched GEMM throughput** — for each canonical encoder (bert-tiny
   through bert-base), measure configs/sec scoring its GEMM IR on
   ``charm-u50`` via the exact scalar loop vs the exact batched
   column-wise path.  The batched path is what makes surrogate
   *fitting* affordable on a 393k-config space.
2. **Sampled-surrogate fidelity** — ``surrogate:charm-u50`` is fitted
   on a *sampled* slice of the space (the space is past the
   tensorization cap, so enumeration is off the table); its Spearman
   rank correlation against the exact latency model on a fresh uniform
   sample must clear ``--min-rank-corr`` (default 0.85).  The two-tier
   filter only consumes rankings, so rank fidelity is the number that
   decides search quality.
3. **Two-tier vs budget-matched exact** — run the ``bert-u50`` study
   twice with the *same exact-evaluation budget* (same steps, repeats,
   batch size): once two-tier (surrogate-ranked 4x-inflated proposal
   batches) and once exact-only.  Report mean best reward per
   strategy; the two-tier mode should match or beat exact-only because
   the surrogate spends the same exact budget on pre-screened
   proposals.

Run:  PYTHONPATH=src python benchmarks/bench_workloads.py [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.study import outcome_summary, run_study
from repro.experiments.presets import get_preset
from repro.hw import build_platform
from repro.hw.gemm import CANONICAL_TRANSFORMERS, transformer_gemm_ir
from repro.hw.surrogate import spearman_rank_correlation
from repro.utils.tables import format_markdown

PLATFORM = "charm-u50"


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_throughput(args) -> tuple[list, dict]:
    base = build_platform(PLATFORM)
    space = base.config_space()
    rng = np.random.default_rng(0)
    index = rng.integers(0, space.size, min(args.sample, space.size))
    full = space.columns()
    cols = {key: values[index] for key, values in full.items()}
    scalar_configs = [
        space.config_at(int(i)) for i in index[: args.scalar_sample]
    ]

    rows, report = [], {}
    for name, params in CANONICAL_TRANSFORMERS:
        ir = transformer_gemm_ir(**params)
        t_scalar = _best_of(
            args.repeats,
            lambda: [base.network_latency_s(ir, c) for c in scalar_configs],
        )
        t_batch = _best_of(
            args.repeats, lambda: base.batch_network_latency_s(ir, cols)
        )
        scalar_rate = len(scalar_configs) / t_scalar
        batch_rate = len(index) / t_batch
        report[name] = {
            "gemms": len(ir.ops),
            "exact_scalar_cfg_per_s": scalar_rate,
            "exact_batch_cfg_per_s": batch_rate,
            "batch_vs_scalar": batch_rate / scalar_rate,
        }
        rows.append(
            (
                name,
                len(ir.ops),
                f"{scalar_rate:,.0f}",
                f"{batch_rate:,.0f}",
                f"{batch_rate / scalar_rate:,.0f}x",
            )
        )
    print(
        format_markdown(
            ["model", "gemms", "exact scalar cfg/s", "exact batch cfg/s",
             "batch speedup"],
            rows,
        )
    )
    return rows, report


def bench_surrogate_fidelity(args) -> dict:
    base = build_platform(PLATFORM)
    surrogate = build_platform(f"surrogate:{PLATFORM}")
    space = base.config_space()
    # Fresh uniform sample, disjoint RNG stream from the fit (seed 1
    # vs the fitter's internal stream) — includes over-budget configs,
    # exactly the mix the two-tier filter must rank at search time.
    rng = np.random.default_rng(1)
    index = rng.integers(0, space.size, min(args.sample, space.size))
    full = space.columns()
    cols = {key: values[index] for key, values in full.items()}
    ir = transformer_gemm_ir(**dict(CANONICAL_TRANSFORMERS)["bert-base"])

    exact_latency = base.batch_network_latency_s(ir, cols)
    sur_latency = surrogate.batch_network_latency_s(ir, cols)
    latency_corr = spearman_rank_correlation(exact_latency, sur_latency)
    area_corr = spearman_rank_correlation(
        base.batch_area_mm2(cols), surrogate.batch_area_mm2(cols)
    )
    valid_frac = float(np.mean(base.batch_config_valid(cols)))
    print(
        f"\nsampled-fit surrogate on {PLATFORM} "
        f"({len(index)} fresh configs, {valid_frac:.1%} within budget): "
        f"latency rank corr {latency_corr:.4f}, area {area_corr:.4f}"
    )
    return {
        "configs_sampled": int(len(index)),
        "valid_fraction": valid_frac,
        "latency_rank_corr": float(latency_corr),
        "area_rank_corr": float(area_corr),
    }


def bench_two_tier(args) -> dict:
    overrides = {
        "execution.num_steps": args.steps,
        "execution.num_repeats": args.study_repeats,
        "execution.master_seed": 7,
    }
    two_tier = get_preset("bert-u50").with_overrides(overrides)
    exact_only = get_preset("bert-u50").with_overrides(
        {**overrides, "execution.surrogate": False}
    )

    t0 = time.perf_counter()
    summary_two = outcome_summary(run_study(two_tier))
    t_two = time.perf_counter() - t0
    t0 = time.perf_counter()
    summary_exact = outcome_summary(run_study(exact_only))
    t_exact = time.perf_counter() - t0

    # None mean-best means no repeat found a feasible point — a real
    # outcome for exact-only runs on a ~9%-valid space, and precisely
    # the failure mode surrogate pre-screening exists to avoid.
    def _fmt(value, spec=".4f"):
        return "n/a" if value is None else format(value, spec)

    rows = []
    report = {"two_tier": {}, "exact_only": {},
              "two_tier_seconds": t_two, "exact_only_seconds": t_exact}
    for key, by_strategy in summary_two.items():
        for strategy, stats in by_strategy.items():
            exact_stats = summary_exact[key][strategy]
            report["two_tier"][strategy] = stats
            report["exact_only"][strategy] = exact_stats
            mean_two = stats["mean_best_reward"]
            mean_exact = exact_stats["mean_best_reward"]
            delta = (
                None
                if mean_two is None or mean_exact is None
                else mean_two - mean_exact
            )
            rows.append(
                (
                    strategy,
                    _fmt(mean_two),
                    f"{stats['hit_rate']:.2f}",
                    _fmt(mean_exact),
                    f"{exact_stats['hit_rate']:.2f}",
                    _fmt(delta, "+.4f"),
                )
            )
    print(
        "\ntwo-tier vs exact-only on bert-u50, budget-matched at "
        f"{args.steps} exact evaluations x {args.study_repeats} repeats:"
    )
    print(
        format_markdown(
            ["strategy", "two-tier mean best", "hit rate",
             "exact-only mean best", "hit rate", "delta"],
            rows,
        )
    )
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--sample", type=int, default=2048,
                        help="configs for the batched paths")
    parser.add_argument("--scalar-sample", type=int, default=32,
                        help="configs for the exact scalar loop")
    parser.add_argument("--steps", type=int, default=24,
                        help="search steps (= exact evaluations) per "
                             "repeat in the two-tier comparison")
    parser.add_argument("--study-repeats", type=int, default=2,
                        help="search repeats in the two-tier comparison")
    parser.add_argument("--min-rank-corr", type=float, default=0.85,
                        help="fail below this sampled-surrogate latency "
                             "rank correlation (negative disables)")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="also write the measured numbers as JSON")
    args = parser.parse_args()

    _, throughput = bench_throughput(args)
    fidelity = bench_surrogate_fidelity(args)
    two_tier = bench_two_tier(args)

    if args.json is not None:
        args.json.write_text(
            json.dumps(
                {
                    "benchmark": "bench_workloads",
                    "platform": PLATFORM,
                    "throughput": throughput,
                    "surrogate_fidelity": fidelity,
                    "two_tier": two_tier,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote JSON report to {args.json}")

    if args.min_rank_corr >= 0:
        corr = fidelity["latency_rank_corr"]
        assert corr >= args.min_rank_corr, (
            f"sampled-surrogate latency rank correlation {corr:.4f} below "
            f"the required {args.min_rank_corr:.2f} floor"
        )
        print(
            f"rank-correlation floor {args.min_rank_corr:.2f} met "
            f"({corr:.4f} on {fidelity['configs_sampled']} fresh configs)"
        )


if __name__ == "__main__":
    main()
