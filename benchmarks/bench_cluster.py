"""Benchmark the ledger-leased cluster backend against serial.

Runs the same two-job repeat grid twice — serial, then on the
``cluster`` backend with N forked local workers coordinating through a
fresh run ledger — asserts the outcomes are bit-identical, and reports
wall clock, points/sec, and the lease-table accounting (how tasks
spread across workers, how often leases were claimed).

The cluster backend exists for *elasticity* (external ``repro worker``
processes joining over a shared state dir), not raw single-host
speed; its single-host value proposition is process-backend-class
throughput plus crash-tolerant, resumable coordination.  With >= 2
usable cores the benchmark asserts cluster(Nw) delivers at least
``--min-speedup`` x serial throughput.

Run:  PYTHONPATH=src python benchmarks/bench_cluster.py [--workers 2]
"""

from __future__ import annotations

import argparse
import collections
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.scenarios import one_constraint, unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.common import load_bundle
from repro.experiments.search_study import make_bundle_evaluator
from repro.parallel import RunLedger
from repro.search.random_search import RandomSearch
from repro.search.runner import RepeatJob, run_grid
from repro.utils.tables import format_markdown


def build_jobs(bundle) -> list[RepeatJob]:
    space = JointSearchSpace(cell_encoding=bundle.cell_encoding)
    jobs = []
    for name, factory in (("u", unconstrained), ("c1", one_constraint)):
        scenario = factory(bundle.bounds)
        jobs.append(
            RepeatJob(
                label=name,
                strategy_factory=lambda seed: RandomSearch(space, seed=seed),
                evaluator_factory=lambda sc=scenario: make_bundle_evaluator(
                    bundle, sc
                ),
                cache_scenario=name,
            )
        )
    return jobs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--steps", type=int, default=400)
    parser.add_argument("--repeats", type=int, default=4)
    parser.add_argument("--max-vertices", type=int, default=4)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless cluster delivers at least this x serial "
        "throughput (default: report only; needs >= 2 usable cores "
        "to be meaningful)",
    )
    args = parser.parse_args()

    bundle = load_bundle(max_vertices=args.max_vertices)
    jobs = build_jobs(bundle)
    grid_kwargs = dict(
        num_steps=args.steps, num_repeats=args.repeats, master_seed=0
    )

    t0 = time.perf_counter()
    serial = run_grid(jobs, **grid_kwargs, backend="serial")
    t_serial = time.perf_counter() - t0

    ledger_path = (
        Path(tempfile.mkdtemp(prefix="bench_cluster_")) / "bench.ledger"
    )
    t0 = time.perf_counter()
    cluster = run_grid(
        jobs,
        **grid_kwargs,
        backend="cluster",
        workers=args.workers,
        ledger=ledger_path,
    )
    t_cluster = time.perf_counter() - t0

    for label in serial:
        for a, b in zip(serial[label].results, cluster[label].results):
            assert np.array_equal(
                a.reward_trace(), b.reward_trace(), equal_nan=True
            )

    total_points = len(jobs) * args.repeats * args.steps
    cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count()
    )
    print(
        f"workload: {len(jobs)} jobs x {args.repeats} repeats x "
        f"{args.steps} steps (random strategy, "
        f"micro-{args.max_vertices} space), {args.workers} cluster "
        f"workers on {cpus} usable CPU(s)\n"
    )
    print(
        format_markdown(
            ["backend", "wall_clock_s", "points_per_s", "speedup"],
            [
                (
                    "serial",
                    round(t_serial, 2),
                    round(total_points / t_serial),
                    "1.00x",
                ),
                (
                    f"cluster x{args.workers}",
                    round(t_cluster, 2),
                    round(total_points / t_cluster),
                    f"{t_serial / t_cluster:.2f}x",
                ),
            ],
        )
    )

    ledger = RunLedger(ledger_path)
    rows = ledger.task_lease_rows()
    by_worker = collections.Counter(row["worker"] for row in rows)
    total_claims = sum(row["claims"] for row in rows)
    executions = ledger.executions()
    print(
        f"\nleases: {len(rows)} tasks, {total_claims} claims, "
        f"final holders: "
        + ", ".join(f"{w} x{n}" for w, n in sorted(by_worker.items()))
    )
    print(f"execution record: {executions}")
    print("cluster outcomes verified bit-identical to serial.")

    if args.min_speedup is not None:
        speedup = t_serial / t_cluster
        assert speedup >= args.min_speedup, (
            f"cluster x{args.workers} must reach {args.min_speedup:.2f}x "
            f"serial, got {speedup:.2f}x"
        )


if __name__ == "__main__":
    main()
