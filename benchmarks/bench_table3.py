"""T3: accelerator parameters of the best discovered points."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import Scale
from repro.experiments.fig7 import run_fig7
from repro.experiments.table3 import run_table3


@pytest.fixture(scope="module")
def fig7(scale):
    sizing = Scale(
        name=f"{scale.name}-table3",
        search_steps=scale.search_steps,
        num_repeats=scale.num_repeats,
        fig7_target_scale=max(scale.fig7_target_scale, 0.5),
    )
    return run_fig7(scale=sizing, seed=1)


def test_table3_discovered_hw(benchmark, fig7):
    result = run_once(benchmark, lambda: run_table3(fig7))
    print("\n" + result.to_markdown())
    rows = result.rows()
    assert len(rows) == 5
    # Paper shape: discovered designs use a large convolution engine.
    if fig7.cod1 is not None:
        assert fig7.cod1.config.total_conv_dsp >= 256
