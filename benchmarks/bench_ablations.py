"""A1-A3: ablations of punishment, the RL controller, and the schedule."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.ablations import (
    ablation_markdown,
    run_punishment_ablation,
    run_random_ablation,
    run_schedule_ablation,
)


def test_a1_punishment(benchmark, bundle, scale):
    rows = run_once(benchmark, lambda: run_punishment_ablation(bundle, scale))
    print("\n" + ablation_markdown(rows))
    by_variant = {r.variant: r for r in rows}
    assert set(by_variant) == {"punishment (paper)", "weak punishment"}


def test_a2_controller_vs_random(benchmark, bundle, scale):
    rows = run_once(benchmark, lambda: run_random_ablation(bundle, scale))
    print("\n" + ablation_markdown(rows))
    by_variant = {r.variant: r for r in rows}
    rl = by_variant["combined (RL)"].best_reward
    random = by_variant["random"].best_reward
    # The controller should be competitive with random at any scale
    # (and better at paper scale).
    assert rl >= random - 0.02


def test_a3_threshold_schedule(benchmark, scale):
    rows = run_once(benchmark, lambda: run_schedule_ablation(scale))
    print("\n" + ablation_markdown(rows))
    assert len(rows) == 2
    assert all(np.isfinite(r.feasible_rate) for r in rows)
