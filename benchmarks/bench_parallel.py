"""Benchmark the parallel repeat engine and the batched ask/tell path.

Runs the same repeat experiment four ways and reports a table:

1. serial backend, no cache        (the historical baseline);
2. process backend, cold cache     (fan-out speedup; verified identical);
3. serial backend, warm cache      (pointwise ask/tell loop on re-run);
4. batched ask/tell, warm cache    (rollout batches + one
                                    ``evaluate_batch`` call per batch);
5. process backend, warm cache     (fan-out throughput floor);
6. cluster backend, warm cache     (ledger-leased workers; the lease /
                                    heartbeat / record overhead must
                                    stay within 20% of run 5).

Wall-clock speedup of run 2 scales with available cores — on an N-core
machine the process backend approaches min(N, workers)x because repeats
are fully independent.  Runs 1-3 are asserted bit-identical (batch size
1 preserves the legacy RNG stream exactly); run 4 uses the documented
rollout-batch semantics, so it visits different points but must deliver
>= 2x the warm pointwise throughput (asserted at >= 200 steps or with
--assert-speedup; sub-second smoke runs only report it) — that is the
headline of the batched search engine (vectorized policy rollouts +
hash-memoized batch evaluation).

Run:  PYTHONPATH=src python benchmarks/bench_parallel.py [--workers 4]
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.scenarios import unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.common import load_bundle
from repro.experiments.search_study import make_bundle_evaluator
from repro.parallel import EvalCache
from repro.search.combined import CombinedSearch
from repro.search.runner import run_repeats
from repro.utils.tables import format_markdown


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--steps", type=int, default=600)
    parser.add_argument("--repeats", type=int, default=8)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument(
        "--assert-speedup",
        action="store_true",
        help="fail unless the batched path beats warm pointwise by >=2x "
        "(also implied at --steps >= 200, where timing is meaningful)",
    )
    parser.add_argument("--max-vertices", type=int, default=4)
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="eval-cache location (default: a fresh temp dir, i.e. cold)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the measured timings and ratios as JSON",
    )
    args = parser.parse_args()

    bundle = load_bundle(max_vertices=args.max_vertices)
    scenario = unconstrained(bundle.bounds)
    space = JointSearchSpace(cell_encoding=bundle.cell_encoding)
    kwargs = dict(
        strategy_factory=lambda seed: CombinedSearch(space, seed=seed),
        evaluator_factory=lambda: make_bundle_evaluator(bundle, scenario),
        num_steps=args.steps,
        num_repeats=args.repeats,
        master_seed=0,
    )
    cache_dir = args.cache_dir or Path(tempfile.mkdtemp(prefix="bench_parallel_"))
    cache_path = cache_dir / "eval_cache.sqlite"

    t0 = time.perf_counter()
    serial = run_repeats(**kwargs, backend="serial")
    t_serial = time.perf_counter() - t0

    cold = EvalCache(cache_path)
    t0 = time.perf_counter()
    process = run_repeats(
        **kwargs, backend="process", workers=args.workers, eval_cache=cold
    )
    t_process = time.perf_counter() - t0
    cold_stats = cold.stats

    warm = EvalCache(cache_path)
    t0 = time.perf_counter()
    rerun = run_repeats(**kwargs, backend="serial", eval_cache=warm)
    t_warm = time.perf_counter() - t0
    warm_stats = warm.stats

    batched_cache = EvalCache(cache_path)
    t0 = time.perf_counter()
    batched = run_repeats(
        **kwargs,
        backend="serial",
        eval_cache=batched_cache,
        batch_size=args.batch_size,
    )
    t_batched = time.perf_counter() - t0

    process_warm_cache = EvalCache(cache_path)
    t0 = time.perf_counter()
    process_warm = run_repeats(
        **kwargs,
        backend="process",
        workers=args.workers,
        eval_cache=process_warm_cache,
    )
    t_process_warm = time.perf_counter() - t0

    cluster_cache = EvalCache(cache_path)
    ledger_dir = Path(tempfile.mkdtemp(prefix="bench_cluster_ledger_"))
    t0 = time.perf_counter()
    cluster = run_repeats(
        **kwargs,
        backend="cluster",
        workers=args.workers,
        eval_cache=cluster_cache,
        ledger=ledger_dir / "bench.ledger",
    )
    t_cluster = time.perf_counter() - t0

    for a, b in zip(serial.results, process.results):
        assert np.array_equal(a.reward_trace(), b.reward_trace(), equal_nan=True)
    for a, b in zip(serial.results, rerun.results):
        assert np.array_equal(a.reward_trace(), b.reward_trace(), equal_nan=True)
    for a, b in zip(serial.results, process_warm.results):
        assert np.array_equal(a.reward_trace(), b.reward_trace(), equal_nan=True)
    for a, b in zip(serial.results, cluster.results):
        assert np.array_equal(a.reward_trace(), b.reward_trace(), equal_nan=True)
    assert all(len(r.archive) == args.steps for r in batched.results)

    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    print(
        f"workload: {args.repeats} repeats x {args.steps} steps "
        f"(combined strategy, micro-{args.max_vertices} space), "
        f"{args.workers} workers on {cpus} usable CPU(s)\n"
    )
    print(
        format_markdown(
            ["run", "backend", "wall_clock_s", "speedup", "cache_hit_rate"],
            [
                ("1 baseline", "serial", round(t_serial, 2), "1.00x", "-"),
                (
                    "2 fan-out (cold cache)",
                    f"process x{args.workers}",
                    round(t_process, 2),
                    f"{t_serial / t_process:.2f}x",
                    f"{100 * cold_stats['hit_rate']:.0f}%",
                ),
                (
                    "3 re-run (warm cache)",
                    "serial",
                    round(t_warm, 2),
                    f"{t_serial / t_warm:.2f}x",
                    f"{100 * warm_stats['hit_rate']:.0f}%",
                ),
                (
                    f"4 batched ask/tell (warm cache, B={args.batch_size})",
                    "serial",
                    round(t_batched, 2),
                    f"{t_serial / t_batched:.2f}x",
                    f"{100 * batched_cache.stats['hit_rate']:.0f}%",
                ),
                (
                    "5 fan-out (warm cache)",
                    f"process x{args.workers}",
                    round(t_process_warm, 2),
                    f"{t_serial / t_process_warm:.2f}x",
                    f"{100 * process_warm_cache.stats['hit_rate']:.0f}%",
                ),
                (
                    "6 cluster (warm cache)",
                    f"cluster x{args.workers}",
                    round(t_cluster, 2),
                    f"{t_serial / t_cluster:.2f}x",
                    # Hits happen inside the cluster workers' own cache
                    # connections; their counters stay worker-side.
                    "-",
                ),
            ],
        )
    )
    total_points = args.steps * args.repeats
    print(
        "\npoints/sec per backend: "
        f"serial {total_points / t_serial:.0f}, "
        f"process(warm x{args.workers}) {total_points / t_process_warm:.0f}, "
        f"cluster(warm x{args.workers}) {total_points / t_cluster:.0f}"
    )
    batched_speedup = t_warm / t_batched
    print(
        f"\nbatched vs pointwise (both warm): {batched_speedup:.2f}x throughput "
        f"({args.steps / t_batched:.0f} vs {args.steps / t_warm:.0f} points/s "
        "per repeat)"
    )
    print(
        f"cache: {warm_stats['persisted']} persisted rows at {cache_path}; "
        "runs 1-3 produced identical results (batch size 1 is exact)."
    )
    if args.json is not None:
        # Written before the speedup gates below so a failing gate still
        # leaves the measured numbers on disk for inspection.
        args.json.write_text(
            json.dumps(
                {
                    "benchmark": "bench_parallel",
                    "workload": {
                        "repeats": args.repeats,
                        "steps": args.steps,
                        "batch_size": args.batch_size,
                        "workers": args.workers,
                        "max_vertices": args.max_vertices,
                        "usable_cpus": cpus,
                    },
                    "wall_clock_s": {
                        "serial": t_serial,
                        "process_cold": t_process,
                        "serial_warm": t_warm,
                        "batched_warm": t_batched,
                        "process_warm": t_process_warm,
                        "cluster_warm": t_cluster,
                    },
                    "points_per_s": {
                        "serial": total_points / t_serial,
                        "process_warm": total_points / t_process_warm,
                        "cluster_warm": total_points / t_cluster,
                        "batched_per_repeat": args.steps / t_batched,
                        "pointwise_per_repeat": args.steps / t_warm,
                    },
                    "ratios": {
                        "batched_vs_pointwise_warm": batched_speedup,
                        "cluster_vs_process_warm": t_process_warm / t_cluster,
                    },
                    "cache": {
                        "persisted_rows": warm_stats["persisted"],
                        "cold_hit_rate": cold_stats["hit_rate"],
                        "warm_hit_rate": warm_stats["hit_rate"],
                    },
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote JSON report to {args.json}")
    if cpus < 2:
        print(
            "note: single usable CPU — process-backend speedup needs >=2 cores "
            "(expect ~min(cores, workers)x there)."
        )
    # Sub-second smoke runs (CI) report the ratio without asserting —
    # timing noise there is not a code defect.
    if args.batch_size > 1 and (args.assert_speedup or args.steps >= 200):
        assert batched_speedup >= 2.0, (
            f"batched ask/tell must be >=2x the warm pointwise path, "
            f"got {batched_speedup:.2f}x"
        )
    cluster_ratio = t_process_warm / t_cluster
    print(
        f"cluster vs process (both warm, x{args.workers}): "
        f"{cluster_ratio:.2f}x relative throughput "
        "(lease/heartbeat/record overhead budget: 0.8x)"
    )
    if cpus < 2:
        print(
            "note: single usable CPU — cluster workers cannot overlap "
            "their lease/heartbeat bookkeeping with search work, so the "
            "0.8x floor is only asserted on >=2 cores."
        )
    elif args.assert_speedup or args.steps >= 200:
        assert cluster_ratio >= 0.8, (
            f"cluster backend must stay within 20% of the warm process "
            f"backend at the same worker count, got {cluster_ratio:.2f}x"
        )


if __name__ == "__main__":
    main()
