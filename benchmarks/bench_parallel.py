"""Benchmark the parallel repeat engine: speedup + warm-cache hit rate.

Runs the same repeat experiment three ways and reports a table:

1. serial backend, no cache        (the historical baseline);
2. process backend, cold cache     (fan-out speedup; verified identical);
3. serial backend, warm cache      (persistent-cache hit rate on re-run).

Wall-clock speedup scales with available cores — on an N-core machine
the process backend approaches min(N, workers)x because repeats are
fully independent; on a single-core host it only measures pool
overhead.  Results are asserted bit-identical across all three runs.

Run:  PYTHONPATH=src python benchmarks/bench_parallel.py [--workers 4]
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.scenarios import unconstrained
from repro.core.search_space import JointSearchSpace
from repro.experiments.common import load_bundle
from repro.experiments.search_study import make_bundle_evaluator
from repro.parallel import EvalCache
from repro.search.combined import CombinedSearch
from repro.search.runner import run_repeats
from repro.utils.tables import format_markdown


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--steps", type=int, default=600)
    parser.add_argument("--repeats", type=int, default=8)
    parser.add_argument("--max-vertices", type=int, default=4)
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="eval-cache location (default: a fresh temp dir, i.e. cold)",
    )
    args = parser.parse_args()

    bundle = load_bundle(max_vertices=args.max_vertices)
    scenario = unconstrained(bundle.bounds)
    space = JointSearchSpace(cell_encoding=bundle.cell_encoding)
    kwargs = dict(
        strategy_factory=lambda seed: CombinedSearch(space, seed=seed),
        evaluator_factory=lambda: make_bundle_evaluator(bundle, scenario),
        num_steps=args.steps,
        num_repeats=args.repeats,
        master_seed=0,
    )
    cache_dir = args.cache_dir or Path(tempfile.mkdtemp(prefix="bench_parallel_"))
    cache_path = cache_dir / "eval_cache.sqlite"

    t0 = time.perf_counter()
    serial = run_repeats(**kwargs, backend="serial")
    t_serial = time.perf_counter() - t0

    cold = EvalCache(cache_path)
    t0 = time.perf_counter()
    process = run_repeats(
        **kwargs, backend="process", workers=args.workers, eval_cache=cold
    )
    t_process = time.perf_counter() - t0
    cold_stats = cold.stats

    warm = EvalCache(cache_path)
    t0 = time.perf_counter()
    rerun = run_repeats(**kwargs, backend="serial", eval_cache=warm)
    t_warm = time.perf_counter() - t0
    warm_stats = warm.stats

    for a, b in zip(serial.results, process.results):
        assert np.array_equal(a.reward_trace(), b.reward_trace(), equal_nan=True)
    for a, b in zip(serial.results, rerun.results):
        assert np.array_equal(a.reward_trace(), b.reward_trace(), equal_nan=True)

    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    print(
        f"workload: {args.repeats} repeats x {args.steps} steps "
        f"(combined strategy, micro-{args.max_vertices} space), "
        f"{args.workers} workers on {cpus} usable CPU(s)\n"
    )
    print(
        format_markdown(
            ["run", "backend", "wall_clock_s", "speedup", "cache_hit_rate"],
            [
                ("1 baseline", "serial", round(t_serial, 2), "1.00x", "-"),
                (
                    "2 fan-out (cold cache)",
                    f"process x{args.workers}",
                    round(t_process, 2),
                    f"{t_serial / t_process:.2f}x",
                    f"{100 * cold_stats['hit_rate']:.0f}%",
                ),
                (
                    "3 re-run (warm cache)",
                    "serial",
                    round(t_warm, 2),
                    f"{t_serial / t_warm:.2f}x",
                    f"{100 * warm_stats['hit_rate']:.0f}%",
                ),
            ],
        )
    )
    print(
        f"\ncache: {warm_stats['persisted']} persisted rows at {cache_path}; "
        "all three runs produced identical results."
    )
    if cpus < 2:
        print(
            "note: single usable CPU — process-backend speedup needs >=2 cores "
            "(expect ~min(cores, workers)x there)."
        )


if __name__ == "__main__":
    main()
