"""Benchmark the hardware-platform hot path: batched metric queries.

For every registered platform, measure the throughput (configurations
per second) of the two batched column-wise queries the evaluator and
the bundle builder lean on — ``batch_area_mm2`` and
``batch_network_latency_s`` — against the scalar per-config loop on a
sample, and assert the batch and scalar paths agree bit for bit on
that sample (the platform contract).

This captures the hardware side of the performance trajectory: a model
change that slows the vectorized path (or a platform whose batch
implementation quietly degrades to a python loop) shows up as a
throughput regression here before it shows up as a slow study.

Run:  PYTHONPATH=src python benchmarks/bench_platforms.py [--repeats 3]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.hw import build_platform, list_platforms
from repro.nasbench.compile import compile_cell_ops
from repro.nasbench.known_cells import resnet_cell
from repro.nasbench.skeleton import CIFAR10_SKELETON
from repro.utils.tables import format_markdown


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--scalar-sample", type=int, default=32,
                        help="configs for the scalar-loop comparison")
    args = parser.parse_args()

    ir = compile_cell_ops(resnet_cell(), CIFAR10_SKELETON)
    rows = []
    for name in list_platforms():
        platform = build_platform(name)
        space = platform.config_space()
        cols = space.columns()

        t_area = _best_of(args.repeats, lambda: platform.batch_area_mm2(cols))
        t_latency = _best_of(
            args.repeats, lambda: platform.batch_network_latency_s(ir, cols)
        )

        rng = np.random.default_rng(0)
        sample = [
            space.config_at(int(i))
            for i in rng.integers(0, space.size, args.scalar_sample)
        ]
        t_scalar = _best_of(
            args.repeats,
            lambda: [platform.network_latency_s(ir, c) for c in sample],
        )

        # The platform contract: batch == scalar, bit for bit.
        batch_area = platform.batch_area_mm2(cols)
        batch_latency = platform.batch_network_latency_s(ir, cols)
        for config in sample:
            index = space.index_of(config)
            assert batch_area[index] == platform.area_mm2(config), name
            assert batch_latency[index] == platform.network_latency_s(
                ir, config
            ), name

        batch_rate = space.size / t_latency
        scalar_rate = len(sample) / t_scalar
        rows.append(
            (
                name,
                space.size,
                f"{space.size / t_area:,.0f}",
                f"{batch_rate:,.0f}",
                f"{scalar_rate:,.0f}",
                f"{batch_rate / scalar_rate:,.1f}x",
            )
        )

    print(
        format_markdown(
            [
                "platform",
                "configs",
                "batch area cfg/s",
                "batch latency cfg/s",
                "scalar latency cfg/s",
                "batch speedup",
            ],
            rows,
        )
    )
    print("\nbatch == scalar verified on the sampled configs for every platform.")


if __name__ == "__main__":
    main()
