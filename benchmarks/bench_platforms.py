"""Benchmark the hardware-platform hot path: batched metric queries.

For every registered platform, measure the throughput (configurations
per second) of the two batched column-wise queries the evaluator and
the bundle builder lean on — ``batch_area_mm2`` and
``batch_network_latency_s`` — against the scalar per-config loop on a
sample, and assert the batch and scalar paths agree bit for bit on
that sample (the platform contract).

This captures the hardware side of the performance trajectory: a model
change that slows the vectorized path (or a platform whose batch
implementation quietly degrades to a python loop) shows up as a
throughput regression here before it shows up as a slow study.

Run:  PYTHONPATH=src python benchmarks/bench_platforms.py [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.evaluator import CodesignEvaluator
from repro.core.reward import RewardConfig
from repro.hw import TensorizedSpace, build_platform, enumerable, list_platforms
from repro.nasbench.compile import compile_cell_ops
from repro.nasbench.known_cells import resnet_cell
from repro.nasbench.skeleton import CIFAR10_SKELETON
from repro.utils.tables import format_markdown


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_tensorized(args) -> dict:
    """Full-space ``evaluate_batch`` points/sec: scalar vs tensorized.

    The headline number for the tensorized fast path: a warm
    full-space sweep through the whole evaluator (reward included),
    which is the shape every search-strategy step takes.  Both
    evaluators see the sweep once cold to populate their memos; the
    timed runs then measure the steady state a study lives in.  The
    two result sets are asserted bit-identical before timing.
    """
    spec = resnet_cell()
    rows = []
    speedups = {}
    report: dict[str, dict] = {}
    for name in list_platforms():
        platform = build_platform(name)
        if not enumerable(platform):
            print(f"skipping {name}: not enumerable")
            continue
        space = platform.config_space()
        pairs = [(spec, space.config_at(i)) for i in range(space.size)]

        scalar = CodesignEvaluator.from_surrogate(
            RewardConfig(), platform=platform
        )
        fast = CodesignEvaluator.from_surrogate(
            RewardConfig(), platform=build_platform(name)
        )
        fast.attach_tensorized(
            TensorizedSpace(fast.platform, use_disk_cache=False)
        )

        # Bit-identity gate, which doubles as the cold warm-up pass.
        scalar_results = scalar.evaluate_batch(pairs)
        fast_results = fast.evaluate_batch(pairs)
        for a, b in zip(scalar_results, fast_results):
            assert a.metrics == b.metrics, name
            assert a.reward == b.reward, name

        t_scalar = _best_of(args.repeats, lambda: scalar.evaluate_batch(pairs))
        t_fast = _best_of(args.repeats, lambda: fast.evaluate_batch(pairs))
        speedups[name] = t_scalar / t_fast
        report[name] = {
            "configs": space.size,
            "scalar_eval_pts_per_s": space.size / t_scalar,
            "tensorized_eval_pts_per_s": space.size / t_fast,
            "tensorized_speedup": speedups[name],
        }
        rows.append(
            (
                name,
                space.size,
                f"{space.size / t_scalar:,.0f}",
                f"{space.size / t_fast:,.0f}",
                f"{speedups[name]:,.1f}x",
            )
        )

    print(
        format_markdown(
            [
                "platform",
                "configs",
                "scalar eval pts/s",
                "tensorized eval pts/s",
                "tensorized speedup",
            ],
            rows,
        )
    )
    print("\ntensorized == scalar verified bit-for-bit on the full space.")
    if args.assert_min_speedup is not None:
        # The floor guards the exact models' fast path; surrogate
        # platforms' scalar path is already a cheap vectorized
        # predictor, so their tensorized headroom is small and noisy
        # (bench_surrogate.py gates their economics instead).
        exact = {
            n: s for n, s in speedups.items() if not n.startswith("surrogate:")
        }
        worst = min(exact, key=exact.get)
        assert speedups[worst] >= args.assert_min_speedup, (
            f"warm tensorized speedup {speedups[worst]:.2f}x on {worst} "
            f"below the required {args.assert_min_speedup:.1f}x floor"
        )
        print(
            f"speedup floor {args.assert_min_speedup:.1f}x met "
            f"(worst: {worst} at {speedups[worst]:.1f}x)"
        )
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--scalar-sample", type=int, default=32,
                        help="configs for the scalar-loop comparison")
    parser.add_argument("--assert-min-speedup", type=float, default=None,
                        help="fail unless every platform's warm tensorized "
                             "evaluate_batch beats scalar by this factor")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="also write the measured rates as JSON")
    args = parser.parse_args()

    ir = compile_cell_ops(resnet_cell(), CIFAR10_SKELETON)
    rows = []
    batched_report: dict[str, dict] = {}
    for name in list_platforms():
        platform = build_platform(name)
        space = platform.config_space()
        cols = space.columns()

        t_area = _best_of(args.repeats, lambda: platform.batch_area_mm2(cols))
        t_latency = _best_of(
            args.repeats, lambda: platform.batch_network_latency_s(ir, cols)
        )

        rng = np.random.default_rng(0)
        sample = [
            space.config_at(int(i))
            for i in rng.integers(0, space.size, args.scalar_sample)
        ]
        t_scalar = _best_of(
            args.repeats,
            lambda: [platform.network_latency_s(ir, c) for c in sample],
        )

        # The platform contract: batch == scalar, bit for bit.
        batch_area = platform.batch_area_mm2(cols)
        batch_latency = platform.batch_network_latency_s(ir, cols)
        for config in sample:
            index = space.index_of(config)
            assert batch_area[index] == platform.area_mm2(config), name
            assert batch_latency[index] == platform.network_latency_s(
                ir, config
            ), name

        batch_rate = space.size / t_latency
        scalar_rate = len(sample) / t_scalar
        batched_report[name] = {
            "configs": space.size,
            "batch_area_cfg_per_s": space.size / t_area,
            "batch_latency_cfg_per_s": batch_rate,
            "scalar_latency_cfg_per_s": scalar_rate,
            "batch_speedup": batch_rate / scalar_rate,
        }
        rows.append(
            (
                name,
                space.size,
                f"{space.size / t_area:,.0f}",
                f"{batch_rate:,.0f}",
                f"{scalar_rate:,.0f}",
                f"{batch_rate / scalar_rate:,.1f}x",
            )
        )

    print(
        format_markdown(
            [
                "platform",
                "configs",
                "batch area cfg/s",
                "batch latency cfg/s",
                "scalar latency cfg/s",
                "batch speedup",
            ],
            rows,
        )
    )
    print("\nbatch == scalar verified on the sampled configs for every platform.")
    print()
    tensorized_report = bench_tensorized(args)
    if args.json is not None:
        args.json.write_text(
            json.dumps(
                {
                    "benchmark": "bench_platforms",
                    "repeats": args.repeats,
                    "scalar_sample": args.scalar_sample,
                    "batched": batched_report,
                    "tensorized": tensorized_report,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote JSON report to {args.json}")


if __name__ == "__main__":
    main()
