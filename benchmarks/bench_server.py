"""Benchmark the study server against in-process execution.

Boots a :class:`StudyServer` on an ephemeral port, then reports:

1. in-process baseline      one ``run_study`` of the benchmark spec;
2. served, sequential       N submissions awaited one by one — the
                            per-study serving overhead (HTTP + queue
                            lease + runner subprocess spin-up) over
                            the baseline;
3. HTTP round-trip          median ``GET /healthz`` latency.

Every served study's outcomes are asserted identical to the
in-process baseline — serving is a transport and must never change a
result.  The queue's evaluation-cache shard makes studies after the
first start warm, so the sequential column also shows the shard doing
its job.

Run:  PYTHONPATH=src python benchmarks/bench_server.py [--studies 4]
"""

from __future__ import annotations

import argparse
import statistics
import tempfile
import time
from pathlib import Path

from repro.core.study import outcome_summary, run_study
from repro.experiments.common import Scale
from repro.experiments.presets import resolve_spec
from repro.server import StudyClient, StudyServer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--studies", type=int, default=4)
    parser.add_argument("--steps", type=int, default=20)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--state-dir", type=Path, default=None,
        help="server state location (default: a fresh temp dir)",
    )
    args = parser.parse_args()

    spec = resolve_spec("smoke").with_overrides(
        {"execution.num_steps": args.steps}
    )
    scale = Scale.named("smoke")

    t0 = time.perf_counter()
    baseline = outcome_summary(run_study(spec, scale=scale))
    t_local = time.perf_counter() - t0

    state_dir = args.state_dir or Path(tempfile.mkdtemp(prefix="bench_server_"))
    server = StudyServer(
        state_dir, port=0, workers=args.workers, scale="smoke", quiet=True
    )
    server.start()
    try:
        client = StudyClient(server.url)
        pings = []
        for _ in range(50):
            t0 = time.perf_counter()
            client.health()
            pings.append(time.perf_counter() - t0)
        t_ping_ms = statistics.median(pings) * 1e3

        served_times = []
        for _ in range(args.studies):
            t0 = time.perf_counter()
            study_id = client.submit(spec.to_dict())["id"]
            doc = client.wait(study_id, timeout=600)
            served_times.append(time.perf_counter() - t0)
            assert doc["state"] == "done", doc.get("error")
            assert doc["result"]["outcomes"] == baseline, (
                "served outcomes diverged from the in-process run"
            )
    finally:
        server.stop()

    rows = [
        ("in-process run_study", f"{t_local:.3f}", "1 study"),
        (
            "served (sequential)",
            f"{statistics.mean(served_times):.3f}",
            f"mean of {args.studies}; first {served_times[0]:.3f}, "
            f"last {served_times[-1]:.3f}",
        ),
        (
            "serving overhead",
            f"{statistics.mean(served_times) - t_local:+.3f}",
            "queue lease + runner spin-up",
        ),
        ("HTTP round-trip", f"{t_ping_ms / 1e3:.4f}", "median /healthz"),
    ]
    print(f"# Study-server benchmark ({args.steps} steps x {args.studies} studies)\n")
    print("| what | seconds | notes |")
    print("|---|---|---|")
    for name, seconds, notes in rows:
        print(f"| {name} | {seconds} | {notes} |")
    print("\nall served outcomes identical to the in-process baseline: OK")


if __name__ == "__main__":
    main()
