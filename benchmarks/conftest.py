"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints the rows it reports.  Experiment sizing follows ``REPRO_SCALE``
(smoke / default / paper); benchmarks default to *smoke* so the whole
suite completes in minutes — set ``REPRO_SCALE=paper`` for
paper-fidelity runs (10k steps x 10 repeats).
"""

from __future__ import annotations

import pytest

from repro.experiments.common import Scale, load_bundle


@pytest.fixture(scope="session")
def scale() -> Scale:
    return Scale.from_env(default="smoke")


@pytest.fixture(scope="session")
def bundle():
    """The enumerated micro joint space (disk-cached after first build)."""
    return load_bundle(max_vertices=5)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
