"""F4: enumerate the joint space and extract the Pareto frontier."""

from benchmarks.conftest import run_once
from repro.experiments.fig4 import run_fig4


def test_fig4_pareto_frontier(benchmark, bundle):
    result = run_once(benchmark, lambda: run_fig4(bundle))
    print("\n" + result.to_markdown())
    summary = result.summary()
    # Paper shapes: the frontier is a vanishing fraction of the space
    # and diverse in both the cell and the accelerator axes.
    assert summary["pareto_fraction"] < 1e-3
    assert summary["num_distinct_cells"] >= 10
    assert summary["num_distinct_configs"] >= 10
    # Three-way tradeoff: the frontier spans wide metric ranges.
    assert summary["accuracy_max"] - summary["accuracy_min"] > 2.0
    assert summary["area_mm2_max"] / summary["area_mm2_min"] > 1.5
