"""V-A / V-L: the Section II-C model-validation experiments."""

from benchmarks.conftest import run_once
from repro.experiments.validation import PAPER_VALIDATION, run_validation


def test_validation_experiments(benchmark):
    result = run_once(benchmark, run_validation)
    print("\n" + result.to_markdown())
    summary = result.summary()
    # See experiments/validation.py for the synthetic-oracle caveat.
    assert summary["area_mean_error"] < 3 * PAPER_VALIDATION["area_mean_error"]
    assert summary["latency_accuracy"] > PAPER_VALIDATION["latency_accuracy"] - 0.1
