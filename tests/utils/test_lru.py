"""Tests for the bounded LRU mapping behind the evaluator memos."""

from repro.utils.lru import LRUCache


class TestLRUCache:
    def test_acts_like_a_dict_below_capacity(self):
        cache = LRUCache(4)
        cache["a"] = 1
        cache["b"] = 2
        assert cache["a"] == 1
        assert "b" in cache
        assert cache.get("c") is None
        assert len(cache) == 2

    def test_evicts_oldest_past_capacity(self):
        cache = LRUCache(3)
        for i, key in enumerate("abcd"):
            cache[key] = i
        assert "a" not in cache
        assert list(cache) == ["b", "c", "d"]

    def test_reads_refresh_recency(self):
        cache = LRUCache(3)
        for i, key in enumerate("abc"):
            cache[key] = i
        assert cache["a"] == 0  # touch 'a' so 'b' is now oldest
        cache["d"] = 3
        assert "a" in cache
        assert "b" not in cache

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        cache.get("a")
        cache["c"] = 3
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["a"] = 2
        cache["b"] = 3
        assert len(cache) == 2
        assert cache["a"] == 2

    def test_zero_capacity_means_unbounded(self):
        cache = LRUCache(0)
        for i in range(1000):
            cache[i] = i
        assert len(cache) == 1000

    def test_negative_capacity_means_unbounded(self):
        cache = LRUCache(-5)
        for i in range(100):
            cache[i] = i
        assert len(cache) == 100

    def test_capacity_one_keeps_only_latest(self):
        cache = LRUCache(1)
        for i, key in enumerate("abc"):
            cache[key] = i
        assert list(cache.items()) == [("c", 2)]
        # Reading the sole entry keeps it resident; writing replaces it.
        assert cache["c"] == 2
        cache["d"] = 3
        assert list(cache) == ["d"]

    def test_eviction_order_under_mixed_reads_and_writes(self):
        cache = LRUCache(3)
        for i, key in enumerate("abc"):
            cache[key] = i
        cache.get("a")          # order: b, c, a
        cache["b"] = 10         # overwrite refreshes: c, a, b
        cache["d"] = 3          # evicts c: a, b, d
        assert list(cache) == ["a", "b", "d"]
        cache.get("missing")    # a miss must not disturb recency
        cache["e"] = 4          # evicts a
        assert list(cache) == ["b", "d", "e"]

    def test_setdefault_respects_capacity_and_recency(self):
        # _absorb_batch folds worker results in via setdefault; it must
        # behave exactly like a read-hit / write-miss pair.
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.setdefault("a", 99) == 1   # hit: keeps value, refreshes
        assert cache.setdefault("c", 3) == 3    # miss: inserts, evicts 'b'
        assert list(cache) == ["a", "c"]
        assert len(cache) == 2
