"""Tests for repro.utils.serialization."""

import numpy as np
import pytest

from repro.utils.serialization import dump_json, load_json, to_jsonable


class TestToJsonable:
    def test_scalars(self):
        assert to_jsonable(5) == 5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert isinstance(to_jsonable(np.float32(2.5)), float)
        assert to_jsonable(np.bool_(True)) is True

    def test_numpy_array(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_nested(self):
        obj = {"a": [np.int32(1), {"b": (2, 3)}]}
        assert to_jsonable(obj) == {"a": [1, {"b": [2, 3]}]}

    def test_to_dict_protocol(self):
        class Thing:
            def to_dict(self):
                return {"v": np.float64(1.5)}

        assert to_jsonable(Thing()) == {"v": 1.5}

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestDumpLoad:
    def test_round_trip(self, tmp_path):
        data = {"x": [1, 2.5, "s"], "y": {"z": None}}
        path = dump_json(data, tmp_path / "d.json")
        assert load_json(path) == data

    def test_sorted_keys(self, tmp_path):
        path = dump_json({"b": 1, "a": 2}, tmp_path / "d.json")
        text = path.read_text()
        assert text.index('"a"') < text.index('"b"')
