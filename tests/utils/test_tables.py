"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import (
    csv_string,
    format_ascii,
    format_float,
    format_markdown,
    write_csv,
)


class TestFormatFloat:
    def test_float_digits(self):
        assert format_float(1.23456, digits=2) == "1.23"

    def test_int_unchanged(self):
        assert format_float(42) == "42"

    def test_bool_is_not_numeric(self):
        assert format_float(True) == "True"

    def test_string_passthrough(self):
        assert format_float("n/a") == "n/a"


class TestMarkdown:
    def test_structure(self):
        table = format_markdown(["a", "b"], [(1, 2), (3, 4)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_markdown(["a"], [(1, 2)])

    def test_column_alignment(self):
        table = format_markdown(["name", "v"], [("x", 1), ("longer", 2)])
        lines = table.splitlines()
        assert len(lines[2]) == len(lines[3])


class TestAscii:
    def test_no_pipes(self):
        table = format_ascii(["a"], [(1,)])
        assert "|" not in table

    def test_row_count(self):
        assert len(format_ascii(["a"], [(1,), (2,)]).splitlines()) == 4


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = write_csv(tmp_path / "t.csv", ["x", "y"], [(1, 2), (3, 4)])
        content = path.read_text().strip().splitlines()
        assert content == ["x,y", "1,2", "3,4"]

    def test_creates_parents(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "dir" / "t.csv", ["a"], [(1,)])
        assert path.exists()

    def test_csv_string(self):
        assert csv_string(["a"], [(1,)]).strip().splitlines() == ["a", "1"]
