"""Tests for repro.utils.timing."""

from repro.utils.timing import Stopwatch, timed


class TestStopwatch:
    def test_lap_records(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        assert "a" in sw.laps
        assert sw.laps["a"] >= 0.0

    def test_laps_accumulate(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        first = sw.laps["a"]
        with sw.lap("a"):
            pass
        assert sw.laps["a"] >= first

    def test_total(self):
        sw = Stopwatch()
        with sw.lap("a"):
            pass
        with sw.lap("b"):
            pass
        assert abs(sw.total() - (sw.laps["a"] + sw.laps["b"])) < 1e-9


def test_timed_reports_elapsed():
    with timed() as elapsed:
        x = elapsed()
    assert elapsed() >= x >= 0.0
