"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, hash_seed, make_rng, spawn


class TestMakeRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1 << 30, size=5)
        b = np.random.default_rng(DEFAULT_SEED).integers(0, 1 << 30, size=5)
        assert np.array_equal(a, b)

    def test_int_seed_is_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen


class TestHashSeed:
    def test_stable_across_calls(self):
        assert hash_seed("a", 1, 2.5) == hash_seed("a", 1, 2.5)

    def test_distinguishes_parts(self):
        assert hash_seed("a", "b") != hash_seed("ab")
        assert hash_seed("a", 1) != hash_seed("a", 2)

    def test_fits_in_64_bits(self):
        assert 0 <= hash_seed("anything", 123) < 2**64

    def test_order_matters(self):
        assert hash_seed("x", "y") != hash_seed("y", "x")


class TestSpawn:
    def test_children_are_independent(self):
        children = spawn(make_rng(0), 3)
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_deterministic(self):
        a = [g.random() for g in spawn(make_rng(5), 4)]
        b = [g.random() for g in spawn(make_rng(5), 4)]
        assert a == b

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)

    def test_zero_children(self):
        assert spawn(make_rng(0), 0) == []
