"""Tests for the Pareto machinery against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import (
    pareto_mask_2d,
    pareto_mask_3d,
    product_space_pareto,
)


def brute_force_mask(points: np.ndarray) -> np.ndarray:
    n = len(points)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if np.all(points[j] >= points[i]) and np.any(points[j] > points[i]):
                mask[i] = False
                break
    return mask


class TestPareto2D:
    def test_simple(self):
        xs = np.array([1.0, 2.0, 3.0])
        ys = np.array([3.0, 2.0, 1.0])
        assert pareto_mask_2d(xs, ys).all()

    def test_dominated_removed(self):
        xs = np.array([1.0, 2.0])
        ys = np.array([1.0, 2.0])
        assert list(pareto_mask_2d(xs, ys)) == [False, True]

    def test_duplicates_kept(self):
        xs = np.array([2.0, 2.0, 1.0])
        ys = np.array([2.0, 2.0, 1.0])
        assert list(pareto_mask_2d(xs, ys)) == [True, True, False]

    def test_empty(self):
        assert pareto_mask_2d(np.array([]), np.array([])).shape == (0,)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=40))
    def test_matches_brute_force(self, pairs):
        points = np.array(pairs, dtype=float)
        expected = brute_force_mask(np.column_stack([points[:, 0], points[:, 1], np.zeros(len(points))]))
        got = pareto_mask_2d(points[:, 0], points[:, 1])
        assert np.array_equal(got, expected)


class TestPareto3D:
    def test_known_front(self):
        points = np.array(
            [[1, 1, 1], [2, 0, 0], [0, 2, 0], [0, 0, 2], [0.5, 0.5, 0.5]]
        )
        mask = pareto_mask_3d(points)
        assert list(mask) == [True, True, True, True, False]

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            pareto_mask_3d(np.zeros((3, 2)))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
            min_size=1,
            max_size=50,
        )
    )
    def test_matches_brute_force(self, triples):
        points = np.array(triples, dtype=float)
        assert np.array_equal(pareto_mask_3d(points), brute_force_mask(points))

    def test_random_floats_match_brute_force(self, rng):
        points = rng.random((200, 3))
        assert np.array_equal(pareto_mask_3d(points), brute_force_mask(points))

    def test_duplicates_survive_together(self):
        points = np.array([[1.0, 2.0, 3.0], [1.0, 2.0, 3.0], [0.5, 0.5, 0.5]])
        assert list(pareto_mask_3d(points)) == [True, True, False]


class TestProductSpacePareto:
    def _brute(self, acc, area, lat):
        rows = []
        for i in range(len(acc)):
            for h in range(len(area)):
                rows.append((-area[h], -lat[i, h], acc[i], i, h))
        points = np.array([(r[0], r[1], r[2]) for r in rows])
        mask = brute_force_mask(points)
        return {(rows[k][3], rows[k][4]) for k in range(len(rows)) if mask[k]}

    def test_matches_brute_force_random(self, rng):
        acc = rng.uniform(80, 95, size=12)
        area = rng.uniform(50, 200, size=9)
        lat = rng.uniform(5, 400, size=(12, 9))
        front = product_space_pareto(acc, area, lat)
        got = set(zip(front.cell_indices.tolist(), front.config_indices.tolist()))
        assert got == self._brute(acc, area, lat)

    def test_structure_correlated_latency(self, rng):
        """Latency correlated with accuracy (real spaces look like this)."""
        acc = np.sort(rng.uniform(85, 95, size=15))
        area = np.sort(rng.uniform(50, 200, size=8))
        lat = np.outer(acc - 80, 1.0 / np.sqrt(area / 50)) + rng.uniform(0, 1, (15, 8))
        front = product_space_pareto(acc, area, lat)
        assert front.num_points == len(self._brute(acc, area, lat))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            product_space_pareto(np.ones(3), np.ones(4), np.ones((3, 5)))

    def test_result_accessors(self, rng):
        acc = rng.uniform(80, 95, size=6)
        area = rng.uniform(50, 200, size=5)
        lat = rng.uniform(5, 400, size=(6, 5))
        front = product_space_pareto(acc, area, lat)
        assert front.num_points == len(front.accuracy)
        assert front.num_distinct_cells() <= front.num_points
        assert front.objective_matrix().shape == (front.num_points, 3)

    def test_front_dominates_space(self, micro4_bundle):
        """No enumerated pair strictly dominates any frontier point."""
        b = micro4_bundle
        front = product_space_pareto(b.accuracy, b.area_mm2, b.latency_ms)
        # Spot-check 50 random frontier points against the whole space.
        gen = np.random.default_rng(1)
        idx = gen.integers(0, front.num_points, size=min(50, front.num_points))
        for k in idx:
            acc, lat, area = front.accuracy[k], front.latency_ms[k], front.area_mm2[k]
            better_acc = b.accuracy[:, None] >= acc
            better_lat = b.latency_ms <= lat
            better_area = (b.area_mm2 <= area)[None, :]
            strictly = (
                (b.accuracy[:, None] > acc)
                | (b.latency_ms < lat)
                | (b.area_mm2 < area)[None, :]
            )
            dominating = better_acc & better_lat & better_area & strictly
            assert not dominating.any()
