"""Tests for metrics and the perf/area arithmetic."""

import numpy as np
import pytest

from repro.core.metrics import METRIC_NAMES, Metrics, perf_per_area


class TestPerfPerArea:
    def test_reproduces_table2_resnet_row(self):
        """Paper Table II: 42.0 ms on 186 mm2 -> 12.8 img/s/cm2."""
        assert perf_per_area(0.042, 186.0) == pytest.approx(12.8, abs=0.05)

    def test_reproduces_table2_googlenet_row(self):
        """Paper Table II: 19.3 ms on 132 mm2 -> 39.3 img/s/cm2."""
        assert perf_per_area(0.0193, 132.0) == pytest.approx(39.3, abs=0.1)

    def test_vectorized(self):
        out = perf_per_area(np.array([0.042, 0.0193]), np.array([186.0, 132.0]))
        assert out.shape == (2,)


class TestMetrics:
    def test_properties(self):
        m = Metrics(accuracy=93.0, latency_s=0.02, area_mm2=100.0)
        assert m.latency_ms == 20.0
        assert m.perf_per_area == pytest.approx(50.0)

    def test_objective_vector_signs(self):
        m = Metrics(accuracy=93.0, latency_s=0.02, area_mm2=100.0)
        vec = m.objective_vector()
        assert vec[0] == -100.0
        assert vec[1] == -20.0
        assert vec[2] == 93.0
        assert len(vec) == len(METRIC_NAMES)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Metrics(accuracy=90.0, latency_s=0.0, area_mm2=100.0)
        with pytest.raises(ValueError):
            Metrics(accuracy=90.0, latency_s=0.01, area_mm2=-1.0)

    def test_to_dict_keys(self):
        d = Metrics(accuracy=90.0, latency_s=0.01, area_mm2=80.0).to_dict()
        assert set(d) == {"accuracy", "latency_ms", "area_mm2", "perf_per_area"}
