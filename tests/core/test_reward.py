"""Tests for the MOO reward (Eq. 3) and punishment Rv."""

import numpy as np
import pytest

from repro.core.metrics import Metrics
from repro.core.reward import (
    Constraints,
    MetricBounds,
    RewardConfig,
    RewardFunction,
)

BOUNDS = MetricBounds(area_mm2=(50, 200), latency_ms=(10, 400), accuracy=(85, 95))


def metrics(acc=90.0, lat_ms=100.0, area=100.0):
    return Metrics(accuracy=acc, latency_s=lat_ms / 1e3, area_mm2=area)


class TestNormalization:
    def test_midpoints(self):
        n = BOUNDS.normalize(metrics(acc=90.0, lat_ms=205.0, area=125.0))
        assert n[0] == pytest.approx(0.5)
        assert n[1] == pytest.approx(0.5)
        assert n[2] == pytest.approx(0.5)

    def test_costs_invert(self):
        best = BOUNDS.normalize(metrics(lat_ms=10.0, area=50.0, acc=95.0))
        assert np.allclose(best, 1.0)

    def test_clipping(self):
        n = BOUNDS.normalize(metrics(lat_ms=1000.0, area=500.0, acc=50.0))
        assert np.allclose(n, 0.0)

    def test_from_arrays(self):
        b = MetricBounds.from_arrays(
            np.array([60.0, 180.0]), np.array([20.0, 300.0]), np.array([88.0, 94.0])
        )
        assert b.area_mm2 == (60.0, 180.0)
        assert b.latency_ms == (20.0, 300.0)
        assert b.accuracy == (88.0, 94.0)


class TestConstraints:
    def test_no_constraints_always_satisfied(self):
        assert Constraints().satisfied(metrics())

    def test_each_kind_of_violation(self):
        c = Constraints(
            max_area_mm2=90.0,
            max_latency_ms=50.0,
            min_accuracy=92.0,
            min_perf_per_area=100.0,
        )
        v = c.violations(metrics(acc=90.0, lat_ms=100.0, area=100.0))
        assert set(v) == {"area", "latency", "accuracy", "perf_per_area"}
        assert all(x > 0 for x in v.values())

    def test_violation_magnitude_scales(self):
        c = Constraints(max_latency_ms=100.0)
        small = c.violations(metrics(lat_ms=110.0))["latency"]
        large = c.violations(metrics(lat_ms=200.0))["latency"]
        assert large > small

    def test_boundary_is_feasible(self):
        c = Constraints(max_latency_ms=100.0)
        assert c.satisfied(metrics(lat_ms=100.0))


class TestRewardFunction:
    def test_weighted_sum(self):
        cfg = RewardConfig(weights=(0.1, 0.8, 0.1), bounds=BOUNDS)
        result = RewardFunction(cfg)(metrics(acc=90.0, lat_ms=205.0, area=125.0))
        assert result.feasible and result.valid
        assert result.value == pytest.approx(0.5)

    def test_infeasible_gets_punishment(self):
        cfg = RewardConfig(
            weights=(0, 1, 0),
            constraints=Constraints(max_latency_ms=50.0),
            bounds=BOUNDS,
        )
        result = RewardFunction(cfg)(metrics(lat_ms=100.0))
        assert not result.feasible
        assert result.valid
        assert result.value < 0
        assert "latency" in result.violations

    def test_punishment_scales_with_distance(self):
        cfg = RewardConfig(constraints=Constraints(max_latency_ms=50.0), bounds=BOUNDS)
        fn = RewardFunction(cfg)
        near = fn(metrics(lat_ms=55.0)).value
        far = fn(metrics(lat_ms=300.0)).value
        assert far < near < 0

    def test_punishment_capped(self):
        cfg = RewardConfig(constraints=Constraints(max_latency_ms=1.0), bounds=BOUNDS)
        assert RewardFunction(cfg)(metrics(lat_ms=400.0)).value >= -1.0

    def test_invalid_spec_maximal_punishment(self):
        cfg = RewardConfig(bounds=BOUNDS, punishment_scale=0.7)
        result = RewardFunction(cfg)(None)
        assert not result.valid
        assert result.value == pytest.approx(-0.7)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            RewardConfig(weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            RewardConfig(weights=(-0.1, 0.6, 0.5))


class TestRewardArray:
    def test_matches_scalar_on_feasible(self):
        cfg = RewardConfig(weights=(0.2, 0.3, 0.5), bounds=BOUNDS)
        fn = RewardFunction(cfg)
        m = metrics(acc=91.0, lat_ms=120.0, area=140.0)
        array = fn.reward_array(
            np.array([m.area_mm2]), np.array([m.latency_ms]), np.array([m.accuracy])
        )
        assert array[0] == pytest.approx(fn(m).value)

    def test_nan_on_infeasible(self):
        cfg = RewardConfig(constraints=Constraints(min_accuracy=92.0), bounds=BOUNDS)
        fn = RewardFunction(cfg)
        array = fn.reward_array(
            np.array([100.0, 100.0]),
            np.array([50.0, 50.0]),
            np.array([91.0, 93.0]),
        )
        assert np.isnan(array[0])
        assert not np.isnan(array[1])

    def test_perf_per_area_constraint(self):
        cfg = RewardConfig(
            constraints=Constraints(min_perf_per_area=50.0), bounds=BOUNDS
        )
        fn = RewardFunction(cfg)
        # 20ms on 100mm2 -> 50 img/s/cm2 (boundary feasible).
        array = fn.reward_array(
            np.array([100.0, 100.0]), np.array([20.0, 40.0]), np.array([90.0, 90.0])
        )
        assert not np.isnan(array[0])
        assert np.isnan(array[1])
