"""Tests for the search archive."""

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.core.archive import SearchArchive
from repro.core.evaluator import CodesignEvaluator
from repro.core.scenarios import one_constraint, unconstrained
from repro.nasbench.known_cells import googlenet_cell, resnet_cell
from repro.nasbench.model_spec import ModelSpec
from repro.nasbench.ops import CONV3X3, INPUT, OUTPUT


@pytest.fixture
def evaluator():
    return CodesignEvaluator.from_surrogate(unconstrained())


def record_pair(archive, evaluator, spec, config, phase=""):
    return archive.record(evaluator.evaluate(spec, config), phase=phase)


class TestRecording:
    def test_steps_number_sequentially(self, evaluator, default_config):
        archive = SearchArchive()
        record_pair(archive, evaluator, resnet_cell(), default_config)
        record_pair(archive, evaluator, googlenet_cell(), default_config)
        assert [e.step for e in archive.entries] == [0, 1]
        assert len(archive) == 2

    def test_counts(self, evaluator, default_config):
        archive = SearchArchive()
        record_pair(archive, evaluator, resnet_cell(), default_config)
        bad = ModelSpec(np.zeros((3, 3), dtype=int), (INPUT, CONV3X3, OUTPUT))
        record_pair(archive, evaluator, bad, default_config)
        assert archive.num_valid == 1
        assert archive.num_feasible == 1

    def test_phase_tag(self, evaluator, default_config):
        archive = SearchArchive()
        entry = record_pair(archive, evaluator, resnet_cell(), default_config, phase="cnn-0")
        assert entry.phase == "cnn-0"


class TestBestAndTopK:
    def test_best_is_max_reward(self, evaluator):
        archive = SearchArchive()
        a = record_pair(archive, evaluator, resnet_cell(), AcceleratorConfig(pixel_par=4))
        b = record_pair(archive, evaluator, resnet_cell(), AcceleratorConfig(pixel_par=64))
        assert archive.best().reward == max(a.reward, b.reward)

    def test_best_none_when_all_infeasible(self, default_config):
        evaluator = CodesignEvaluator.from_surrogate(one_constraint())
        archive = SearchArchive()
        # ResNet on the smallest engine blows the 100ms constraint.
        record_pair(archive, evaluator, resnet_cell(),
                    AcceleratorConfig(filter_par=8, pixel_par=4))
        assert archive.best() is None

    def test_top_k_dedupes_pairs(self, evaluator, default_config):
        archive = SearchArchive()
        for _ in range(3):
            record_pair(archive, evaluator, resnet_cell(), default_config)
        record_pair(archive, evaluator, googlenet_cell(), default_config)
        top = archive.top_k(10)
        assert len(top) == 2

    def test_top_k_without_dedupe(self, evaluator, default_config):
        archive = SearchArchive()
        for _ in range(3):
            record_pair(archive, evaluator, resnet_cell(), default_config)
        assert len(archive.top_k(10, dedupe=False)) == 3

    def test_top_k_sorted(self, evaluator):
        archive = SearchArchive()
        for pp in (4, 16, 64):
            record_pair(archive, evaluator, resnet_cell(), AcceleratorConfig(pixel_par=pp))
        rewards = [e.reward for e in archive.top_k(3)]
        assert rewards == sorted(rewards, reverse=True)


class TestTraces:
    def test_reward_trace_length(self, evaluator, default_config):
        archive = SearchArchive()
        record_pair(archive, evaluator, resnet_cell(), default_config)
        assert archive.reward_trace().shape == (1,)

    def test_best_so_far_monotone(self, evaluator):
        archive = SearchArchive()
        for pp in (4, 64, 16):
            record_pair(archive, evaluator, resnet_cell(), AcceleratorConfig(pixel_par=pp))
        trace = archive.best_so_far_trace()
        assert np.all(np.diff(trace[~np.isnan(trace)]) >= 0)

    def test_nan_before_first_feasible(self, default_config):
        evaluator = CodesignEvaluator.from_surrogate(one_constraint())
        archive = SearchArchive()
        record_pair(archive, evaluator, resnet_cell(),
                    AcceleratorConfig(filter_par=8, pixel_par=4))
        record_pair(archive, evaluator, resnet_cell(),
                    AcceleratorConfig(filter_par=16, pixel_par=64))
        trace = archive.best_so_far_trace()
        assert np.isnan(trace[0])
        assert not np.isnan(trace[1])

    def test_distinct_pairs(self, evaluator, default_config):
        archive = SearchArchive()
        record_pair(archive, evaluator, resnet_cell(), default_config)
        record_pair(archive, evaluator, resnet_cell(), default_config)
        record_pair(archive, evaluator, googlenet_cell(), default_config)
        assert archive.distinct_pairs() == 2
