"""Tests for the paper's reward scenarios."""

import pytest

from repro.core.scenarios import (
    CIFAR100_THRESHOLD_SCHEDULE,
    PAPER_SCENARIOS,
    cifar100_threshold,
    one_constraint,
    two_constraints,
    unconstrained,
)


class TestScenarioDefinitions:
    def test_unconstrained_weights(self):
        cfg = unconstrained()
        assert cfg.weights == (0.1, 0.8, 0.1)
        assert cfg.constraints.max_latency_ms is None

    def test_one_constraint(self):
        cfg = one_constraint()
        assert cfg.weights == (0.1, 0.0, 0.9)
        assert cfg.constraints.max_latency_ms == 100.0

    def test_two_constraints(self):
        cfg = two_constraints()
        assert cfg.weights == (0.0, 1.0, 0.0)
        assert cfg.constraints.max_area_mm2 == 100.0
        assert cfg.constraints.min_accuracy == 92.0

    def test_registry_complete(self):
        assert set(PAPER_SCENARIOS) == {"unconstrained", "1-constraint", "2-constraints"}
        for factory in PAPER_SCENARIOS.values():
            factory()

    def test_threshold_schedule_matches_paper(self):
        assert CIFAR100_THRESHOLD_SCHEDULE == (2.0, 8.0, 16.0, 30.0, 40.0)

    def test_cifar100_scenario(self):
        cfg = cifar100_threshold(16.0)
        assert cfg.constraints.min_perf_per_area == 16.0
        assert cfg.weights == (0.0, 0.0, 1.0)
        assert "16" in cfg.name
