"""Tests for the paper's reward scenarios and the scenario registry."""

import json

import numpy as np
import pytest

from repro.core.metrics import Metrics
from repro.core.reward import Constraints, MetricBounds, RewardConfig, RewardFunction
from repro.core.scenarios import (
    CIFAR100_THRESHOLD_SCHEDULE,
    PAPER_SCENARIOS,
    ScenarioError,
    cifar100_threshold,
    get_scenario,
    get_scenario_builder,
    list_scenarios,
    load_scenario_file,
    make_scenario,
    one_constraint,
    register_scenario,
    resolve_scenarios,
    scenario_from_dict,
    scenario_to_dict,
    two_constraints,
    unconstrained,
)


def random_scenario(rng: np.random.Generator, index: int) -> RewardConfig:
    """A random-but-valid scenario (property-test generator)."""
    weights = rng.random(3)
    constraints = {}
    if rng.random() < 0.5:
        constraints["max_area_mm2"] = float(rng.uniform(60, 200))
    if rng.random() < 0.5:
        constraints["max_latency_ms"] = float(rng.uniform(10, 300))
    if rng.random() < 0.5:
        constraints["min_accuracy"] = float(rng.uniform(85, 95))
    if rng.random() < 0.5:
        constraints["min_perf_per_area"] = float(rng.uniform(1, 40))
    lo_a, hi_a = sorted(rng.uniform(40, 220, 2))
    return make_scenario(
        name=f"prop-{index}",
        weights=tuple(float(w) for w in weights),
        bounds=MetricBounds(
            area_mm2=(float(lo_a), float(hi_a) + 1.0),
            latency_ms=(5.0, float(rng.uniform(100, 500))),
            accuracy=(80.0, float(rng.uniform(90, 99))),
        ),
        punishment_scale=float(rng.uniform(0.2, 3.0)),
        **constraints,
    )


class TestScenarioDefinitions:
    def test_unconstrained_weights(self):
        cfg = unconstrained()
        assert cfg.weights == (0.1, 0.8, 0.1)
        assert cfg.constraints.max_latency_ms is None

    def test_one_constraint(self):
        cfg = one_constraint()
        assert cfg.weights == (0.1, 0.0, 0.9)
        assert cfg.constraints.max_latency_ms == 100.0

    def test_two_constraints(self):
        cfg = two_constraints()
        assert cfg.weights == (0.0, 1.0, 0.0)
        assert cfg.constraints.max_area_mm2 == 100.0
        assert cfg.constraints.min_accuracy == 92.0

    def test_registry_complete(self):
        assert set(PAPER_SCENARIOS) == {"unconstrained", "1-constraint", "2-constraints"}
        for factory in PAPER_SCENARIOS.values():
            factory()

    def test_threshold_schedule_matches_paper(self):
        assert CIFAR100_THRESHOLD_SCHEDULE == (2.0, 8.0, 16.0, 30.0, 40.0)

    def test_cifar100_scenario(self):
        cfg = cifar100_threshold(16.0)
        assert cfg.constraints.min_perf_per_area == 16.0
        assert cfg.weights == (0.0, 0.0, 1.0)
        assert "16" in cfg.name


class TestRegistry:
    def test_paper_scenarios_registered(self):
        names = list_scenarios()
        assert {"unconstrained", "1-constraint", "2-constraints"} <= set(names)
        for threshold in CIFAR100_THRESHOLD_SCHEDULE:
            assert f"perf-area>={threshold:g}" in names

    def test_get_scenario_applies_bounds(self):
        bounds = MetricBounds(area_mm2=(10.0, 20.0))
        cfg = get_scenario("unconstrained", bounds)
        assert cfg.bounds.area_mm2 == (10.0, 20.0)
        assert cfg == unconstrained(bounds)

    def test_parametric_threshold_family(self):
        cfg = get_scenario("perf-area>=12.5")
        assert cfg.constraints.min_perf_per_area == 12.5
        assert cfg == cifar100_threshold(12.5)

    def test_malformed_parametric_name(self):
        with pytest.raises(ScenarioError, match="malformed parametric"):
            get_scenario_builder("perf-area>=fast")

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ScenarioError, match="unconstrained"):
            get_scenario("not-a-scenario")

    def test_register_decorator_and_duplicate_rejection(self):
        name = "test-registry-entry"
        try:
            @register_scenario(name)
            def tiny(bounds=None):
                return make_scenario(name, (1.0, 0.0, 0.0), bounds)

            assert get_scenario(name).name == name
            with pytest.raises(ScenarioError, match="already registered"):
                register_scenario(name, tiny)
            register_scenario(name, tiny, overwrite=True)  # explicit wins
        finally:
            from repro.core import scenarios as S
            S._REGISTRY.pop(name, None)

    def test_resolve_scenarios_defaults_to_paper(self):
        assert set(resolve_scenarios()) == set(PAPER_SCENARIOS)

    def test_resolve_scenarios_by_name(self):
        table = resolve_scenarios(["unconstrained", "perf-area>=4"])
        assert set(table) == {"unconstrained", "perf-area>=4"}
        assert table["perf-area>=4"]().constraints.min_perf_per_area == 4.0


class TestJsonRoundTrip:
    def test_every_registered_scenario_round_trips(self):
        bounds = MetricBounds(area_mm2=(45.0, 250.0))
        for name in list_scenarios():
            config = get_scenario(name, bounds)
            spec = scenario_to_dict(config)
            rebuilt = scenario_from_dict(json.loads(json.dumps(spec)))
            assert rebuilt == config, name

    def test_random_scenarios_round_trip(self):
        """Property: any valid config survives dict -> JSON -> dict."""
        rng = np.random.default_rng(7)
        for i in range(50):
            config = random_scenario(rng, i)
            spec = json.loads(json.dumps(scenario_to_dict(config)))
            assert scenario_from_dict(spec) == config

    def test_omitted_bounds_fall_back_to_caller(self):
        spec = {"name": "lean", "weights": [0, 1, 0]}
        bounds = MetricBounds(latency_ms=(1.0, 50.0))
        cfg = scenario_from_dict(spec, bounds)
        assert cfg.bounds.latency_ms == (1.0, 50.0)

    def test_partial_bounds_merge_with_caller(self):
        spec = {"name": "lean", "weights": [0, 1, 0], "bounds": {"accuracy": [70, 99]}}
        bounds = MetricBounds(latency_ms=(1.0, 50.0))
        cfg = scenario_from_dict(spec, bounds)
        assert cfg.bounds.accuracy == (70.0, 99.0)
        assert cfg.bounds.latency_ms == (1.0, 50.0)


class TestMalformedSpecs:
    @pytest.mark.parametrize(
        "spec, message",
        [
            ("not a dict", "must be a mapping"),
            ({}, "non-empty string 'name'"),
            ({"name": "x"}, "'weights' must be three numbers"),
            ({"name": "x", "weights": [1, 2]}, "'weights' must be three numbers"),
            ({"name": "x", "weights": [1, 2, "a"]}, "must be a number"),
            ({"name": "x", "weights": [1, -1, 0]}, "non-negative"),
            ({"name": "x", "weights": [1, 0, 0], "constraints": {"max_flops": 1}}, "unknown constraint"),
            ({"name": "x", "weights": [1, 0, 0], "constraints": {"max_area_mm2": -5}}, "must be positive"),
            ({"name": "x", "weights": [1, 0, 0], "constraints": []}, "'constraints' must be a mapping"),
            ({"name": "x", "weights": [1, 0, 0], "bounds": {"area_mm2": [5]}}, r"must be \[lo, hi\]"),
            ({"name": "x", "weights": [1, 0, 0], "bounds": {"area_mm2": [9, 9]}}, "lo < hi"),
            ({"name": "x", "weights": [1, 0, 0], "bounds": {"speed": [1, 2]}}, "unknown bound"),
            ({"name": "x", "weights": [1, 0, 0], "punishment_scale": 0}, "punishment_scale must be positive"),
            ({"name": "x", "weights": [1, 0, 0], "reward": "big"}, "unknown scenario spec field"),
            ({"name": "x", "weights": [True, 0, 0]}, "must be a number"),
        ],
    )
    def test_rejected_with_clear_error(self, spec, message):
        with pytest.raises(ScenarioError, match=message):
            scenario_from_dict(spec)


class TestScenarioFiles:
    def test_single_spec_and_list(self, tmp_path):
        single = tmp_path / "one.json"
        single.write_text(json.dumps({"name": "a", "weights": [1, 0, 0]}))
        assert set(load_scenario_file(single)) == {"a"}
        multi = tmp_path / "many.json"
        multi.write_text(json.dumps([
            {"name": "a", "weights": [1, 0, 0]},
            {"name": "b", "weights": [0, 1, 0], "constraints": {"max_latency_ms": 30}},
        ]))
        table = resolve_scenarios(scenario_file=multi)
        assert set(table) == {"a", "b"}
        assert table["b"]().constraints.max_latency_ms == 30.0

    def test_file_builders_accept_bounds(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"name": "a", "weights": [1, 0, 0]}))
        bounds = MetricBounds(area_mm2=(1.0, 2.0))
        assert load_scenario_file(path)["a"](bounds).bounds.area_mm2 == (1.0, 2.0)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="not found"):
            load_scenario_file(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_scenario_file(path)

    def test_duplicate_names_rejected(self, tmp_path):
        path = tmp_path / "dup.json"
        path.write_text(json.dumps([
            {"name": "a", "weights": [1, 0, 0]},
            {"name": "a", "weights": [0, 1, 0]},
        ]))
        with pytest.raises(ScenarioError, match="twice"):
            load_scenario_file(path)

    def test_name_and_file_collision_rejected(self, tmp_path):
        path = tmp_path / "clash.json"
        path.write_text(json.dumps({"name": "unconstrained", "weights": [1, 0, 0]}))
        with pytest.raises(ScenarioError, match="selected by name AND defined"):
            resolve_scenarios(["unconstrained"], path)


class TestNanMaskingProperty:
    """reward_array is NaN exactly on infeasible metric vectors."""

    def test_nan_mask_matches_constraints(self):
        rng = np.random.default_rng(11)
        for i in range(25):
            config = random_scenario(rng, i)
            reward_fn = RewardFunction(config)
            n = 200
            area = rng.uniform(20, 260, n)
            latency = rng.uniform(1, 500, n)
            accuracy = rng.uniform(70, 99, n)
            rewards = reward_fn.reward_array(area, latency, accuracy)
            for k in range(n):
                metrics = Metrics(
                    accuracy=float(accuracy[k]),
                    latency_s=float(latency[k]) / 1e3,
                    area_mm2=float(area[k]),
                )
                feasible = config.constraints.satisfied(metrics)
                assert np.isnan(rewards[k]) == (not feasible), (
                    f"scenario {config.name}: NaN mask diverged from "
                    f"constraint feasibility at point {k}"
                )
                if feasible:
                    scalar = reward_fn(metrics)
                    assert scalar.feasible
                    assert rewards[k] == pytest.approx(scalar.value, rel=1e-12)
