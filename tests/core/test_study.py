"""Tests for the declarative study API (StudySpec + run_study)."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.scenarios import unconstrained
from repro.core.search_space import JointSearchSpace
from repro.core.study import (
    EvaluatorSpec,
    ExecutionSpec,
    StrategySpec,
    StudyError,
    StudySpec,
    build_study,
    parse_assignments,
    replace_execution,
    run_study,
)
from repro.experiments.common import Scale
from repro.experiments.presets import get_preset, list_presets, resolve_spec
from repro.experiments.search_study import make_bundle_evaluator
from repro.parallel.ledger import LedgerError
from repro.search.combined import CombinedSearch
from repro.search.runner import RepeatJob, run_grid

TINY = Scale(name="tiny", search_steps=25, num_repeats=2, fig7_target_scale=0.05)

REPO_ROOT = Path(__file__).resolve().parents[2]


def tiny_spec(**execution) -> StudySpec:
    execution = {"num_steps": 10, "num_repeats": 1, **execution}
    return StudySpec(
        name="tiny",
        strategies=({"name": "random"},),
        scenarios=("unconstrained",),
        evaluator={"source": "surrogate"},
        execution=execution,
    )


class TestRoundTrips:
    @pytest.mark.parametrize("preset", [
        "search-study", "fig5", "fig6", "fig7", "table2", "table3",
        "ablation-punishment", "ablation-random", "smoke", "hw-sweep",
        "bert-u50",
    ])
    def test_preset_round_trips(self, preset):
        spec = get_preset(preset)
        assert StudySpec.from_dict(spec.to_dict()) == spec
        assert StudySpec.from_json(spec.to_json()) == spec
        # to_dict must be pure JSON (no tuples / numpy scalars).
        json.dumps(spec.to_dict())

    def test_parametrized_presets_cover_all_shipped(self):
        assert set(list_presets()) == {
            "search-study", "fig5", "fig6", "fig7", "table2", "table3",
            "ablation-punishment", "ablation-random", "smoke", "hw-sweep",
            "bert-u50",
        }

    def test_round_trip_with_inline_scenarios_and_params(self):
        spec = StudySpec(
            name="custom",
            strategies=(
                {"name": "evolution", "params": {"population_size": 8}},
                {"name": "evolution", "params": {"population_size": 4},
                 "label": "evolution-small"},
            ),
            scenarios=(
                "perf-area>=16",
                {"name": "edge", "weights": [0.2, 0.6, 0.2],
                 "constraints": {"max_area_mm2": 120.0}},
            ),
            evaluator={"source": "surrogate", "params": {"seed": 9}},
            execution={"num_steps": 50, "batch_size": 4},
        )
        assert StudySpec.from_dict(json.loads(spec.to_json())) == spec

    def test_file_round_trip(self, tmp_path):
        spec = get_preset("smoke")
        path = tmp_path / "smoke.json"
        path.write_text(spec.to_json())
        assert StudySpec.from_file(path) == spec

    def test_shipped_example_matches_fig5_preset(self):
        example = REPO_ROOT / "examples" / "study_fig5.json"
        assert StudySpec.from_file(example) == get_preset("fig5")


class TestValidation:
    def base(self) -> dict:
        return {
            "name": "x",
            "strategies": [{"name": "random"}],
            "scenarios": ["unconstrained"],
        }

    def test_unknown_strategy_name(self):
        data = self.base()
        data["strategies"] = [{"name": "gradient-descent"}]
        with pytest.raises(StudyError, match="unknown strategy 'gradient-descent'"):
            StudySpec.from_dict(data)

    def test_unknown_strategy_param(self):
        data = self.base()
        data["strategies"] = [{"name": "evolution", "params": {"popsize": 3}}]
        with pytest.raises(StudyError, match="popsize"):
            StudySpec.from_dict(data)

    def test_bad_param_type_raises_at_build(self):
        data = self.base()
        data["strategies"] = [
            {"name": "evolution", "params": {"population_size": "big"}}
        ]
        spec = StudySpec.from_dict(data)  # names are fine...
        with pytest.raises(Exception, match="population_size|'<'"):
            build_study(
                replace_execution(spec, num_steps=5, num_repeats=1),
                scale=TINY,
            ).jobs[0].strategy_factory(0)

    def test_unknown_scenario_name(self):
        data = self.base()
        data["scenarios"] = ["zero-latency"]
        with pytest.raises(StudyError, match="unknown scenario 'zero-latency'"):
            StudySpec.from_dict(data)

    def test_malformed_inline_scenario(self):
        data = self.base()
        data["scenarios"] = [{"name": "bad", "weights": [1.0]}]
        with pytest.raises(StudyError, match="weights"):
            StudySpec.from_dict(data)

    def test_conflicting_scenario_refs(self):
        data = self.base()
        data["scenarios"] = [
            "unconstrained",
            {"name": "unconstrained", "weights": [1.0, 0.0, 0.0]},
        ]
        with pytest.raises(StudyError, match="referenced more than once"):
            StudySpec.from_dict(data)

    def test_duplicate_strategy_labels(self):
        data = self.base()
        data["strategies"] = [{"name": "random"}, {"name": "random"}]
        with pytest.raises(StudyError, match="duplicate strategy label"):
            StudySpec.from_dict(data)

    def test_unknown_accuracy_source(self):
        data = self.base()
        data["evaluator"] = {"source": "oracle"}
        with pytest.raises(StudyError, match="unknown accuracy source 'oracle'"):
            StudySpec.from_dict(data)

    def test_unknown_top_level_field(self):
        data = self.base()
        data["strategy"] = []
        with pytest.raises(StudyError, match="unknown field"):
            StudySpec.from_dict(data)

    def test_bad_execution_values(self):
        for field, value in (
            ("batch_size", 0),
            ("num_steps", 0),
            ("backend", "gpu"),
            ("master_seed", 1.5),
            ("workers", 0),
        ):
            data = self.base()
            data["execution"] = {field: value}
            with pytest.raises(StudyError, match=field):
                StudySpec.from_dict(data)

    def test_non_json_param_rejected(self):
        with pytest.raises(StudyError, match="JSON"):
            StrategySpec("random", params={"rng": object()})

    def test_empty_strategies_rejected(self):
        with pytest.raises(StudyError, match="strategies"):
            StudySpec(name="x", strategies=(), scenarios=("unconstrained",))

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(StudyError, match="not valid JSON"):
            StudySpec.from_file(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StudyError, match="not found"):
            StudySpec.from_file(tmp_path / "missing.json")


class TestOverrides:
    def test_set_nested_field(self):
        spec = get_preset("fig5").with_overrides(
            {"execution.batch_size": 16, "strategies.1.name": "random"}
        )
        assert spec.execution.batch_size == 16
        assert spec.strategies[1].name == "random"

    def test_unknown_path_rejected(self):
        with pytest.raises(StudyError, match="no field 'betch_size'"):
            get_preset("fig5").with_overrides({"execution.betch_size": 1})

    def test_list_index_out_of_range(self):
        with pytest.raises(StudyError, match="out of range"):
            get_preset("fig5").with_overrides({"strategies.7.name": "random"})

    def test_override_validates_result(self):
        with pytest.raises(StudyError, match="unknown strategy"):
            get_preset("fig5").with_overrides({"strategies.0.name": "nope"})

    def test_parse_assignments_json_and_string(self):
        parsed = parse_assignments(
            ["execution.batch_size=16", "execution.backend=process",
             "execution.workers=null"]
        )
        assert parsed == {
            "execution.batch_size": 16,
            "execution.backend": "process",
            "execution.workers": None,
        }

    def test_parse_assignments_rejects_bare_word(self):
        with pytest.raises(StudyError, match="path=value"):
            parse_assignments(["batch_size"])


class TestResolveSpec:
    def test_preset_name(self):
        assert resolve_spec("smoke") == get_preset("smoke")

    def test_json_path(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(get_preset("smoke").to_json())
        assert resolve_spec(path) == get_preset("smoke")

    def test_unknown_preset(self):
        with pytest.raises(StudyError, match="unknown study preset"):
            resolve_spec("fig99")


class TestRunStudy:
    def test_spec_path_bit_identical_to_legacy_closures(self, micro4_bundle):
        """One strategy x scenario: run_study == hand-rolled closures."""
        scenario = unconstrained(micro4_bundle.bounds)
        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        evaluator = make_bundle_evaluator(micro4_bundle, scenario)
        legacy = run_grid(
            [
                RepeatJob(
                    label="unconstrained/combined",
                    strategy_factory=lambda seed: CombinedSearch(space, seed=seed),
                    evaluator_factory=lambda: evaluator.with_reward(scenario),
                    cache_scenario="study/micro4",
                )
            ],
            num_steps=TINY.search_steps,
            num_repeats=TINY.num_repeats,
            master_seed=5,
        )["unconstrained/combined"]

        spec = StudySpec(
            name="equivalence",
            strategies=({"name": "combined"},),
            scenarios=("unconstrained",),
            evaluator={"source": "database"},
            execution={"master_seed": 5, "batch_size": 1},
        )
        study = run_study(spec, bundle=micro4_bundle, scale=TINY)
        outcome = study.outcomes["unconstrained"]["combined"]
        assert len(outcome.results) == len(legacy.results)
        for ours, theirs in zip(outcome.results, legacy.results):
            assert np.array_equal(
                ours.reward_trace(), theirs.reward_trace(), equal_nan=True
            )
            assert (ours.best is None) == (theirs.best is None)
            if ours.best is not None:
                assert ours.best.reward == theirs.best.reward

    def test_pareto_reference_only_for_bundle_sources(self, micro4_bundle):
        spec = StudySpec(
            name="db",
            strategies=({"name": "random"},),
            scenarios=("unconstrained",),
            evaluator={"source": "database"},
            execution={"num_steps": 10, "num_repeats": 1},
        )
        with_bundle = run_study(spec, bundle=micro4_bundle, scale=TINY)
        assert list(with_bundle.pareto_top100) == ["unconstrained"]
        surrogate = run_study(tiny_spec(), scale=TINY)
        assert surrogate.pareto_top100 == {}

    def test_all_six_strategies_constructible_and_runnable(self, micro4_bundle):
        spec = StudySpec(
            name="all-strategies",
            strategies=(
                {"name": "random"},
                {"name": "evolution",
                 "params": {"population_size": 4, "tournament_size": 2}},
                {"name": "combined"},
                {"name": "separate", "params": {"cnn_fraction": 0.5}},
                {"name": "phase",
                 "params": {"cnn_phase_steps": 4, "hw_phase_steps": 2}},
                {"name": "threshold-schedule",
                 "params": {"rungs": [[2.0, 2, 8], [8.0, 2, 8]]}},
            ),
            scenarios=("unconstrained",),
            evaluator={"source": "database"},
            execution={"num_steps": 8, "num_repeats": 1},
        )
        study = run_study(spec, bundle=micro4_bundle, scale=TINY)
        by_strategy = study.outcomes["unconstrained"]
        assert set(by_strategy) == {
            "random", "evolution", "combined", "separate", "phase",
            "threshold-schedule",
        }
        for outcome in by_strategy.values():
            assert len(outcome.results) == 1
            assert len(outcome.results[0].archive) > 0

    def test_both_accuracy_sources_from_spec(self, micro4_bundle):
        for source, bundle in (("database", micro4_bundle), ("surrogate", None)):
            spec = StudySpec(
                name=f"src-{source}",
                strategies=({"name": "random"},),
                scenarios=("unconstrained",),
                evaluator={"source": source},
                execution={"num_steps": 6, "num_repeats": 1},
            )
            study = run_study(spec, bundle=bundle, scale=TINY)
            assert len(study.outcomes["unconstrained"]["random"].results) == 1

    def test_ledger_pins_spec_and_refuses_edits(self, tmp_path):
        ledger_path = tmp_path / "study.ledger"
        spec = tiny_spec(ledger=str(ledger_path))
        first = run_study(spec, scale=TINY)
        assert len(first.outcomes["unconstrained"]["random"].results) == 1
        # Same spec resumes fine (results load from the ledger).
        again = run_study(spec, scale=TINY)
        assert np.array_equal(
            first.outcomes["unconstrained"]["random"].results[0].reward_trace(),
            again.outcomes["unconstrained"]["random"].results[0].reward_trace(),
            equal_nan=True,
        )
        # Any spec whose to_dict() differs is refused.
        edited = spec.with_overrides({"evaluator.params.seed": 9})
        with pytest.raises(LedgerError):
            run_study(edited, scale=TINY)

    def test_execution_cache_path_used(self, tmp_path):
        cache_path = tmp_path / "evals.sqlite"
        spec = tiny_spec(cache=str(cache_path))
        run_study(spec, scale=TINY)
        assert cache_path.exists()

    def test_ledger_pins_resolved_scenarios_and_namespace(self, tmp_path):
        from repro.parallel.ledger import RunLedger

        ledger_path = tmp_path / "pin.ledger"
        run_study(tiny_spec(), scale=TINY, ledger=str(ledger_path))
        with RunLedger(ledger_path) as ledger:
            context = ledger.run_config()["context"]
        assert context["space"].startswith("study/surrogate")
        # The *resolved* definition is pinned, not just the name — a
        # registry builder that quietly changes refuses to resume.
        assert context["scenarios"]["unconstrained"]["weights"] == [0.1, 0.8, 0.1]

    def test_store_reaches_training_source(self, tmp_path):
        from repro.parallel.cache import EvalCache

        spec = StudySpec(
            name="trainer-store",
            strategies=(
                {"name": "threshold-schedule",
                 "params": {"rungs": [[2.0, 2, 8]]}},
            ),
            scenarios=(
                {"name": "cifar100", "weights": [0.0, 0.0, 1.0],
                 "constraints": {"min_perf_per_area": 2.0}},
            ),
            evaluator={"source": "cifar100-trainer"},
            execution={"num_steps": 4, "num_repeats": 1},
        )
        store = EvalCache(tmp_path / "train.sqlite")
        study = build_study(spec, scale=TINY, store=store)
        evaluator = study.jobs[0].evaluator_factory()
        assert evaluator.source_info["cached"].store is store

    def test_spec_in_result_extras(self):
        spec = tiny_spec()
        study = run_study(spec, scale=TINY)
        assert study.extras["spec"] == spec

    def test_scale_fills_unpinned_budget(self, micro4_bundle):
        spec = StudySpec(
            name="scaled",
            strategies=({"name": "random"},),
            scenarios=("unconstrained",),
            evaluator={"source": "database"},
        )
        study = run_study(spec, bundle=micro4_bundle, scale=TINY)
        outcome = study.outcomes["unconstrained"]["random"]
        assert len(outcome.results) == TINY.num_repeats
        assert len(outcome.results[0].archive) == TINY.search_steps


class TestBuildStudy:
    def test_jobs_and_meta(self, micro4_bundle):
        study = build_study(get_preset("fig5"), bundle=micro4_bundle, scale=TINY)
        assert len(study.jobs) == 9  # 3 strategies x 3 scenarios
        labels = {job.label for job in study.jobs}
        assert "unconstrained/combined" in labels
        assert study.job_meta["unconstrained/combined"] == (
            "unconstrained", "combined",
        )
        assert study.num_steps == TINY.search_steps
        assert study.num_repeats == TINY.num_repeats

    def test_replace_execution_keeps_nones(self):
        spec = tiny_spec()
        assert replace_execution(spec) is spec
        bumped = replace_execution(spec, batch_size=3, workers=None)
        assert bumped.execution.batch_size == 3
        assert bumped.execution.num_steps == spec.execution.num_steps


class TestLegacyShim:
    def test_run_search_study_warns_and_matches_run_study(self, micro4_bundle):
        from repro.experiments.search_study import run_search_study

        with pytest.warns(DeprecationWarning, match="StudySpec"):
            legacy = run_search_study(micro4_bundle, TINY, master_seed=2)
        spec = StudySpec(
            name="search-study",
            strategies=(
                {"name": "combined"}, {"name": "phase"}, {"name": "separate"},
            ),
            scenarios=("unconstrained", "1-constraint", "2-constraints"),
            evaluator={"source": "database"},
            execution={"master_seed": 2},
        )
        fresh = run_study(spec, bundle=micro4_bundle, scale=TINY)
        for scenario in legacy.outcomes:
            for strategy, outcome in legacy.outcomes[scenario].items():
                for ours, theirs in zip(
                    fresh.outcomes[scenario][strategy].results, outcome.results
                ):
                    assert np.array_equal(
                        ours.reward_trace(), theirs.reward_trace(),
                        equal_nan=True,
                    )


class TestTensorizeSpec:
    """The --tensorize flag rides through the spec layer untouched:
    omitted when off (so historical ledgers stay byte-compatible),
    round-tripping when on, and overridable per hardware entry."""

    def test_defaults_off_and_omitted_from_dict(self):
        spec = tiny_spec()
        assert spec.execution.tensorize is False
        assert "tensorize" not in spec.to_dict()["execution"]

    def test_round_trips_when_set(self):
        spec = tiny_spec(tensorize=True)
        data = spec.to_dict()
        assert data["execution"]["tensorize"] is True
        assert StudySpec.from_dict(data) == spec
        json.dumps(data)

    def test_hardware_entry_round_trips(self):
        spec = StudySpec(
            name="tiny",
            strategies=({"name": "random"},),
            scenarios=("unconstrained",),
            evaluator={"source": "surrogate"},
            hardware=(
                {"name": "embedded-lite", "tensorize": True},
                {"name": "dac2020"},
            ),
            execution={"num_steps": 10, "num_repeats": 1},
        )
        data = spec.to_dict()
        assert data["hardware"][0]["tensorize"] is True
        assert "tensorize" not in data["hardware"][1]
        assert StudySpec.from_dict(data) == spec

    def test_rejects_non_bool(self):
        with pytest.raises(StudyError, match="tensorize"):
            tiny_spec(tensorize="yes")
        with pytest.raises(StudyError, match="tensorize"):
            StudySpec(
                name="tiny",
                strategies=({"name": "random"},),
                scenarios=("unconstrained",),
                evaluator={"source": "surrogate"},
                hardware=({"name": "dac2020", "tensorize": 1},),
                execution={"num_steps": 10, "num_repeats": 1},
            )

    def test_with_overrides_execution_path(self):
        spec = tiny_spec().with_overrides({"execution.tensorize": True})
        assert spec.execution.tensorize is True
        # ...and flipping it back off drops the key again.
        off = spec.with_overrides({"execution.tensorize": False})
        assert "tensorize" not in off.to_dict()["execution"]

    def test_with_overrides_hardware_path(self):
        spec = StudySpec(
            name="tiny",
            strategies=({"name": "random"},),
            scenarios=("unconstrained",),
            evaluator={"source": "surrogate"},
            hardware=({"name": "embedded-lite"},),
            execution={"num_steps": 10, "num_repeats": 1},
        )
        overridden = spec.with_overrides({"hardware.tensorize": True})
        assert overridden.hardware[0].tensorize is True

    def test_build_study_arms_evaluators_per_platform(self, micro4_bundle):
        spec = StudySpec(
            name="tiny",
            strategies=({"name": "random"},),
            scenarios=("unconstrained",),
            evaluator={"source": "surrogate"},
            hardware=(
                {"name": "embedded-lite", "tensorize": True},
                {"name": "dac2020", "tensorize": False},
            ),
            execution={"num_steps": 10, "num_repeats": 1, "tensorize": False},
        )
        study = build_study(spec, bundle=micro4_bundle, scale=TINY)
        flags = {
            job.label.split(":")[0]: job.evaluator_factory().tensorize
            for job in study.jobs
        }
        assert flags == {"embedded-lite": True, "dac2020": False}

    def test_execution_default_covers_unset_hardware(self, micro4_bundle):
        spec = StudySpec(
            name="tiny",
            strategies=({"name": "random"},),
            scenarios=("unconstrained",),
            evaluator={"source": "surrogate"},
            hardware=({"name": "embedded-lite"},),
            execution={"num_steps": 10, "num_repeats": 1, "tensorize": True},
        )
        study = build_study(spec, bundle=micro4_bundle, scale=TINY)
        assert all(job.evaluator_factory().tensorize for job in study.jobs)


class TestBackendSpec:
    """execution.backend names are validated against the execution-backend
    registry, and execution.backend_params ride along declaratively —
    omitted when empty so historical ledgers stay byte-compatible."""

    def test_registry_backends_all_accepted(self):
        from repro.parallel import list_backends

        for name in list_backends():
            assert tiny_spec(backend=name).execution.backend == name

    def test_unknown_backend_error_lists_registered(self):
        with pytest.raises(StudyError, match="serial"):
            tiny_spec(backend="gpu")

    def test_params_default_empty_and_omitted_from_dict(self):
        spec = tiny_spec()
        assert spec.execution.backend_params == {}
        assert "backend_params" not in spec.to_dict()["execution"]

    def test_params_round_trip(self):
        spec = tiny_spec(
            backend="cluster", backend_params={"stale_after": 5.0}
        )
        data = spec.to_dict()
        assert data["execution"]["backend_params"] == {"stale_after": 5.0}
        assert StudySpec.from_dict(data) == spec
        json.dumps(data)

    def test_unknown_param_rejected_at_spec_time(self):
        with pytest.raises(StudyError, match="bogus"):
            tiny_spec(backend="cluster", backend_params={"bogus": 1})

    def test_params_against_wrong_backend_rejected(self):
        # stale_after belongs to cluster, not serial.
        with pytest.raises(StudyError, match="stale_after"):
            tiny_spec(backend="serial", backend_params={"stale_after": 5.0})

    def test_with_overrides_sets_nested_param(self):
        spec = tiny_spec(backend="cluster").with_overrides(
            {"execution.backend_params.poll_every": 0.5}
        )
        assert spec.execution.backend == "cluster"
        assert spec.execution.backend_params == {"poll_every": 0.5}

    def test_with_overrides_validates_new_backend(self):
        with pytest.raises(StudyError, match="unknown backend"):
            tiny_spec().with_overrides({"execution.backend": "gpu"})

    def test_bad_param_value_surfaces_at_run_time(self, tmp_path):
        # Names validate at spec time; values only at construction.
        spec = tiny_spec(
            backend="cluster", backend_params={"stale_after": -1.0}
        )
        with pytest.raises(StudyError, match="stale_after"):
            run_study(spec, ledger=tmp_path / "x.ledger")
