"""Tests for the codesign evaluator E(s)."""

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.core.evaluator import CodesignEvaluator
from repro.core.reward import MetricBounds, RewardConfig
from repro.core.scenarios import unconstrained
from repro.nasbench.database import CellDatabase, enumerate_unique_cells, sample_unique_cells
from repro.nasbench.known_cells import resnet_cell
from repro.nasbench.model_spec import ModelSpec
from repro.nasbench.ops import CONV3X3, INPUT, OUTPUT
from repro.nasbench.surrogate import Cifar10Surrogate


@pytest.fixture(scope="module")
def db():
    return CellDatabase.from_specs(enumerate_unique_cells(4))


@pytest.fixture
def db_evaluator(db):
    return CodesignEvaluator.from_database(db, unconstrained())


class TestEvaluation:
    def test_valid_pair(self, db_evaluator, default_config):
        result = db_evaluator.evaluate(resnet_cell(), default_config)
        assert result.valid and result.feasible
        assert result.metrics.accuracy > 85
        assert result.metrics.latency_s > 0

    def test_invalid_spec_punished(self, db_evaluator, default_config):
        bad = ModelSpec(np.zeros((3, 3), dtype=int), (INPUT, CONV3X3, OUTPUT))
        result = db_evaluator.evaluate(bad, default_config)
        assert not result.valid
        assert result.metrics is None
        assert result.reward.value < 0

    def test_outside_database_punished(self, db_evaluator, default_config):
        outside = sample_unique_cells(1, seed=0)[0]  # 6-7 vertices
        result = db_evaluator.evaluate(outside, default_config)
        assert not result.valid
        assert result.reward.value < 0

    def test_surrogate_evaluator_accepts_any_valid(self, default_config):
        evaluator = CodesignEvaluator.from_surrogate(unconstrained())
        outside = sample_unique_cells(1, seed=0)[0]
        result = evaluator.evaluate(outside, default_config)
        assert result.valid

    def test_accuracy_matches_database(self, db, db_evaluator):
        record = db.records[0]
        assert db_evaluator.accuracy(record.spec) == record.validation_accuracy


class TestCaching:
    def test_latency_cached(self, db_evaluator, default_config):
        spec = resnet_cell()
        first = db_evaluator.latency_s(spec, default_config)
        assert len(db_evaluator._latency_cache) == 1
        assert db_evaluator.latency_s(spec, default_config) == first
        assert len(db_evaluator._latency_cache) == 1

    def test_evaluation_counter(self, db_evaluator, default_config):
        db_evaluator.evaluate(resnet_cell(), default_config)
        db_evaluator.evaluate(resnet_cell(), default_config)
        assert db_evaluator.num_evaluations == 2

    def test_with_reward_shares_caches(self, db_evaluator, default_config):
        db_evaluator.evaluate(resnet_cell(), default_config)
        clone = db_evaluator.with_reward(
            RewardConfig(weights=(0, 0, 1), bounds=MetricBounds())
        )
        assert clone._latency_cache is db_evaluator._latency_cache
        result = clone.evaluate(resnet_cell(), default_config)
        assert result.valid

    def test_with_reward_changes_reward_only(self, db_evaluator, default_config):
        base = db_evaluator.evaluate(resnet_cell(), default_config)
        clone = db_evaluator.with_reward(
            RewardConfig(weights=(0, 0, 1), bounds=db_evaluator.reward_fn.config.bounds)
        )
        other = clone.evaluate(resnet_cell(), default_config)
        assert other.metrics.latency_s == base.metrics.latency_s
        assert other.reward.value != base.reward.value


class TestLatencyTable:
    def test_fast_path_matches_fallback(self, micro4_bundle):
        bundle = micro4_bundle
        scenario = unconstrained(bundle.bounds)
        fast = CodesignEvaluator.from_database(bundle.database, scenario)
        fast.attach_latency_table(bundle.latency_ms, bundle.row_of_hash(), bundle.space)
        slow = CodesignEvaluator.from_database(bundle.database, scenario)
        spec = bundle.database.records[3].spec
        gen = np.random.default_rng(0)
        for i in map(int, gen.integers(0, bundle.space.size, 5)):
            config = bundle.space.config_at(i)
            assert fast.latency_s(spec, config) == pytest.approx(
                slow.latency_s(spec, config), rel=1e-6
            )

    def test_unknown_cell_falls_back(self, micro4_bundle, default_config):
        bundle = micro4_bundle
        evaluator = CodesignEvaluator.from_surrogate(unconstrained(bundle.bounds))
        evaluator.attach_latency_table(
            bundle.latency_ms, bundle.row_of_hash(), bundle.space
        )
        outside = sample_unique_cells(1, seed=1)[0]
        assert evaluator.latency_s(outside, default_config) > 0


class TestEvaluateBatchExactness:
    """The batched path is bit-identical to per-point evaluate."""

    def _random_pairs(self, micro4_bundle, n, seed):
        from repro.core.search_space import JointSearchSpace

        space = JointSearchSpace(cell_encoding=micro4_bundle.cell_encoding)
        rng = np.random.default_rng(seed)
        return [space.decode(space.random_actions(rng)) for _ in range(n)]

    def _assert_results_identical(self, batched, pointwise):
        for a, b in zip(batched, pointwise):
            assert a.reward.value == b.reward.value
            assert a.reward.feasible == b.reward.feasible
            assert a.reward.valid == b.reward.valid
            assert a.reward.violations == b.reward.violations
            if b.metrics is None:
                assert a.metrics is None
            else:
                assert a.metrics.accuracy == b.metrics.accuracy
                assert a.metrics.latency_s == b.metrics.latency_s
                assert a.metrics.area_mm2 == b.metrics.area_mm2

    def test_table_backed_batch_equals_pointwise(self, micro4_bundle):
        from repro.experiments.search_study import make_bundle_evaluator

        pairs = self._random_pairs(micro4_bundle, 120, seed=0)
        batched = make_bundle_evaluator(
            micro4_bundle, unconstrained(micro4_bundle.bounds)
        ).evaluate_batch(pairs)
        ev = make_bundle_evaluator(micro4_bundle, unconstrained(micro4_bundle.bounds))
        pointwise = [ev.evaluate(s, c) for s, c in pairs]
        self._assert_results_identical(batched, pointwise)

    def test_tableless_batch_equals_pointwise(self, db):
        pairs_ev = CodesignEvaluator.from_database(db, unconstrained())
        from tests.conftest import sample_configs

        cells = sample_unique_cells(6, seed=1, min_vertices=4, max_vertices=4)
        configs = sample_configs(5, seed=2)
        pairs = [(s, c) for s in cells for c in configs]
        batched = pairs_ev.evaluate_batch(pairs)
        fresh = CodesignEvaluator.from_database(db, unconstrained())
        pointwise = [fresh.evaluate(s, c) for s, c in pairs]
        self._assert_results_identical(batched, pointwise)

    def test_eval_cache_attached_batch_equals_pointwise(self, micro4_bundle, tmp_path):
        from repro.experiments.search_study import make_bundle_evaluator
        from repro.parallel import EvalCache

        pairs = self._random_pairs(micro4_bundle, 60, seed=3)
        ev_a = make_bundle_evaluator(micro4_bundle, unconstrained(micro4_bundle.bounds))
        ev_a.attach_eval_cache(EvalCache(tmp_path / "a.sqlite"))
        batched = ev_a.evaluate_batch(pairs)
        ev_b = make_bundle_evaluator(micro4_bundle, unconstrained(micro4_bundle.bounds))
        ev_b.attach_eval_cache(EvalCache(tmp_path / "b.sqlite"))
        pointwise = [ev_b.evaluate(s, c) for s, c in pairs]
        self._assert_results_identical(batched, pointwise)
        # Both paths persist the same row set.
        ev_a.eval_cache.flush()
        ev_b.eval_cache.flush()
        assert len(ev_a.eval_cache) == len(ev_b.eval_cache)

    def test_duplicates_share_results_and_count(self, micro4_bundle):
        from repro.experiments.search_study import make_bundle_evaluator

        ev = make_bundle_evaluator(micro4_bundle, unconstrained(micro4_bundle.bounds))
        pairs = self._random_pairs(micro4_bundle, 10, seed=4)
        doubled = pairs + pairs
        results = ev.evaluate_batch(doubled)
        assert ev.num_evaluations == 20
        for a, b in zip(results[:10], results[10:]):
            if a.spec.valid:
                assert a is b  # one computation, shared result

    def test_batch_warms_pointwise_caches(self, micro4_bundle):
        """Batch and pointwise paths share one coherent cache family."""
        from repro.experiments.search_study import make_bundle_evaluator

        ev = make_bundle_evaluator(micro4_bundle, unconstrained(micro4_bundle.bounds))
        pairs = self._random_pairs(micro4_bundle, 20, seed=5)
        batched = ev.evaluate_batch(pairs)
        pointwise = [ev.evaluate(s, c) for s, c in pairs]
        self._assert_results_identical(batched, pointwise)


class TestAccuracySourceRegistry:
    def test_builtin_sources_registered(self):
        from repro.core.evaluator import list_accuracy_sources

        assert set(list_accuracy_sources()) >= {
            "database", "surrogate", "cifar100-trainer",
        }

    def test_database_requires_bundle(self):
        from repro.core.evaluator import AccuracySourceError, build_evaluator

        with pytest.raises(AccuracySourceError, match="bundle"):
            build_evaluator("database", unconstrained())

    def test_unknown_source_and_params_actionable(self):
        from repro.core.evaluator import AccuracySourceError, build_evaluator

        with pytest.raises(AccuracySourceError, match="registered:"):
            build_evaluator("oracle", unconstrained())
        with pytest.raises(AccuracySourceError, match="noise"):
            build_evaluator("surrogate", unconstrained(), {"noise": 1.0})

    def test_surrogate_params_reach_surrogate(self):
        from repro.core.evaluator import build_evaluator

        evaluator = build_evaluator(
            "surrogate", unconstrained(), {"seed": 7, "noise_std": 0.0}
        )
        surrogate = evaluator.source_info["surrogate"]
        assert (surrogate.seed, surrogate.noise_std) == (7, 0.0)

    def test_skeleton_param_pins_namespace(self):
        from repro.core.evaluator import accuracy_source_namespace

        for source in ("database", "surrogate", "cifar100-trainer"):
            plain = accuracy_source_namespace(source)
            stacked = accuracy_source_namespace(
                source, {"skeleton": {"num_stacks": 2}}
            )
            assert plain != stacked, source

    def test_bad_skeleton_field_rejected(self):
        from repro.core.evaluator import AccuracySourceError, build_evaluator

        with pytest.raises(AccuracySourceError, match="skeleton"):
            build_evaluator(
                "surrogate", unconstrained(), {"skeleton": {"depth": 3}}
            )

    def test_with_reward_carries_source_info(self):
        from repro.core.evaluator import build_evaluator

        evaluator = build_evaluator("surrogate", unconstrained())
        clone = evaluator.with_reward(unconstrained())
        assert clone.source_info is evaluator.source_info
