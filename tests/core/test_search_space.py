"""Tests for the joint CNN x HW search space."""

import pytest

from repro.core.search_space import JointSearchSpace
from repro.nasbench.encoding import CellEncoding
from repro.nasbench.known_cells import resnet_cell


class TestShape:
    def test_full_space_tokens(self):
        space = JointSearchSpace()
        assert space.num_cnn_tokens == 26
        assert space.num_hw_tokens == 8
        assert space.num_tokens == 34
        assert len(space.vocab_sizes) == 34

    def test_micro_space(self):
        space = JointSearchSpace(cell_encoding=CellEncoding(max_vertices=5))
        assert space.num_cnn_tokens == 13

    def test_raw_size(self):
        space = JointSearchSpace(cell_encoding=CellEncoding(max_vertices=5))
        assert space.raw_size() == (2**10 * 3**3) * 8640


class TestDecode:
    def test_split(self, rng):
        space = JointSearchSpace()
        actions = space.random_actions(rng)
        cnn, hw = space.split(actions)
        assert len(cnn) == 26 and len(hw) == 8

    def test_split_wrong_length(self):
        with pytest.raises(ValueError):
            JointSearchSpace().split([0, 1])

    def test_decode_types(self, rng):
        space = JointSearchSpace()
        spec, config = space.decode(space.random_actions(rng))
        assert hasattr(spec, "valid")
        assert hasattr(config, "pixel_par")

    def test_encode_round_trip(self, rng):
        space = JointSearchSpace()
        spec = resnet_cell()
        config = space.accelerator_space.config_at(1234)
        actions = space.encode(spec, config)
        spec2, config2 = space.decode(actions)
        assert spec2.spec_hash() == spec.spec_hash()
        assert config2 == config
