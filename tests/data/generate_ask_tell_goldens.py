"""Regenerate the ask/tell equivalence goldens.

The goldens in ``ask_tell_goldens.npz`` / ``ask_tell_goldens.json``
were produced by running THIS script against the legacy per-point
search loops (commit ``bd75839``, before the ask/tell refactor).  They
freeze, for every (strategy, scenario, seed) cell:

* the full per-step reward trace (float64, bit-exact), and
* an md5 digest over the visited (spec_hash, config_key) sequence,

so the equivalence suite can assert that the batched engine at
``batch_size=1`` reproduces the legacy trace exactly — same rewards,
same archive, same RNG stream.

Do not regenerate casually: new goldens only prove self-consistency of
the current code, not equivalence with the pre-refactor behaviour.

Run:  PYTHONPATH=src python tests/data/generate_ask_tell_goldens.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.core.scenarios import PAPER_SCENARIOS
from repro.core.search_space import JointSearchSpace
from repro.experiments.common import load_bundle
from repro.experiments.search_study import make_bundle_evaluator
from repro.search.combined import CombinedSearch
from repro.search.evolution import EvolutionSearch
from repro.search.phase import PhaseSearch
from repro.search.random_search import RandomSearch
from repro.search.separate import SeparateSearch

HERE = Path(__file__).resolve().parent

NUM_STEPS = 40
SEEDS = (0, 1, 2)

#: Strategy name -> factory(space, seed).  Hyper-parameters are sized so
#: every code path (evolution's evolve phase, phase boundaries, the
#: separate stage split) is exercised inside NUM_STEPS.
STRATEGY_FACTORIES = {
    "random": lambda space, seed: RandomSearch(space, seed=seed),
    "evolution": lambda space, seed: EvolutionSearch(
        space, seed=seed, population_size=8, tournament_size=3
    ),
    "combined": lambda space, seed: CombinedSearch(space, seed=seed),
    "separate": lambda space, seed: SeparateSearch(space, seed=seed, cnn_fraction=0.6),
    "phase": lambda space, seed: PhaseSearch(
        space, seed=seed, cnn_phase_steps=10, hw_phase_steps=5
    ),
}


def visit_digest(archive) -> str:
    """md5 over the visited (spec_hash, config_key) step sequence."""
    parts = []
    for e in archive.entries:
        spec_part = e.spec.spec_hash() if e.spec is not None and e.spec.valid else "invalid"
        parts.append(f"{spec_part}|{tuple(e.config.to_dict().values())}|{e.phase}")
    return hashlib.md5("\n".join(parts).encode()).hexdigest()


def main() -> None:
    bundle = load_bundle(max_vertices=4)
    space = JointSearchSpace(cell_encoding=bundle.cell_encoding)
    arrays: dict[str, np.ndarray] = {}
    digests: dict[str, str] = {}
    for scenario_name, scenario_factory in PAPER_SCENARIOS.items():
        scenario = scenario_factory(bundle.bounds)
        for strategy_name, factory in STRATEGY_FACTORIES.items():
            for seed in SEEDS:
                evaluator = make_bundle_evaluator(bundle, scenario)
                result = factory(space, seed).run(evaluator, NUM_STEPS)
                key = f"{strategy_name}__{scenario_name}__{seed}"
                arrays[key] = result.reward_trace()
                digests[key] = visit_digest(result.archive)
                print(key, digests[key], round(float(np.nansum(arrays[key])), 6))
    np.savez_compressed(HERE / "ask_tell_goldens.npz", **arrays)
    (HERE / "ask_tell_goldens.json").write_text(
        json.dumps(
            {"num_steps": NUM_STEPS, "seeds": list(SEEDS), "digests": digests},
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {len(arrays)} traces")


if __name__ == "__main__":
    main()
